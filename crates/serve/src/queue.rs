//! Bounded deadline queue and the per-request response slot.
//!
//! The queue is the back-pressure boundary: `DeadlineQueue::push`
//! never blocks and never buffers beyond `capacity` — a full queue is an
//! immediate typed rejection, which is the whole point of admission
//! control (the alternative, an unbounded queue, converts overload into
//! unbounded latency and memory growth).
//!
//! Each admitted request owns a `Slot`: a one-shot, idempotent
//! rendezvous the batcher resolves exactly once. Resolution is
//! *guaranteed* — `Pending`'s `Drop` resolves the slot with
//! [`ServeError::ShutDown`] if nothing else did, so a request can never
//! be leaked into an eternally-blocked [`Ticket::wait`], even if the
//! batcher thread unwinds mid-batch.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use wino_tensor::BlockedImage;

use crate::{DegradeLevel, ServeError, ServeReport, ServeResponse};

/// One-shot response rendezvous between the batcher and a waiter.
pub(crate) struct Slot {
    state: Mutex<Option<ServeResponse>>,
    cv: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Slot> {
        Arc::new(Slot { state: Mutex::new(None), cv: Condvar::new() })
    }

    /// Resolve the slot if it is still empty (idempotent: the first
    /// resolution wins; later ones are dropped).
    pub(crate) fn resolve(&self, resp: ServeResponse) {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if st.is_none() {
            *st = Some(resp);
            self.cv.notify_all();
        }
    }

    fn take_blocking(&self) -> ServeResponse {
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(resp) = st.take() {
                return resp;
            }
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn take_timeout(&self, timeout: Duration) -> Option<ServeResponse> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(resp) = st.take() {
                return Some(resp);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .cv
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            st = g;
        }
    }
}

/// Handle to one submitted request. Obtained from
/// [`crate::Server::submit`]; redeem it with [`Ticket::wait`].
pub struct Ticket {
    slot: Arc<Slot>,
    request_id: u64,
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>, request_id: u64) -> Ticket {
        Ticket { slot, request_id }
    }

    /// The server-assigned request id (matches
    /// [`ServeReport::request_id`]).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Block until the request resolves. Termination is guaranteed:
    /// every admitted request is resolved by the batcher, the shutdown
    /// drain, or the queue entry's own drop guard.
    pub fn wait(self) -> ServeResponse {
        self.slot.take_blocking()
    }

    /// As [`Ticket::wait`] with a timeout; `None` if the request has
    /// not resolved yet (the ticket remains redeemable).
    pub fn wait_for(&self, timeout: Duration) -> Option<ServeResponse> {
        self.slot.take_timeout(timeout)
    }
}

/// A queued request, owned by the queue and then by the batcher.
pub(crate) struct Pending {
    pub(crate) id: u64,
    /// Single-image input (`batch == 1`, validated at submit).
    pub(crate) input: BlockedImage,
    pub(crate) enqueued: Instant,
    pub(crate) deadline: Instant,
    pub(crate) slot: Arc<Slot>,
}

impl Pending {
    /// Resolve with an explicit outcome (idempotent via the slot).
    pub(crate) fn resolve(
        &self,
        output: Result<BlockedImage, ServeError>,
        report: ServeReport,
    ) {
        self.slot.resolve(ServeResponse { output, report });
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        // Last-resort guarantee: a request dropped unresolved (batcher
        // unwind, shutdown drain) still terminates its waiter with a
        // typed error instead of leaking a forever-blocked Ticket.
        self.slot.resolve(ServeResponse {
            output: Err(ServeError::ShutDown),
            report: ServeReport::unserved(self.id, DegradeLevel::Full),
        });
    }
}

struct Inner {
    q: VecDeque<Pending>,
    shutdown: bool,
}

/// Bounded MPSC queue with batch-oriented consumption.
pub(crate) struct DeadlineQueue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

/// Why a push was rejected.
pub(crate) enum PushReject {
    /// Queue at capacity.
    Full { depth: usize },
    /// Shutdown already initiated.
    ShutDown,
}

impl DeadlineQueue {
    pub(crate) fn new(capacity: usize) -> DeadlineQueue {
        DeadlineQueue {
            inner: Mutex::new(Inner { q: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            capacity,
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueue; `Ok(depth after push)` or an immediate typed rejection.
    pub(crate) fn push(&self, p: Pending) -> Result<usize, PushReject> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if g.shutdown {
            return Err(PushReject::ShutDown);
        }
        if g.q.len() >= self.capacity {
            return Err(PushReject::Full { depth: g.q.len() });
        }
        g.q.push_back(p);
        let depth = g.q.len();
        self.cv.notify_all();
        Ok(depth)
    }

    pub(crate) fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).q.len()
    }

    /// Flag shutdown and wake the batcher. Requests already queued are
    /// still served (drain semantics); new pushes are rejected.
    pub(crate) fn begin_shutdown(&self) {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.shutdown = true;
        self.cv.notify_all();
    }

    /// Remove everything still queued (post-join cleanup when the
    /// batcher died early; dropping the entries resolves their slots).
    pub(crate) fn drain_remaining(&self) -> Vec<Pending> {
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        g.q.drain(..).collect()
    }

    /// Collect the next batch: blocks until at least one request is
    /// queued, then keeps the batch open for at most `max_age` (measured
    /// from pickup) or until `max_batch` requests have been coalesced.
    /// Returns `None` only at shutdown with an empty queue.
    pub(crate) fn pop_batch(&self, max_batch: usize, max_age: Duration) -> Option<Vec<Pending>> {
        let max_batch = max_batch.max(1);
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        // Wait for the first request (or shutdown of an empty queue).
        loop {
            if !g.q.is_empty() {
                break;
            }
            if g.shutdown {
                return None;
            }
            g = self.cv.wait(g).unwrap_or_else(|e| e.into_inner());
        }
        let mut batch = Vec::with_capacity(max_batch);
        let opened = Instant::now();
        let closes = opened + max_age;
        loop {
            while batch.len() < max_batch {
                match g.q.pop_front() {
                    Some(p) => batch.push(p),
                    None => break,
                }
            }
            if batch.len() >= max_batch || g.shutdown {
                break;
            }
            let now = Instant::now();
            if now >= closes {
                break;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, closes - now)
                .unwrap_or_else(|e| e.into_inner());
            g = g2;
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(id: u64) -> Pending {
        let now = Instant::now();
        Pending {
            id,
            input: BlockedImage::zeros(1, 16, &[2, 2]).unwrap(),
            enqueued: now,
            deadline: now + Duration::from_secs(10),
            slot: Slot::new(),
        }
    }

    #[test]
    fn capacity_zero_rejects_every_push() {
        let q = DeadlineQueue::new(0);
        match q.push(pending(1)) {
            Err(PushReject::Full { depth }) => assert_eq!(depth, 0),
            _ => panic!("capacity-0 queue must reject with Full"),
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn push_after_shutdown_is_rejected() {
        let q = DeadlineQueue::new(4);
        q.begin_shutdown();
        assert!(matches!(q.push(pending(1)), Err(PushReject::ShutDown)));
    }

    #[test]
    fn pop_batch_closes_on_size() {
        let q = DeadlineQueue::new(8);
        for i in 0..5 {
            q.push(pending(i)).ok().unwrap();
        }
        // max_age of an hour: the size trigger must close the batch.
        let b = q.pop_batch(3, Duration::from_secs(3600)).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(q.depth(), 2);
        let b = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(b.len(), 2, "age 0 closes with whatever is queued");
    }

    #[test]
    fn pop_batch_returns_none_only_when_drained_at_shutdown() {
        let q = DeadlineQueue::new(8);
        q.push(pending(1)).ok().unwrap();
        q.begin_shutdown();
        let b = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(b.len(), 1, "queued work is drained, not dropped");
        assert!(q.pop_batch(4, Duration::ZERO).is_none());
    }

    #[test]
    fn dropped_pending_resolves_its_ticket_with_shutdown() {
        let p = pending(7);
        let ticket = Ticket::new(p.slot.clone(), 7);
        drop(p);
        let resp = ticket.wait();
        assert!(matches!(resp.output, Err(ServeError::ShutDown)));
        assert_eq!(resp.report.request_id, 7);
    }

    #[test]
    fn slot_resolution_is_first_write_wins() {
        let p = pending(3);
        let ticket = Ticket::new(p.slot.clone(), 3);
        p.resolve(
            Err(ServeError::DeadlineExceeded { missed_by_ms: 1.0 }),
            ServeReport::unserved(3, DegradeLevel::Full),
        );
        drop(p); // drop guard must NOT overwrite the explicit resolution
        let resp = ticket.wait();
        assert!(matches!(resp.output, Err(ServeError::DeadlineExceeded { .. })));
    }
}
