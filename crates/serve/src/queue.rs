//! Bounded deadline queue and the per-request response slot.
//!
//! The queue is the back-pressure boundary: `DeadlineQueue::push`
//! never blocks and never buffers beyond `capacity` — a full queue is an
//! immediate typed rejection, which is the whole point of admission
//! control (the alternative, an unbounded queue, converts overload into
//! unbounded latency and memory growth).
//!
//! Each admitted request owns a `Slot`: a one-shot, idempotent
//! rendezvous the batcher resolves exactly once. Resolution is
//! *guaranteed* — `Pending`'s `Drop` resolves the slot with
//! [`ServeError::ShutDown`] if nothing else did, so a request can never
//! be leaked into an eternally-blocked [`Ticket::wait`], even if the
//! batcher thread unwinds mid-batch.
//!
//! # Checkability
//!
//! Every primitive here is written once, generically, over the
//! [`wino_sched::Atomics`] + [`wino_sched::Clock`] seams — the same
//! pattern as `SpinBarrierIn` — and instantiated twice: with
//! [`StdAtomics`]/[`StdClock`] for production (the `Slot`, `Pending`,
//! `DeadlineQueue` aliases below) and with the `wino-analyze` model
//! shims, where every atomic access is a scheduler yield point and
//! deadlines/batch ages are virtual step budgets. The serve contract —
//! first-write-wins slot resolution, exactly-one-outcome conservation,
//! no leaked waiter under batcher unwind, expired-vs-drained mutual
//! exclusion — is model-checked over bounded-exhaustive (DPOR-reduced)
//! schedule enumeration in `crates/analyze/src/model/serve_scenarios.rs`.
//!
//! Blocking is therefore spin-based (`A::spin`, the seam's one
//! time-dependence hook) rather than `Condvar`-based: a `Mutex`/`Condvar`
//! wait is invisible to the model scheduler, a spin loop yields at every
//! step. Under [`StdAtomics`] a blocked waiter spins briefly and then
//! `yield_now`s — the same discipline as the fork–join barrier.

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use wino_sched::atomics::{AtomicUsizeOps, Atomics, Clock, StdAtomics, StdClock};
use wino_tensor::BlockedImage;

use crate::{DegradeLevel, ServeError, ServeReport, ServeResponse};

/// What a dropped-unresolved queue entry resolves its waiter with. The
/// serve stack uses [`ServeResponse`] (a typed [`ServeError::ShutDown`]);
/// the model scenarios use a toy outcome type.
pub trait DropOutcome {
    /// The outcome delivered by the drop guard when a request is dropped
    /// without an explicit resolution (batcher unwind, shutdown drain).
    fn shutdown_outcome(id: u64) -> Self;
}

impl DropOutcome for ServeResponse {
    fn shutdown_outcome(id: u64) -> ServeResponse {
        ServeResponse {
            output: Err(ServeError::ShutDown),
            report: ServeReport::unserved(id, DegradeLevel::Full),
        }
    }
}

// Slot state-word protocol. The only legal transitions are
// EMPTY→WRITING→READY→TAKEN, each performed by exactly one thread.
const EMPTY: usize = 0;
const WRITING: usize = 1;
const READY: usize = 2;
const TAKEN: usize = 3;

/// One-shot, first-write-wins response rendezvous between a resolver
/// (the batcher, the shed path, or a drop guard) and a waiter.
///
/// Generic over the [`Atomics`] seam so the identical source is
/// model-checked; `Slot` is the production instantiation.
pub struct SlotIn<A: Atomics, T> {
    state: A::AtomicUsize,
    cell: UnsafeCell<Option<T>>,
}

// SAFETY: all access to `cell` is serialised by the state-word protocol:
// a writer gains exclusive access by winning the EMPTY→WRITING CAS
// (every later writer fails that CAS and never touches the cell), and
// the reader touches the cell only after the READY→TAKEN CAS, whose
// Acquire pairs with the writer's READY Release store — so the payload
// write happens-before the take. `T: Send` because the payload crosses
// from the resolving thread to the waiting thread.
unsafe impl<A: Atomics, T: Send> Send for SlotIn<A, T> {}
// SAFETY: as above — the state word serialises every cell access, so
// sharing `&SlotIn` across threads never yields concurrent cell access.
unsafe impl<A: Atomics, T: Send> Sync for SlotIn<A, T> {}

impl<A: Atomics, T> SlotIn<A, T> {
    pub fn new() -> Arc<SlotIn<A, T>> {
        Arc::new(SlotIn { state: A::AtomicUsize::new(EMPTY), cell: UnsafeCell::new(None) })
    }

    /// Resolve the slot if nothing else has (idempotent: the first
    /// resolution wins; later ones are dropped). Returns whether this
    /// call was the winning write.
    pub fn resolve(&self, resp: T) -> bool {
        // ORDERING: Relaxed on failure — a losing resolver publishes
        // nothing and reads nothing; the winner's payload is ordered by
        // its own READY release store below.
        if self
            .state
            .compare_exchange(EMPTY, WRITING, Ordering::AcqRel, Ordering::Relaxed)
            .is_err()
        {
            return false;
        }
        // SAFETY: winning the EMPTY→WRITING CAS grants exclusive cell
        // access; no reader looks before READY, no other writer after.
        unsafe { *self.cell.get() = Some(resp) };
        self.state.store(READY, Ordering::Release);
        true
    }

    /// Whether a resolution has been published (diagnostic; the answer
    /// can be stale by the time the caller acts on it).
    pub fn is_resolved(&self) -> bool {
        self.state.load(Ordering::Acquire) >= READY
    }

    fn try_take(&self) -> Option<T> {
        // ORDERING: Relaxed on failure — not-READY-yet carries no data;
        // the caller just keeps spinning.
        if self
            .state
            .compare_exchange(READY, TAKEN, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            // SAFETY: winning the READY→TAKEN CAS grants exclusive cell
            // access, and its Acquire saw the writer's Release — the
            // payload is fully written.
            return Some(unsafe { (*self.cell.get()).take() }.expect("READY implies a payload"));
        }
        None
    }

    /// Block (spin per `A::spin`) until the slot resolves, then take the
    /// payload. Termination relies on the serve invariant that every
    /// admitted request is resolved by the batcher, the shed path, or
    /// the drop guard — the invariant the model checker enforces.
    pub fn take_blocking(&self) -> T {
        let mut spin = A::SpinState::default();
        loop {
            if let Some(resp) = self.try_take() {
                return resp;
            }
            let _ = A::spin(&mut spin, None);
        }
    }

    /// As [`SlotIn::take_blocking`] with a timeout in the [`Atomics`]
    /// timebase; `None` if the slot has not resolved within it.
    pub fn take_timeout(&self, timeout: Duration) -> Option<T> {
        let mut spin = A::SpinState::default();
        loop {
            if let Some(resp) = self.try_take() {
                return Some(resp);
            }
            if A::spin(&mut spin, Some(timeout)).is_some() {
                return self.try_take();
            }
        }
    }
}

/// Handle to one submitted request, generic over the [`Atomics`] seam.
/// [`Ticket`] is the production alias; redeem it with [`Ticket::wait`].
pub struct TicketIn<A: Atomics, T> {
    slot: Arc<SlotIn<A, T>>,
    request_id: u64,
}

/// Handle to one submitted request. Obtained from
/// [`crate::Server::submit`]; redeem it with [`Ticket::wait`].
pub type Ticket = TicketIn<StdAtomics, ServeResponse>;

impl<A: Atomics, T> TicketIn<A, T> {
    pub(crate) fn new(slot: Arc<SlotIn<A, T>>, request_id: u64) -> TicketIn<A, T> {
        TicketIn { slot, request_id }
    }

    /// The server-assigned request id (matches
    /// [`ServeReport::request_id`]).
    pub fn request_id(&self) -> u64 {
        self.request_id
    }

    /// Block until the request resolves. Termination is guaranteed:
    /// every admitted request is resolved by the batcher, the shutdown
    /// drain, or the queue entry's own drop guard.
    pub fn wait(self) -> T {
        self.slot.take_blocking()
    }

    /// As [`Ticket::wait`] with a timeout; `None` if the request has
    /// not resolved yet (the ticket remains redeemable).
    pub fn wait_for(&self, timeout: Duration) -> Option<T> {
        self.slot.take_timeout(timeout)
    }
}

/// A queued request, owned by the queue and then by the batcher.
/// Generic over the seams plus the request payload `Req` and response
/// `Resp`; `Pending` is the production alias.
pub struct PendingIn<A: Atomics, C: Clock, Req, Resp: DropOutcome> {
    pub id: u64,
    /// Request payload (single-image input for the server, `batch == 1`
    /// validated at submit).
    pub input: Req,
    pub enqueued: C::Instant,
    pub deadline: C::Instant,
    pub slot: Arc<SlotIn<A, Resp>>,
}

/// The production request entry.
pub(crate) type Pending = PendingIn<StdAtomics, StdClock, BlockedImage, ServeResponse>;

/// The production response slot.
pub(crate) type Slot = SlotIn<StdAtomics, ServeResponse>;

impl<A: Atomics, C: Clock, Req, Resp: DropOutcome> PendingIn<A, C, Req, Resp> {
    /// Resolve with an explicit outcome (idempotent via the slot);
    /// returns whether this resolution won.
    pub fn resolve(&self, resp: Resp) -> bool {
        self.slot.resolve(resp)
    }
}

// PROTOCOL: drop-guard — this Drop is the last-resort waiter guarantee:
// it must write the slot state word (via `resolve`) before any return
// path, unconditionally. `wino-lint`'s drop-guard-protocol rule enforces
// the shape; the model checker proves the guarantee over interleavings.
impl<A: Atomics, C: Clock, Req, Resp: DropOutcome> Drop for PendingIn<A, C, Req, Resp> {
    fn drop(&mut self) {
        // Last-resort guarantee: a request dropped unresolved (batcher
        // unwind, shutdown drain) still terminates its waiter with a
        // typed outcome instead of leaking a forever-blocked ticket.
        self.slot.resolve(Resp::shutdown_outcome(self.id));
    }
}

struct Inner<A: Atomics, C: Clock, Req, Resp: DropOutcome> {
    q: VecDeque<PendingIn<A, C, Req, Resp>>,
}

/// Bounded MPSC queue with batch-oriented consumption: any number of
/// producers [`DeadlineQueueIn::push`]; a single consumer (the batcher)
/// calls [`DeadlineQueueIn::pop_batch`]. `DeadlineQueue` is the
/// production alias.
///
/// Internally a spin-lock (one [`Atomics`] word, CAS-acquired) guards
/// the deque, with the depth and shutdown flag mirrored into lock-free
/// words so `depth()` and the consumer's idle wait take no lock.
pub struct DeadlineQueueIn<A: Atomics, C: Clock, Req, Resp: DropOutcome> {
    /// Spin-lock word: 0 free, 1 held.
    lock: A::AtomicUsize,
    inner: UnsafeCell<Inner<A, C, Req, Resp>>,
    /// Mirror of `inner.q.len()`, maintained under the lock.
    depth: A::AtomicUsize,
    /// 0 open, 1 shutting down (set once, never cleared).
    shutdown: A::AtomicUsize,
    capacity: usize,
}

/// The production queue.
pub(crate) type DeadlineQueue = DeadlineQueueIn<StdAtomics, StdClock, BlockedImage, ServeResponse>;

// SAFETY: `inner` is only touched between a winning 0→1 CAS on `lock`
// and the matching release store (the `LockGuard` RAII below), so no
// two threads ever access the deque concurrently; the remaining fields
// are atomics. Send/Sync propagate the payload bounds.
unsafe impl<A: Atomics, C: Clock, Req: Send, Resp: DropOutcome + Send> Send
    for DeadlineQueueIn<A, C, Req, Resp>
{
}
// SAFETY: as above — the spin-lock serialises every `inner` access.
unsafe impl<A: Atomics, C: Clock, Req: Send, Resp: DropOutcome + Send> Sync
    for DeadlineQueueIn<A, C, Req, Resp>
{
}

/// RAII release for the queue's spin-lock word.
struct LockGuard<'a, W: AtomicUsizeOps>(&'a W);

impl<W: AtomicUsizeOps> Drop for LockGuard<'_, W> {
    fn drop(&mut self) {
        self.0.store(0, Ordering::Release);
    }
}

/// Why a push was rejected.
pub enum PushReject {
    /// Queue at capacity.
    Full { depth: usize },
    /// Shutdown already initiated.
    ShutDown,
}

impl<A: Atomics, C: Clock, Req, Resp: DropOutcome> DeadlineQueueIn<A, C, Req, Resp> {
    pub fn new(capacity: usize) -> DeadlineQueueIn<A, C, Req, Resp> {
        DeadlineQueueIn {
            lock: A::AtomicUsize::new(0),
            inner: UnsafeCell::new(Inner { q: VecDeque::new() }),
            depth: A::AtomicUsize::new(0),
            shutdown: A::AtomicUsize::new(0),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Acquire the spin-lock; the returned guard releases it on drop.
    fn acquire(&self) -> LockGuard<'_, A::AtomicUsize> {
        let mut spin = A::SpinState::default();
        loop {
            // ORDERING: Relaxed on failure — a failed acquisition reads
            // nothing protected; the retry's Acquire success pairs with
            // the previous holder's Release.
            if self
                .lock
                .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return LockGuard(&self.lock);
            }
            let _ = A::spin(&mut spin, None);
        }
    }

    /// Enqueue; `Ok(depth after push)` or an immediate typed rejection.
    pub fn push(&self, p: PendingIn<A, C, Req, Resp>) -> Result<usize, PushReject> {
        let _g = self.acquire();
        // SAFETY: `_g` holds the spin-lock, granting exclusive `inner`
        // access until it drops.
        let inner = unsafe { &mut *self.inner.get() };
        if self.shutdown.load(Ordering::Acquire) != 0 {
            return Err(PushReject::ShutDown);
        }
        if inner.q.len() >= self.capacity {
            return Err(PushReject::Full { depth: inner.q.len() });
        }
        inner.q.push_back(p);
        let depth = inner.q.len();
        self.depth.store(depth, Ordering::Release);
        Ok(depth)
    }

    /// Current queue depth (advisory: racy by nature, exact under the
    /// lock at the instant it was mirrored).
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Acquire)
    }

    /// Flag shutdown and wake the batcher. Requests already queued are
    /// still served (drain semantics); new pushes are rejected.
    pub fn begin_shutdown(&self) {
        let _g = self.acquire();
        // Set under the lock so a concurrent `push` sees either
        // open-and-enqueued or rejected — never a lost entry.
        self.shutdown.store(1, Ordering::Release);
    }

    /// Remove everything still queued (post-join cleanup when the
    /// batcher died early; dropping the entries resolves their slots).
    pub fn drain_remaining(&self) -> Vec<PendingIn<A, C, Req, Resp>> {
        let _g = self.acquire();
        // SAFETY: `_g` holds the spin-lock, granting exclusive `inner`
        // access until it drops.
        let inner = unsafe { &mut *self.inner.get() };
        let out: Vec<_> = inner.q.drain(..).collect();
        self.depth.store(0, Ordering::Release);
        out
    }

    /// Collect the next batch: blocks until at least one request is
    /// queued, then keeps the batch open for at most `max_age` (measured
    /// from pickup, in the [`Atomics`] timebase — wall-clock in
    /// production, virtual spin steps under the model) or until
    /// `max_batch` requests have been coalesced. Returns `None` only at
    /// shutdown with an empty queue. Single consumer.
    pub fn pop_batch(
        &self,
        max_batch: usize,
        max_age: Duration,
    ) -> Option<Vec<PendingIn<A, C, Req, Resp>>> {
        let max_batch = max_batch.max(1);
        // Wait for the first request (or shutdown of an empty queue).
        //
        // Check order matters: the depth read must be the *last* load
        // before the no-deadline spin, so that under the model shims the
        // check-then-park pair is atomic (one yield apart) and a push
        // landing between the two gating loads still wakes the parked
        // consumer via its depth write. Both unblocking transitions
        // (push, begin_shutdown) are writes, so a park after a stale
        // read is always woken and re-checks.
        let mut spin = A::SpinState::default();
        loop {
            if self.shutdown.load(Ordering::Acquire) != 0 {
                // Re-check the deque under the lock: a push may have
                // landed just before shutdown flagged.
                let _g = self.acquire();
                // SAFETY: `_g` holds the spin-lock, granting exclusive
                // `inner` access until it drops.
                let inner = unsafe { &mut *self.inner.get() };
                if inner.q.is_empty() {
                    return None;
                }
                break;
            }
            if self.depth.load(Ordering::Acquire) > 0 {
                break;
            }
            let _ = A::spin(&mut spin, None);
        }
        // Batch open: close on size, shutdown, or age.
        let mut batch = Vec::with_capacity(max_batch);
        let mut spin = A::SpinState::default();
        loop {
            {
                let _g = self.acquire();
                // SAFETY: `_g` holds the spin-lock, granting exclusive
                // `inner` access until it drops.
                let inner = unsafe { &mut *self.inner.get() };
                while batch.len() < max_batch {
                    match inner.q.pop_front() {
                        Some(p) => batch.push(p),
                        None => break,
                    }
                }
                self.depth.store(inner.q.len(), Ordering::Release);
            }
            if batch.len() >= max_batch || self.shutdown.load(Ordering::Acquire) != 0 {
                break;
            }
            if A::spin(&mut spin, Some(max_age)).is_some() {
                break;
            }
        }
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    fn pending(id: u64) -> Pending {
        let now = Instant::now();
        Pending {
            id,
            input: BlockedImage::zeros(1, 16, &[2, 2]).unwrap(),
            enqueued: now,
            deadline: now + Duration::from_secs(10),
            slot: SlotIn::new(),
        }
    }

    fn unserved(id: u64) -> ServeResponse {
        ServeResponse {
            output: Err(ServeError::DeadlineExceeded { missed_by_ms: 1.0 }),
            report: ServeReport::unserved(id, DegradeLevel::Full),
        }
    }

    #[test]
    fn capacity_zero_rejects_every_push() {
        let q = DeadlineQueue::new(0);
        match q.push(pending(1)) {
            Err(PushReject::Full { depth }) => assert_eq!(depth, 0),
            _ => panic!("capacity-0 queue must reject with Full"),
        }
        assert_eq!(q.depth(), 0);
    }

    #[test]
    fn push_after_shutdown_is_rejected() {
        let q = DeadlineQueue::new(4);
        q.begin_shutdown();
        assert!(matches!(q.push(pending(1)), Err(PushReject::ShutDown)));
    }

    #[test]
    fn pop_batch_closes_on_size() {
        let q = DeadlineQueue::new(8);
        for i in 0..5 {
            q.push(pending(i)).ok().unwrap();
        }
        // max_age of an hour: the size trigger must close the batch.
        let b = q.pop_batch(3, Duration::from_secs(3600)).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(q.depth(), 2);
        let b = q.pop_batch(3, Duration::ZERO).unwrap();
        assert_eq!(b.len(), 2, "age 0 closes with whatever is queued");
    }

    #[test]
    fn pop_batch_returns_none_only_when_drained_at_shutdown() {
        let q = DeadlineQueue::new(8);
        q.push(pending(1)).ok().unwrap();
        q.begin_shutdown();
        let b = q.pop_batch(4, Duration::ZERO).unwrap();
        assert_eq!(b.len(), 1, "queued work is drained, not dropped");
        assert!(q.pop_batch(4, Duration::ZERO).is_none());
    }

    #[test]
    fn dropped_pending_resolves_its_ticket_with_shutdown() {
        let p = pending(7);
        let ticket = Ticket::new(p.slot.clone(), 7);
        drop(p);
        let resp = ticket.wait();
        assert!(matches!(resp.output, Err(ServeError::ShutDown)));
        assert_eq!(resp.report.request_id, 7);
    }

    #[test]
    fn slot_resolution_is_first_write_wins() {
        let p = pending(3);
        let ticket = Ticket::new(p.slot.clone(), 3);
        assert!(p.resolve(unserved(3)), "first resolution must win");
        drop(p); // drop guard must NOT overwrite the explicit resolution
        let resp = ticket.wait();
        assert!(matches!(resp.output, Err(ServeError::DeadlineExceeded { .. })));
    }

    #[test]
    fn losing_resolution_reports_defeat() {
        let slot: Arc<SlotIn<StdAtomics, u32>> = SlotIn::new();
        assert!(slot.resolve(1));
        assert!(!slot.resolve(2), "second resolution must lose");
        assert_eq!(slot.take_blocking(), 1);
    }

    #[test]
    fn take_timeout_returns_none_until_resolved() {
        let slot: Arc<SlotIn<StdAtomics, u32>> = SlotIn::new();
        assert_eq!(slot.take_timeout(Duration::from_millis(1)), None);
        assert!(slot.resolve(9));
        assert_eq!(slot.take_timeout(Duration::from_millis(1)), Some(9));
    }

    #[test]
    fn cross_thread_slot_handoff() {
        let slot: Arc<SlotIn<StdAtomics, u64>> = SlotIn::new();
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || s2.take_blocking());
        std::thread::sleep(Duration::from_millis(5));
        assert!(slot.resolve(42));
        assert_eq!(h.join().unwrap(), 42);
    }
}
