//! Circuit breaker over the serving degradation ladder.
//!
//! Classic breakers are open/closed: trip and reject everything until a
//! probe succeeds. That is the wrong shape for this engine, because the
//! engine *has* cheaper, more robust rungs to stand on — the
//! monomorphised stage-2 kernels when the JIT misbehaves, and the im2col
//! baseline when the Winograd pipeline itself is implicated. The breaker
//! therefore walks [`DegradeLevel`] one rung at a time: consecutive
//! batch failures demote, a run of consecutive successes promotes.
//! Rejection only happens when even the bottom rung fails the batcher's
//! bounded retries.

use std::time::Duration;

use crate::DegradeLevel;

/// Tunables for the breaker and the batcher's in-batch retry loop.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive batch failures before demoting one rung.
    pub trip_threshold: u32,
    /// Consecutive batch successes before promoting one rung.
    pub recovery_threshold: u32,
    /// Bounded retries *within* one batch before its requests fail.
    pub max_retries: u32,
    /// Base backoff between in-batch retries (scaled linearly by the
    /// attempt number).
    pub backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_threshold: 2,
            recovery_threshold: 16,
            max_retries: 2,
            backoff: Duration::from_millis(1),
        }
    }
}

/// Failure-streak tracker owning the current [`DegradeLevel`]. Single
/// writer (the batcher thread); snapshots are published separately.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    level: DegradeLevel,
    consecutive_failures: u32,
    consecutive_successes: u32,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            cfg,
            level: DegradeLevel::Full,
            consecutive_failures: 0,
            consecutive_successes: 0,
        }
    }

    /// The rung the next batch should execute at.
    pub fn level(&self) -> DegradeLevel {
        self.level
    }

    /// Record a successful batch; `true` if the streak promoted the
    /// ladder one rung (a recovery).
    pub fn on_success(&mut self) -> bool {
        self.consecutive_failures = 0;
        self.consecutive_successes += 1;
        if self.consecutive_successes >= self.cfg.recovery_threshold {
            if let Some(up) = self.level.promoted() {
                self.level = up;
                self.consecutive_successes = 0;
                return true;
            }
        }
        false
    }

    /// Record a failed batch attempt; `true` if the streak tripped the
    /// breaker (demoted the ladder one rung).
    pub fn on_failure(&mut self) -> bool {
        self.consecutive_successes = 0;
        self.consecutive_failures += 1;
        if self.consecutive_failures >= self.cfg.trip_threshold {
            if let Some(down) = self.level.degraded() {
                self.level = down;
                self.consecutive_failures = 0;
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(trip: u32, recover: u32) -> BreakerConfig {
        BreakerConfig { trip_threshold: trip, recovery_threshold: recover, ..Default::default() }
    }

    #[test]
    fn failure_streak_walks_the_ladder_down() {
        let mut b = CircuitBreaker::new(cfg(2, 4));
        assert_eq!(b.level(), DegradeLevel::Full);
        assert!(!b.on_failure());
        assert!(b.on_failure(), "second consecutive failure trips");
        assert_eq!(b.level(), DegradeLevel::Mono);
        assert!(!b.on_failure());
        assert!(b.on_failure());
        assert_eq!(b.level(), DegradeLevel::Im2col);
        // At the bottom the streak keeps counting but never trips again.
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.level(), DegradeLevel::Im2col);
    }

    #[test]
    fn success_streak_recovers_one_rung_at_a_time() {
        let mut b = CircuitBreaker::new(cfg(1, 3));
        b.on_failure();
        b.on_failure();
        assert_eq!(b.level(), DegradeLevel::Im2col);
        assert!(!b.on_success());
        assert!(!b.on_success());
        assert!(b.on_success(), "third consecutive success recovers");
        assert_eq!(b.level(), DegradeLevel::Mono);
        // An intervening failure resets the success streak.
        assert!(b.on_failure());
        assert_eq!(b.level(), DegradeLevel::Im2col);
        b.on_success();
        b.on_success();
        assert!(b.on_success());
        b.on_success();
        b.on_success();
        assert!(b.on_success());
        assert_eq!(b.level(), DegradeLevel::Full, "full recovery possible");
        // At the top, success streaks never promote past Full.
        assert!(!b.on_success());
    }

    #[test]
    fn failure_resets_success_streak_and_vice_versa() {
        let mut b = CircuitBreaker::new(cfg(2, 2));
        b.on_failure();
        assert!(!b.on_success(), "success clears the failure streak");
        assert!(!b.on_failure(), "single failure after success does not trip");
        assert_eq!(b.level(), DegradeLevel::Full);
    }
}
