//! Circuit breaker over the serving degradation ladder.
//!
//! Classic breakers are open/closed: trip and reject everything until a
//! probe succeeds. That is the wrong shape for this engine, because the
//! engine *has* cheaper, more robust rungs to stand on — the
//! monomorphised stage-2 kernels when the JIT misbehaves, and the im2col
//! baseline when the Winograd pipeline itself is implicated. The breaker
//! therefore walks [`DegradeLevel`] one rung at a time: consecutive
//! batch failures demote, a run of consecutive successes promotes.
//! Rejection only happens when even the bottom rung fails the batcher's
//! bounded retries.
//!
//! Like the queue primitives, the breaker is written generically over
//! the [`Atomics`] seam ([`CircuitBreakerIn`]) so its trip/promote
//! monotonicity — a single failure can move the ladder at most one rung,
//! and only on a full streak — is model-checked over interleavings of
//! the *shipped* source in `wino-analyze`. The state words are atomic so
//! the submit path can read the current rung directly from the breaker
//! (no separate published copy to fall out of sync); mutation remains
//! single-writer (the batcher thread).

use std::sync::atomic::Ordering;
use std::time::Duration;

use wino_sched::atomics::{AtomicUsizeOps, Atomics, StdAtomics};

use crate::DegradeLevel;

/// Tunables for the breaker and the batcher's in-batch retry loop.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive batch failures before demoting one rung.
    pub trip_threshold: u32,
    /// Consecutive batch successes before promoting one rung.
    pub recovery_threshold: u32,
    /// Bounded retries *within* one batch before its requests fail.
    pub max_retries: u32,
    /// Base backoff between in-batch retries (scaled linearly by the
    /// attempt number).
    pub backoff: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_threshold: 2,
            recovery_threshold: 16,
            max_retries: 2,
            backoff: Duration::from_millis(1),
        }
    }
}

/// Failure-streak tracker owning the current [`DegradeLevel`]. Single
/// writer (the batcher thread) via `on_success`/`on_failure`; any thread
/// may snapshot [`CircuitBreakerIn::level`] — the submit path reads it
/// for admission-time shed decisions. `CircuitBreaker` is the production
/// instantiation.
pub struct CircuitBreakerIn<A: Atomics> {
    cfg: BreakerConfig,
    /// Current rung as `DegradeLevel as usize`; the one cross-thread word.
    level: A::AtomicUsize,
    consecutive_failures: A::AtomicUsize,
    consecutive_successes: A::AtomicUsize,
}

/// The production breaker.
pub type CircuitBreaker = CircuitBreakerIn<StdAtomics>;

impl<A: Atomics> CircuitBreakerIn<A> {
    pub fn new(cfg: BreakerConfig) -> CircuitBreakerIn<A> {
        CircuitBreakerIn {
            cfg,
            level: A::AtomicUsize::new(DegradeLevel::Full as usize),
            consecutive_failures: A::AtomicUsize::new(0),
            consecutive_successes: A::AtomicUsize::new(0),
        }
    }

    /// The rung the next batch should execute at.
    pub fn level(&self) -> DegradeLevel {
        DegradeLevel::from_u8(self.level.load(Ordering::Acquire) as u8)
    }

    /// Record a successful batch; `true` if the streak promoted the
    /// ladder one rung (a recovery). Single-writer.
    pub fn on_success(&self) -> bool {
        // ORDERING: Relaxed — the streak counters are private to the
        // single writer; only `level` is read cross-thread.
        self.consecutive_failures.store(0, Ordering::Relaxed);
        // ORDERING: Relaxed — single-writer counter, as above.
        let streak = self.consecutive_successes.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.cfg.recovery_threshold as usize {
            if let Some(up) = self.level().promoted() {
                self.level.store(up as usize, Ordering::Release);
                // ORDERING: Relaxed — single-writer counter, as above.
                self.consecutive_successes.store(0, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Record a failed batch attempt; `true` if the streak tripped the
    /// breaker (demoted the ladder one rung). Single-writer.
    pub fn on_failure(&self) -> bool {
        // ORDERING: Relaxed — single-writer counter (see `on_success`).
        self.consecutive_successes.store(0, Ordering::Relaxed);
        // ORDERING: Relaxed — single-writer counter (see `on_success`).
        let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
        if streak >= self.cfg.trip_threshold as usize {
            if let Some(down) = self.level().degraded() {
                self.level.store(down as usize, Ordering::Release);
                // ORDERING: Relaxed — single-writer counter (see above).
                self.consecutive_failures.store(0, Ordering::Relaxed);
                return true;
            }
        }
        false
    }
}

impl<A: Atomics> std::fmt::Debug for CircuitBreakerIn<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CircuitBreaker")
            .field("level", &self.level())
            .field("cfg", &self.cfg)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(trip: u32, recover: u32) -> BreakerConfig {
        BreakerConfig { trip_threshold: trip, recovery_threshold: recover, ..Default::default() }
    }

    #[test]
    fn failure_streak_walks_the_ladder_down() {
        let b = CircuitBreaker::new(cfg(2, 4));
        assert_eq!(b.level(), DegradeLevel::Full);
        assert!(!b.on_failure());
        assert!(b.on_failure(), "second consecutive failure trips");
        assert_eq!(b.level(), DegradeLevel::Mono);
        assert!(!b.on_failure());
        assert!(b.on_failure());
        assert_eq!(b.level(), DegradeLevel::Im2col);
        // At the bottom the streak keeps counting but never trips again.
        assert!(!b.on_failure());
        assert!(!b.on_failure());
        assert_eq!(b.level(), DegradeLevel::Im2col);
    }

    #[test]
    fn success_streak_recovers_one_rung_at_a_time() {
        let b = CircuitBreaker::new(cfg(1, 3));
        b.on_failure();
        b.on_failure();
        assert_eq!(b.level(), DegradeLevel::Im2col);
        assert!(!b.on_success());
        assert!(!b.on_success());
        assert!(b.on_success(), "third consecutive success recovers");
        assert_eq!(b.level(), DegradeLevel::Mono);
        // An intervening failure resets the success streak.
        assert!(b.on_failure());
        assert_eq!(b.level(), DegradeLevel::Im2col);
        b.on_success();
        b.on_success();
        assert!(b.on_success());
        b.on_success();
        b.on_success();
        assert!(b.on_success());
        assert_eq!(b.level(), DegradeLevel::Full, "full recovery possible");
        // At the top, success streaks never promote past Full.
        assert!(!b.on_success());
    }

    #[test]
    fn failure_resets_success_streak_and_vice_versa() {
        let b = CircuitBreaker::new(cfg(2, 2));
        b.on_failure();
        assert!(!b.on_success(), "success clears the failure streak");
        assert!(!b.on_failure(), "single failure after success does not trip");
        assert_eq!(b.level(), DegradeLevel::Full);
    }

    #[test]
    fn level_snapshot_is_readable_through_a_shared_reference() {
        let b = std::sync::Arc::new(CircuitBreaker::new(cfg(1, 1)));
        let b2 = std::sync::Arc::clone(&b);
        b.on_failure();
        let h = std::thread::spawn(move || b2.level());
        assert_eq!(h.join().unwrap(), DegradeLevel::Mono);
    }
}
