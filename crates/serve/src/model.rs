//! The served model's specification and its calibrated service-time
//! model.
//!
//! Admission control needs an a-priori answer to "can this request
//! still meet its deadline from the back of the queue?". The estimate
//! reuses the repo's roofline machinery: a calibrated
//! [`MachineModel`] (attainable GFLOP/s and memory bandwidth, e.g. from
//! `wino_bench::perf::calibrate`) plus the network's direct-convolution
//! FLOP count gives a per-image service time the same way the perf
//! reports bound attainable throughput. The estimate is deliberately
//! conservative — shedding a request that would *just* have made it is a
//! policy cost; admitting one that cannot make it wastes machine time
//! twice (on the doomed request and on everyone queued behind it).

use std::time::Duration;

use wino_conv::{ConvOptions, LayerSpec};
use wino_probe::MachineModel;
use wino_tensor::{ConvShape, ShapeError};

/// The network a [`crate::Server`] serves: fixed input geometry plus the
/// layer stack and planning options.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Input channels (must be a multiple of the SIMD width `S`).
    pub in_channels: usize,
    /// Input spatial extents (one entry per dimension).
    pub image_dims: Vec<usize>,
    /// The layer stack.
    pub layers: Vec<LayerSpec>,
    /// Planning options; `opts.watchdog` also configures the serving
    /// pool's barrier watchdog.
    pub opts: ConvOptions,
}

impl ModelSpec {
    /// A spec with default [`ConvOptions`].
    pub fn new(in_channels: usize, image_dims: Vec<usize>, layers: Vec<LayerSpec>) -> ModelSpec {
        ModelSpec { in_channels, image_dims, layers, opts: ConvOptions::default() }
    }

    /// Per-layer `(shape, output dims)` at the given batch size, chained
    /// through `opts`' conv geometry — with a stride each layer's input
    /// is the *decimated* output of the previous one, not the identity
    /// extent [`ConvShape::out_dims`] reports.
    pub fn chained_shapes(
        &self,
        batch: usize,
    ) -> Result<Vec<(ConvShape, Vec<usize>)>, ShapeError> {
        let geo = self.opts.geometry(self.image_dims.len());
        let mut out = Vec::with_capacity(self.layers.len());
        let mut c = self.in_channels;
        let mut dims = self.image_dims.clone();
        for l in &self.layers {
            let s = ConvShape::new(batch, c, l.out_channels, &dims, &l.kernel, &l.padding)?;
            c = l.out_channels;
            dims = geo.out_dims(&s)?;
            out.push((s, dims.clone()));
        }
        Ok(out)
    }

    /// Per-layer convolution shapes at the given batch size.
    pub fn shapes(&self, batch: usize) -> Result<Vec<ConvShape>, ShapeError> {
        Ok(self.chained_shapes(batch)?.into_iter().map(|(s, _)| s).collect())
    }

    /// `(channels, spatial dims)` of the network's output.
    pub fn output_geometry(&self) -> Result<(usize, Vec<usize>), ShapeError> {
        let chained = self.chained_shapes(1)?;
        let (last, dims) = chained.last().expect("Server::start rejects empty layer stacks");
        Ok((last.out_channels, dims.clone()))
    }

    /// Direct-convolution FLOPs for one batch of `batch` images — the
    /// roofline work estimate (an upper bound on Winograd's arithmetic,
    /// which is the conservative direction for admission control).
    /// Geometry-aware: a stride-2 layer does a quarter of the stride-1
    /// work, and grouping divides the channel product by `G`.
    pub fn direct_flops(&self, batch: usize) -> Result<u128, ShapeError> {
        let geo = self.opts.geometry(self.image_dims.len());
        let mut total = 0u128;
        for (s, _) in self.chained_shapes(batch)? {
            total += 2 * geo.direct_macs(&s)?;
        }
        Ok(total)
    }
}

/// Suggested batch ceiling from the blocking model: the smallest batch
/// whose tile grid keeps `threads` workers load-balanced (≥ 4 tile
/// work-units per thread in the *least* parallel layer — the same
/// saturation reasoning the tuner's Eq. 11 blocking uses), capped at 16
/// so batching never trades unbounded latency for throughput.
pub fn suggested_max_batch(spec: &ModelSpec, threads: usize) -> Result<usize, ShapeError> {
    let mut min_tiles = usize::MAX;
    for ((_, out), l) in spec.chained_shapes(1)?.iter().zip(&spec.layers) {
        let tiles: usize = out
            .iter()
            .zip(&l.m)
            .map(|(&e, &m)| e.div_ceil(m.max(1)))
            .product();
        min_tiles = min_tiles.min(tiles.max(1));
    }
    let want = 4 * threads.max(1);
    Ok(want.div_ceil(min_tiles).clamp(1, 16))
}

/// Calibrated per-image service time, the admission-control oracle.
#[derive(Clone, Copy, Debug)]
pub struct ServiceModel {
    /// Marginal cost of one image in a batch, milliseconds.
    pub per_image_ms: f64,
    /// Fixed cost per dispatched batch (fork–join launches, plan-cache
    /// lookups), milliseconds.
    pub batch_overhead_ms: f64,
}

impl ServiceModel {
    /// Derive the model from a calibrated machine roofline. `efficiency`
    /// (in `(0, 1]`) discounts the attainable peak to what the pipeline
    /// realistically sustains; 0.5 is a sensible default for admission
    /// purposes.
    pub fn from_roofline(
        machine: &MachineModel,
        spec: &ModelSpec,
        efficiency: f64,
    ) -> Result<ServiceModel, ShapeError> {
        let eff = if efficiency > 0.0 && efficiency <= 1.0 { efficiency } else { 0.5 };
        let flops = spec.direct_flops(1)? as f64;
        let compute_s = flops / (machine.peak_gflops.max(1e-3) * 1e9 * eff);
        // Memory floor: every layer streams its input and output at
        // least once.
        let mut bytes = 0u128;
        for (s, out) in spec.chained_shapes(1)? {
            let in_vol: usize = s.image_dims.iter().product();
            let out_vol: usize = out.iter().product();
            bytes += 4 * (s.in_channels * in_vol + s.out_channels * out_vol) as u128;
        }
        let mem_s = bytes as f64 / (machine.mem_bw_gbps.max(1e-3) * 1e9);
        let per_image_ms = compute_s.max(mem_s) * 1e3;
        // Fork–join launch + barrier cost, per layer per batch — a
        // coarse constant; the admission estimate only needs the right
        // order of magnitude.
        let batch_overhead_ms = 0.05 * spec.layers.len() as f64;
        Ok(ServiceModel { per_image_ms, batch_overhead_ms })
    }

    /// A model from a measured per-image latency (no roofline needed).
    pub fn from_measurement(per_image_ms: f64, batch_overhead_ms: f64) -> ServiceModel {
        ServiceModel { per_image_ms, batch_overhead_ms }
    }

    /// Estimated service time of one `n`-image batch, milliseconds.
    pub fn batch_ms(&self, n: usize) -> f64 {
        self.batch_overhead_ms + self.per_image_ms * n as f64
    }

    /// Estimated time to drain `queued` waiting images plus one new
    /// request, given batches of up to `max_batch`, milliseconds.
    pub fn drain_ms(&self, queued: usize, max_batch: usize) -> f64 {
        let images = queued + 1;
        let batches = images.div_ceil(max_batch.max(1));
        self.per_image_ms * images as f64 + self.batch_overhead_ms * batches as f64
    }

    /// Throughput ceiling at a given batch size, requests per second —
    /// the "sustainable load" reference for the load generator.
    pub fn sustainable_rps(&self, batch: usize) -> f64 {
        let b = batch.max(1);
        b as f64 / (self.batch_ms(b) / 1e3)
    }

    /// `drain_ms` as a [`Duration`] (saturating, for deadline math).
    pub fn drain_duration(&self, queued: usize, max_batch: usize) -> Duration {
        Duration::from_secs_f64((self.drain_ms(queued, max_batch) / 1e3).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_conv::LayerSpec;

    fn spec() -> ModelSpec {
        ModelSpec::new(16, vec![8, 8], vec![LayerSpec::same(32, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)])
    }

    #[test]
    fn shapes_chain_channels_and_dims() {
        let s = spec().shapes(2).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].in_channels, 16);
        assert_eq!(s[0].out_channels, 32);
        assert_eq!(s[1].in_channels, 32);
        assert_eq!(s[1].out_channels, 16);
        assert_eq!(s[0].batch, 2);
        let (c, dims) = spec().output_geometry().unwrap();
        assert_eq!((c, dims), (16, vec![8, 8])); // same-padded
    }

    #[test]
    fn roofline_model_is_positive_and_monotonic() {
        let machine = MachineModel { peak_gflops: 100.0, mem_bw_gbps: 50.0, threads: 4 };
        let m = ServiceModel::from_roofline(&machine, &spec(), 0.5).unwrap();
        assert!(m.per_image_ms > 0.0);
        assert!(m.batch_ms(4) > m.batch_ms(1));
        assert!(m.drain_ms(8, 4) > m.drain_ms(0, 4));
        assert!(m.sustainable_rps(4) > 0.0);
        // Slower machine → slower model.
        let slow = MachineModel { peak_gflops: 1.0, mem_bw_gbps: 1.0, threads: 1 };
        let ms = ServiceModel::from_roofline(&slow, &spec(), 0.5).unwrap();
        assert!(ms.per_image_ms > m.per_image_ms);
    }

    #[test]
    fn strided_spec_chains_decimated_dims() {
        let mut sp = spec();
        sp.opts = sp.opts.with_stride(&[2, 2]);
        // 8×8 → 4×4 → 2×2: each layer's input is the previous layer's
        // *decimated* output.
        let chained = sp.chained_shapes(1).unwrap();
        assert_eq!(chained[0].1, vec![4, 4]);
        assert_eq!(chained[1].0.image_dims, vec![4, 4]);
        assert_eq!(chained[1].1, vec![2, 2]);
        assert_eq!(sp.output_geometry().unwrap(), (16, vec![2, 2]));
        // Stride-2 work is far below the stride-1 estimate; admission
        // control must not over-charge strided models 4× per layer.
        let dense = spec().direct_flops(1).unwrap();
        let strided = sp.direct_flops(1).unwrap();
        assert!(strided < dense / 3, "strided {strided} vs dense {dense}");
        // Fewer tiles per layer → larger batches needed to saturate.
        assert!(
            suggested_max_batch(&sp, 16).unwrap() > suggested_max_batch(&spec(), 16).unwrap()
        );
    }

    #[test]
    fn suggested_batch_scales_with_threads_and_is_capped() {
        let sp = spec();
        // 8×8 same-pad, m=2 → 16 tiles per layer; 1 thread needs 4 units.
        assert_eq!(suggested_max_batch(&sp, 1).unwrap(), 1);
        // 64 threads want 256 units → ceil(256/16) = 16 (at the cap).
        assert_eq!(suggested_max_batch(&sp, 64).unwrap(), 16);
        assert!(suggested_max_batch(&sp, 1024).unwrap() <= 16);
    }
}
