//! The serving core: submit-side admission control and the batcher
//! thread.
//!
//! The core is deliberately synchronous — one batcher thread owns the
//! executor, the plan cache and the breaker, so the failure domain is a
//! single loop whose every exit path resolves the requests it holds.
//! Concurrency lives at the edges: any number of producer threads call
//! [`Server::submit`]; each gets back a [`Ticket`] it can block on.
//!
//! Fault containment layers, outermost first:
//!
//! 1. worker panics and barrier timeouts are absorbed by the fork–join
//!    pool ([`wino_sched::PoolError`]) and surface as typed
//!    [`WinoError::Pool`] batch failures;
//! 2. a batch failure resolves *only that batch's* requests
//!    ([`ServeError::Failed`]) after bounded in-batch retries;
//! 3. the pool is health-checked after every failure and rebuilt if
//!    poisoned;
//! 4. failure streaks trip the [`CircuitBreaker`] down the
//!    [`DegradeLevel`] ladder — and success streaks climb back up;
//! 5. if the batcher itself unwinds, every queued request's drop guard
//!    resolves its ticket with [`ServeError::ShutDown`] — no waiter is
//!    ever leaked.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wino_conv::{
    Activation, ExecutionReport, FallbackPolicy, LayerBackend, Network, Stage2Backend, WinoError,
};
use wino_probe::Counter;
use wino_sched::{default_deadline, Executor, PoolError, SerialExecutor, StaticExecutor};
use wino_tensor::{BlockedImage, BlockedKernels, ShapeError};

use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::model::{suggested_max_batch, ModelSpec, ServiceModel};
use crate::queue::{DeadlineQueue, Pending, PushReject, Slot, Ticket};
use crate::{DegradeLevel, ServeError, ServeReport, ServeResponse};

/// Serving configuration.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Bounded queue capacity; a full queue sheds with
    /// [`ServeError::Overloaded`]. Capacity 0 is legal and sheds every
    /// request — useful for drain/maintenance modes.
    pub queue_capacity: usize,
    /// Batch ceiling; `0` derives it from the blocking model
    /// ([`suggested_max_batch`]).
    pub max_batch: usize,
    /// How long the batcher holds an open batch waiting for co-riders.
    pub max_batch_age: Duration,
    /// Worker threads (1 ⇒ serial executor, no pool to poison).
    pub threads: usize,
    /// Admission-control oracle; `None` disables predictive shedding
    /// (capacity and deadline shedding remain).
    pub service: Option<ServiceModel>,
    /// Byte ceiling for the server's modeled concurrent footprint
    /// (plans + scratch + one output per queued and in-flight image,
    /// priced by the analytic [`wino_conv::MemoryFootprint`] at start).
    /// `None` disables byte-budget admission. A ceiling below the
    /// resident base sheds every request — like `queue_capacity: 0`, a
    /// legal drain configuration, not a start-time error.
    pub memory_ceiling: Option<usize>,
    /// Breaker and retry tunables.
    pub breaker: BreakerConfig,
    /// Execution-time fallback policy threaded into the engine.
    pub policy: FallbackPolicy,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            queue_capacity: 64,
            max_batch: 0,
            max_batch_age: Duration::from_millis(2),
            threads: 1,
            service: None,
            memory_ceiling: None,
            breaker: BreakerConfig::default(),
            policy: FallbackPolicy::default(),
        }
    }
}

/// The linear byte-pricing model behind [`ServeOptions::memory_ceiling`],
/// fitted at [`Server::start`] from the analytic footprint of batch-1
/// and batch-2 plans: admitting `n` concurrent images is priced at
/// `base_bytes + n · per_image_bytes`.
#[derive(Clone, Copy, Debug)]
pub struct MemoryAdmission {
    /// The configured ceiling the model is compared against.
    pub ceiling_bytes: usize,
    /// Batch-independent resident bytes (plans, kernels, scratch).
    pub base_bytes: usize,
    /// Marginal bytes per queued or in-flight image.
    pub per_image_bytes: usize,
}

impl MemoryAdmission {
    /// Modeled footprint with `images` concurrent requests.
    pub fn need_bytes(&self, images: usize) -> usize {
        self.base_bytes.saturating_add(self.per_image_bytes.saturating_mul(images))
    }

    /// Whether `images` concurrent requests fit under the ceiling.
    pub fn admits(&self, images: usize) -> bool {
        self.need_bytes(images) <= self.ceiling_bytes
    }
}

impl ServeOptions {
    /// The defaults with `threads` sized by the detected topology
    /// ([`wino_sched::configured_threads`] — honours the `WINO_THREADS`
    /// and `WINO_TOPOLOGY` overrides), the one sanctioned way to build a
    /// full-width server without an ad-hoc `available_parallelism` read.
    pub fn with_detected_threads() -> Self {
        ServeOptions { threads: wino_sched::configured_threads(), ..Default::default() }
    }
}

/// Internal per-server tallies (monotonic atomics; also mirrored into
/// the process-global [`Counter`] family for the probe reports).
#[derive(Default)]
struct Stats {
    submitted: AtomicU64,
    admitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    shed_overload: AtomicU64,
    shed_deadline: AtomicU64,
    shed_predicted: AtomicU64,
    shed_memory: AtomicU64,
    batches: AtomicU64,
    batch_failures: AtomicU64,
    breaker_trips: AtomicU64,
    breaker_recoveries: AtomicU64,
    pool_rebuilds: AtomicU64,
    peak_depth: AtomicU64,
    /// The batcher thread's own monotonic `wino_simd::thread_alloc_calls`
    /// tally, republished after every batch — the zero-steady-state-
    /// allocation proof reads its deltas.
    batcher_alloc_calls: AtomicU64,
}

impl Stats {
    fn bump(&self, cell: &AtomicU64, counter: Counter) {
        // ORDERING: Relaxed — monotonic tallies; atomicity suffices and
        // nothing is published under them.
        cell.fetch_add(1, Ordering::Relaxed);
        counter.add(1);
    }
}

/// A point-in-time snapshot of a server's tallies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests offered to [`Server::submit`] (including rejected ones).
    pub submitted: u64,
    /// Requests admitted into the queue.
    pub admitted: u64,
    /// Requests resolved with an output.
    pub completed: u64,
    /// Requests resolved with [`ServeError::Failed`].
    pub failed: u64,
    /// Shed at enqueue: queue full.
    pub shed_overload: u64,
    /// Shed with an expired deadline (at enqueue or in the queue).
    pub shed_deadline: u64,
    /// Shed by predictive admission control.
    pub shed_predicted: u64,
    /// Shed by byte-budget admission control.
    pub shed_memory: u64,
    /// Batch execution attempts dispatched.
    pub batches: u64,
    /// Batch attempts that failed (before retry accounting).
    pub batch_failures: u64,
    /// Breaker trips (ladder demotions).
    pub breaker_trips: u64,
    /// Breaker recoveries (ladder promotions).
    pub breaker_recoveries: u64,
    /// Fork–join pools rebuilt after poisoning.
    pub pool_rebuilds: u64,
    /// High-water queue depth.
    pub peak_depth: u64,
    /// Aligned-buffer allocation calls made by the batcher thread so
    /// far (monotonic; republished after every batch). In steady state
    /// the per-batch delta is exactly the unavoidable output buffers —
    /// one per layer plus one per request — because the assembly buffer
    /// and engine scratch are reused.
    pub batcher_alloc_calls: u64,
    /// Ladder rung the breaker currently stands on.
    pub level: DegradeLevel,
}

struct Shared {
    queue: DeadlineQueue,
    /// Images currently being executed by the batcher (admission
    /// estimates count them as queue-ahead work).
    in_flight: AtomicUsize,
    /// The breaker itself is the published level: its state words are
    /// atomic, so the submit path reads the rung straight from the
    /// source of truth instead of a separately-maintained copy.
    breaker: CircuitBreaker,
    stats: Stats,
}

/// An inference server over one [`ModelSpec`]. See the crate docs for
/// the pipeline; construct with [`Server::start`], stop with
/// [`Server::shutdown`] (or drop, which shuts down without draining
/// stats).
pub struct Server {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<()>>,
    next_id: AtomicU64,
    service: Option<ServiceModel>,
    memory: Option<MemoryAdmission>,
    max_batch: usize,
    max_batch_age: Duration,
    in_channels: usize,
    image_dims: Vec<usize>,
}

impl Server {
    /// Validate the spec (a batch-1 plan must exist under `opts.policy`),
    /// then spawn the batcher thread.
    pub fn start(
        spec: ModelSpec,
        kernels: Vec<BlockedKernels>,
        opts: ServeOptions,
    ) -> Result<Server, WinoError> {
        if spec.layers.is_empty() {
            return Err(WinoError::Unsupported("serving an empty layer stack"));
        }
        if kernels.len() != spec.layers.len() {
            return Err(WinoError::LayerCount { expected: spec.layers.len(), got: kernels.len() });
        }
        let threads = opts.threads.max(1);
        let max_batch = if opts.max_batch == 0 {
            suggested_max_batch(&spec, threads).map_err(WinoError::Shape)?
        } else {
            opts.max_batch
        };
        // Fail fast on ill-formed geometry: if no batch-1 plan exists
        // even under the fallback policy, serving can never succeed.
        let probe_net = Network::with_policy(
            1,
            spec.in_channels,
            &spec.image_dims,
            &spec.layers,
            spec.opts,
            threads,
            &opts.policy,
        )
        .map_err(WinoError::Plan)?;
        // Fit the linear byte-pricing model for memory admission: the
        // analytic footprint of the batch-1 plan anchors the line, and
        // a batch-2 plan gives the marginal per-image slope. If no
        // batch-2 plan exists the whole batch-1 footprint is charged
        // per image — the conservative direction for admission.
        let memory = opts.memory_ceiling.map(|ceiling_bytes| {
            let fp1 = probe_net.footprint(threads).total();
            let per_image_bytes = Network::with_policy(
                2,
                spec.in_channels,
                &spec.image_dims,
                &spec.layers,
                spec.opts,
                threads,
                &opts.policy,
            )
            .ok()
            .map(|net2| net2.footprint(threads).total().saturating_sub(fp1))
            .filter(|&d| d > 0)
            .unwrap_or(fp1);
            MemoryAdmission {
                ceiling_bytes,
                base_bytes: fp1.saturating_sub(per_image_bytes),
                per_image_bytes,
            }
        });
        drop(probe_net);

        let shared = Arc::new(Shared {
            queue: DeadlineQueue::new(opts.queue_capacity),
            in_flight: AtomicUsize::new(0),
            breaker: CircuitBreaker::new(opts.breaker),
            stats: Stats::default(),
        });
        let in_channels = spec.in_channels;
        let image_dims = spec.image_dims.clone();
        let worker = {
            let shared = Arc::clone(&shared);
            let policy = opts.policy;
            let breaker = opts.breaker;
            let age = opts.max_batch_age;
            std::thread::Builder::new()
                .name("wino-serve-batcher".into())
                .spawn(move || {
                    batcher_main(shared, spec, kernels, policy, breaker, threads, max_batch, age)
                })
                .expect("spawning the batcher thread")
        };
        Ok(Server {
            shared,
            worker: Some(worker),
            next_id: AtomicU64::new(1),
            service: opts.service,
            memory,
            max_batch,
            max_batch_age: opts.max_batch_age,
            in_channels,
            image_dims,
        })
    }

    /// Submit one image with a relative deadline.
    pub fn submit(&self, input: BlockedImage, deadline: Duration) -> Result<Ticket, ServeError> {
        self.submit_with_deadline(input, Instant::now() + deadline)
    }

    /// Submit one image with an absolute deadline. Sheds immediately —
    /// with a typed error and no ticket — when the queue is full, the
    /// deadline has already passed, or admission control predicts a
    /// miss.
    pub fn submit_with_deadline(
        &self,
        input: BlockedImage,
        deadline: Instant,
    ) -> Result<Ticket, ServeError> {
        let stats = &self.shared.stats;
        // ORDERING: Relaxed — monotonic tally, no ordering contract.
        stats.submitted.fetch_add(1, Ordering::Relaxed);
        self.check_shape(&input)?;
        let now = Instant::now();
        if deadline <= now {
            stats.bump(&stats.shed_deadline, Counter::ServeShedDeadline);
            return Err(ServeError::DeadlineExceeded {
                missed_by_ms: (now - deadline).as_secs_f64() * 1e3,
            });
        }
        if let Some(svc) = &self.service {
            // ORDERING: Relaxed — advisory load-estimate input; a stale
            // value only skews the admission heuristic, never correctness.
            let queued = self.shared.queue.depth() + self.shared.in_flight.load(Ordering::Relaxed);
            let estimated_ms = svc.drain_ms(queued, self.max_batch)
                + self.max_batch_age.as_secs_f64() * 1e3;
            let budget_ms = (deadline - now).as_secs_f64() * 1e3;
            if estimated_ms > budget_ms {
                stats.bump(&stats.shed_predicted, Counter::ServeShedPredicted);
                return Err(ServeError::PredictedMiss { estimated_ms, budget_ms });
            }
        }
        if let Some(mem) = &self.memory {
            // ORDERING: Relaxed — advisory load-estimate input, exactly
            // like the deadline oracle above; a stale depth only skews
            // the byte estimate, never correctness.
            let images = self.shared.queue.depth()
                + self.shared.in_flight.load(Ordering::Relaxed)
                + 1;
            if !mem.admits(images) {
                stats.bump(&stats.shed_memory, Counter::ServeShedMemory);
                return Err(ServeError::MemoryPressure {
                    need_bytes: mem.need_bytes(images),
                    ceiling_bytes: mem.ceiling_bytes,
                });
            }
        }
        // ORDERING: Relaxed — uniqueness needs atomicity only; ids carry
        // no happens-before obligations.
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let slot = Slot::new();
        let pending =
            Pending { id, input, enqueued: now, deadline, slot: Arc::clone(&slot) };
        match self.shared.queue.push(pending) {
            Ok(depth) => {
                stats.bump(&stats.admitted, Counter::ServeAdmitted);
                // ORDERING: Relaxed — monotonic high-water mark, no ordering contract.
                stats.peak_depth.fetch_max(depth as u64, Ordering::Relaxed);
                Counter::ServeQueuePeakDepth.record_max(depth as u64);
                Ok(Ticket::new(slot, id))
            }
            Err(PushReject::Full { depth }) => {
                stats.bump(&stats.shed_overload, Counter::ServeShedOverload);
                Err(ServeError::Overloaded { depth, capacity: self.shared.queue.capacity() })
            }
            Err(PushReject::ShutDown) => Err(ServeError::ShutDown),
        }
    }

    fn check_shape(&self, input: &BlockedImage) -> Result<(), ServeError> {
        let fail = |e: ShapeError| Err(ServeError::Failed(Arc::new(WinoError::Shape(e))));
        if input.batch != 1 {
            return fail(ShapeError::Mismatch {
                what: "request batch",
                expected: 1,
                got: input.batch,
            });
        }
        if input.channels != self.in_channels {
            return fail(ShapeError::Mismatch {
                what: "request channels",
                expected: self.in_channels,
                got: input.channels,
            });
        }
        if input.dims.len() != self.image_dims.len() {
            return fail(ShapeError::RankMismatch {
                expected: self.image_dims.len(),
                got: input.dims.len(),
            });
        }
        for (&want, &got) in self.image_dims.iter().zip(&input.dims) {
            if want != got {
                return fail(ShapeError::Mismatch {
                    what: "request image extent",
                    expected: want,
                    got,
                });
            }
        }
        Ok(())
    }

    /// Current queue depth (requests waiting, not counting in-flight).
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.depth()
    }

    /// The ladder rung the breaker currently stands on.
    pub fn level(&self) -> DegradeLevel {
        self.shared.breaker.level()
    }

    /// The resolved batch ceiling.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The fitted byte-pricing model, when a
    /// [`ServeOptions::memory_ceiling`] is configured.
    pub fn memory_model(&self) -> Option<MemoryAdmission> {
        self.memory
    }

    /// Snapshot the tallies.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        // ORDERING: Relaxed — point-in-time tally snapshot; each cell is
        // independently monotonic and nothing is published under them.
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStats {
            submitted: get(&s.submitted),
            admitted: get(&s.admitted),
            completed: get(&s.completed),
            failed: get(&s.failed),
            shed_overload: get(&s.shed_overload),
            shed_deadline: get(&s.shed_deadline),
            shed_predicted: get(&s.shed_predicted),
            shed_memory: get(&s.shed_memory),
            batches: get(&s.batches),
            batch_failures: get(&s.batch_failures),
            breaker_trips: get(&s.breaker_trips),
            breaker_recoveries: get(&s.breaker_recoveries),
            pool_rebuilds: get(&s.pool_rebuilds),
            peak_depth: get(&s.peak_depth),
            batcher_alloc_calls: get(&s.batcher_alloc_calls),
            level: self.level(),
        }
    }

    /// Graceful shutdown: stop admitting, serve everything already
    /// queued, join the batcher, and return the final tallies. Requests
    /// left unresolved by an early batcher death resolve as
    /// [`ServeError::ShutDown`].
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        self.shared.queue.begin_shutdown();
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        // If the batcher died before draining, dropping the leftovers
        // resolves their tickets (drop guard).
        drop(self.shared.queue.drain_remaining());
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The batcher's executor: serial when `threads == 1` (nothing to
/// poison), otherwise a static fork–join pool that can be health-checked
/// and rebuilt.
enum WorkerExec {
    Serial,
    Pool { exec: StaticExecutor, threads: usize, watchdog: Duration },
}

impl WorkerExec {
    fn new(threads: usize, watchdog: Duration) -> WorkerExec {
        if threads <= 1 {
            WorkerExec::Serial
        } else {
            WorkerExec::Pool {
                exec: StaticExecutor::with_deadline(threads, watchdog),
                threads,
                watchdog,
            }
        }
    }

    fn executor(&self) -> &dyn Executor {
        match self {
            WorkerExec::Serial => &SerialExecutor,
            WorkerExec::Pool { exec, .. } => exec,
        }
    }

    /// Probe pool health after a failure; rebuild if poisoned. Returns
    /// `true` when a rebuild happened.
    fn heal(&mut self) -> bool {
        match self {
            WorkerExec::Serial => false,
            WorkerExec::Pool { exec, threads, watchdog } => {
                if exec.pool().is_dead() || exec.pool().health_check().is_err() {
                    *exec = StaticExecutor::with_deadline(*threads, *watchdog);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Plan cache + degraded execution paths. Owned by the batcher thread.
struct Engine {
    spec: ModelSpec,
    kernels: Vec<BlockedKernels>,
    policy: FallbackPolicy,
    threads: usize,
    /// Cached network plans keyed by `(batch, ladder rung)`; the im2col
    /// rung bypasses `Network` entirely.
    plans: HashMap<(usize, u8), Network>,
}

impl Engine {
    fn new(
        spec: ModelSpec,
        kernels: Vec<BlockedKernels>,
        policy: FallbackPolicy,
        threads: usize,
    ) -> Engine {
        Engine { spec, kernels, policy, threads, plans: HashMap::new() }
    }

    fn run(
        &mut self,
        input: &BlockedImage,
        level: DegradeLevel,
        exec: &dyn Executor,
    ) -> Result<(BlockedImage, Vec<ExecutionReport>), WinoError> {
        match level {
            DegradeLevel::Full | DegradeLevel::Mono => {
                let net = match self.plans.entry((input.batch, level as u8)) {
                    std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                    std::collections::hash_map::Entry::Vacant(v) => {
                        let mut opts = self.spec.opts;
                        if level == DegradeLevel::Mono {
                            opts.stage2 = Stage2Backend::Mono;
                        }
                        v.insert(
                            Network::with_policy(
                                input.batch,
                                self.spec.in_channels,
                                &self.spec.image_dims,
                                &self.spec.layers,
                                opts,
                                self.threads,
                                &self.policy,
                            )
                            .map_err(WinoError::Plan)?,
                        )
                    }
                };
                net.run_net(input, &self.kernels, exec, &self.policy)
            }
            DegradeLevel::Im2col => self.run_im2col(input, exec),
        }
    }

    /// The bottom rung: chain the layers through the im2col baseline,
    /// applying activations by hand. No Winograd machinery at all. The
    /// baseline is geometry-aware, so strided/dilated/grouped specs run
    /// on this rung exactly like the dispatch-planned ones above it.
    fn run_im2col(
        &self,
        input: &BlockedImage,
        exec: &dyn Executor,
    ) -> Result<(BlockedImage, Vec<ExecutionReport>), WinoError> {
        let geo = self.spec.opts.geometry(self.spec.image_dims.len());
        let shapes = self.spec.chained_shapes(input.batch).map_err(WinoError::Shape)?;
        let mut reports = Vec::with_capacity(shapes.len());
        let mut cur = input.clone();
        for (i, ((shape, out_dims), kern)) in shapes.iter().zip(&self.kernels).enumerate() {
            let mut out = BlockedImage::zeros(input.batch, shape.out_channels, out_dims)
                .map_err(WinoError::Shape)?;
            wino_baseline::im2col_conv_geo(&cur, kern, &shape.padding, &geo, &mut out, exec)
                .map_err(WinoError::Pool)?;
            if self.spec.layers[i].activation == Activation::Relu {
                for v in out.as_mut_slice() {
                    *v = v.max(0.0);
                }
            }
            reports.push(ExecutionReport {
                layer: i,
                backend: LayerBackend::Im2col,
                fallback: None,
            });
            cur = out;
        }
        Ok((cur, reports))
    }
}

/// Copy single-image requests into one contiguous batch (the blocked
/// layout is batch-outermost, so each image is one contiguous chunk of
/// `channels × spatial` floats).
#[cfg(test)]
fn assemble(batch: &[Pending], channels: usize, dims: &[usize]) -> BlockedImage {
    let mut img = BlockedImage::zeros(batch.len(), channels, dims)
        .expect("geometry validated at submit");
    fill_batch(&mut img, batch, channels);
    img
}

/// Copy requests into an already-allocated batch buffer. Every image
/// slot is fully overwritten, so a reused buffer carries no stale data.
fn fill_batch(img: &mut BlockedImage, batch: &[Pending], channels: usize) {
    let chunk = channels * img.spatial_volume();
    let dst = img.as_mut_slice();
    for (i, p) in batch.iter().enumerate() {
        dst[i * chunk..(i + 1) * chunk].copy_from_slice(p.input.as_slice());
    }
}

/// The batcher's per-batch-size assembly buffers: allocated once per
/// batch size ever seen (bounded by `max_batch`), reused for every
/// subsequent batch of that size so steady-state assembly allocates
/// nothing.
fn assemble_cached<'a>(
    cache: &'a mut HashMap<usize, BlockedImage>,
    batch: &[Pending],
    channels: usize,
    dims: &[usize],
) -> &'a BlockedImage {
    let img = cache.entry(batch.len()).or_insert_with(|| {
        BlockedImage::zeros(batch.len(), channels, dims).expect("geometry validated at submit")
    });
    fill_batch(img, batch, channels);
    img
}

/// Slice image `i` back out of a batched output.
fn split_one(out: &BlockedImage, i: usize) -> BlockedImage {
    let mut img = BlockedImage::zeros(1, out.channels, &out.dims)
        .expect("output geometry is valid by construction");
    let chunk = out.channels * out.spatial_volume();
    img.as_mut_slice().copy_from_slice(&out.as_slice()[i * chunk..(i + 1) * chunk]);
    img
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

#[allow(clippy::too_many_arguments)] // spawn-boundary plumbing: every argument is distinct server state
fn batcher_main(
    shared: Arc<Shared>,
    spec: ModelSpec,
    kernels: Vec<BlockedKernels>,
    policy: FallbackPolicy,
    breaker_cfg: BreakerConfig,
    threads: usize,
    max_batch: usize,
    max_age: Duration,
) {
    let watchdog = spec.opts.watchdog.unwrap_or_else(default_deadline);
    let channels = spec.in_channels;
    let dims = spec.image_dims.clone();
    let mut exec = WorkerExec::new(threads, watchdog);
    let mut engine = Engine::new(spec, kernels, policy, threads);
    let breaker = &shared.breaker;
    let mut batch_id: u64 = 0;
    let stats = &shared.stats;
    let mut assembly: HashMap<usize, BlockedImage> = HashMap::new();

    while let Some(batch) = shared.queue.pop_batch(max_batch, max_age) {
        // Shed requests whose deadline expired while they queued.
        let now = Instant::now();
        let (live, expired): (Vec<Pending>, Vec<Pending>) =
            batch.into_iter().partition(|p| p.deadline > now);
        for p in expired {
            stats.bump(&stats.shed_deadline, Counter::ServeShedDeadline);
            let mut report = ServeReport::unserved(p.id, breaker.level());
            report.queue_wait_ms = ms(now - p.enqueued);
            report.total_ms = report.queue_wait_ms;
            p.resolve(ServeResponse {
                output: Err(ServeError::DeadlineExceeded { missed_by_ms: ms(now - p.deadline) }),
                report,
            });
        }
        if live.is_empty() {
            continue;
        }

        // ORDERING: Relaxed — advisory load-estimate output read by the
        // admission heuristic; staleness is tolerated by design.
        shared.in_flight.store(live.len(), Ordering::Relaxed);
        batch_id += 1;
        let assembled = assemble_cached(&mut assembly, &live, channels, &dims);
        let dispatch = Instant::now();
        let mut retries: u32 = 0;
        let outcome = loop {
            let level = breaker.level();
            stats.bump(&stats.batches, Counter::ServeBatches);
            // The pool already converts worker panics into typed
            // errors; this catch_unwind is the coordinator-side belt to
            // that suspender — a panic on the batcher thread itself
            // (e.g. from injected coordinator faults) must degrade into
            // a typed batch failure, not an abandoned queue.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                engine.run(assembled, level, exec.executor())
            }))
            .unwrap_or_else(|_| {
                Err(WinoError::Pool(PoolError::Panicked {
                    panics: vec![(0, "serve batcher panicked".into())],
                }))
            });
            match attempt {
                Ok((out, reports)) => {
                    if breaker.on_success() {
                        stats.bump(&stats.breaker_recoveries, Counter::ServeBreakerRecoveries);
                    }
                    break Ok((out, reports, level));
                }
                Err(e) => {
                    stats.bump(&stats.batch_failures, Counter::ServeBatchFailures);
                    if breaker.on_failure() {
                        stats.bump(&stats.breaker_trips, Counter::ServeBreakerTrips);
                    }
                    if exec.heal() {
                        stats.bump(&stats.pool_rebuilds, Counter::ServePoolRebuilds);
                    }
                    if retries >= breaker_cfg.max_retries {
                        break Err((e, level));
                    }
                    retries += 1;
                    std::thread::sleep(breaker_cfg.backoff * retries);
                }
            }
        };
        let service_ms = ms(dispatch.elapsed());

        let make_report = |p: &Pending, level: DegradeLevel, layers: Vec<ExecutionReport>| {
            let finish = Instant::now();
            ServeReport {
                request_id: p.id,
                batch_id: Some(batch_id),
                batch_size: live.len(),
                queue_wait_ms: ms(dispatch - p.enqueued),
                service_ms,
                total_ms: ms(finish - p.enqueued),
                deadline_met: finish <= p.deadline && !layers.is_empty(),
                level,
                retries,
                layers,
            }
        };
        match outcome {
            Ok((out, reports, level)) => {
                for (i, p) in live.iter().enumerate() {
                    // ORDERING: Relaxed — monotonic tally, no ordering contract.
                    stats.completed.fetch_add(1, Ordering::Relaxed);
                    p.resolve(ServeResponse {
                        output: Ok(split_one(&out, i)),
                        report: make_report(p, level, reports.clone()),
                    });
                }
            }
            Err((e, level)) => {
                let e = Arc::new(e);
                for p in live.iter() {
                    // ORDERING: Relaxed — monotonic tally, no ordering contract.
                    stats.failed.fetch_add(1, Ordering::Relaxed);
                    p.resolve(ServeResponse {
                        output: Err(ServeError::Failed(Arc::clone(&e))),
                        report: make_report(p, level, Vec::new()),
                    });
                }
            }
        }
        // ORDERING: Relaxed — advisory load-estimate output, as above.
        shared.in_flight.store(0, Ordering::Relaxed);
        // Republish this thread's monotonic allocation tally so tests
        // and reports can prove the hot path stopped allocating scratch.
        // ORDERING: Relaxed — single-writer statistics; readers only
        // compare successive values.
        stats.batcher_alloc_calls.store(wino_simd::thread_alloc_calls(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_conv::LayerSpec;
    use wino_tensor::SimpleKernels;

    fn spec_1layer() -> ModelSpec {
        ModelSpec::new(16, vec![6, 6], vec![LayerSpec::same(16, 2, 3, 2)])
    }

    fn kernels_for(spec: &ModelSpec) -> Vec<BlockedKernels> {
        spec.shapes(1)
            .unwrap()
            .iter()
            .map(|s| {
                let k = SimpleKernels::from_fn(
                    s.out_channels,
                    s.in_channels,
                    &s.kernel_dims,
                    |co, ci, xy| ((co * 7 + ci * 3 + xy.iter().sum::<usize>()) % 13) as f32 * 0.05,
                );
                BlockedKernels::from_simple(&k).unwrap()
            })
            .collect()
    }

    fn input() -> BlockedImage {
        let mut img = BlockedImage::zeros(1, 16, &[6, 6]).unwrap();
        for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
            *v = ((i % 17) as f32 - 8.0) * 0.1;
        }
        img
    }

    #[test]
    fn serves_one_request_end_to_end() {
        let spec = spec_1layer();
        let kernels = kernels_for(&spec);
        let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
        let t = server.submit(input(), Duration::from_secs(30)).unwrap();
        let resp = t.wait();
        let out = resp.output.expect("healthy server must serve");
        assert_eq!((out.batch, out.channels, out.dims.as_slice()), (1, 16, &[6, 6][..]));
        assert!(resp.report.deadline_met);
        assert_eq!(resp.report.layers.len(), 1);
        assert_eq!(resp.report.level, DegradeLevel::Full);
        let stats = server.shutdown();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn im2col_rung_matches_winograd_rung() {
        let spec = spec_1layer();
        let kernels = kernels_for(&spec);
        let mut engine = Engine::new(spec, kernels, FallbackPolicy::default(), 1);
        let img = input();
        let (full, _) = engine.run(&img, DegradeLevel::Full, &SerialExecutor).unwrap();
        let (base, reports) = engine.run(&img, DegradeLevel::Im2col, &SerialExecutor).unwrap();
        assert_eq!(reports[0].backend, LayerBackend::Im2col);
        let max_err = full
            .as_slice()
            .iter()
            .zip(base.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "ladder rungs disagree: max abs err {max_err}");
    }

    #[test]
    fn strided_spec_ladder_rungs_agree() {
        // A stride-2 spec: the Full rung runs the polyphase dispatcher,
        // the bottom rung the geometry-aware im2col baseline — same
        // decimated output, same convolution.
        let mut spec = spec_1layer();
        spec.opts = spec.opts.with_stride(&[2, 2]);
        let kernels = kernels_for(&spec);
        let mut engine = Engine::new(spec, kernels, FallbackPolicy::default(), 1);
        let img = input();
        let (full, reports_full) = engine.run(&img, DegradeLevel::Full, &SerialExecutor).unwrap();
        assert_eq!(full.dims, vec![3, 3]); // (6 + 2 − 3)/2 + 1
        assert_eq!(reports_full[0].backend, LayerBackend::WinogradPoly);
        let (base, reports) = engine.run(&img, DegradeLevel::Im2col, &SerialExecutor).unwrap();
        assert_eq!(base.dims, vec![3, 3]);
        assert_eq!(reports[0].backend, LayerBackend::Im2col);
        let max_err = full
            .as_slice()
            .iter()
            .zip(base.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "strided ladder rungs disagree: max abs err {max_err}");
    }

    #[test]
    fn batch_assembly_round_trips() {
        let mut a = BlockedImage::zeros(1, 16, &[2, 2]).unwrap();
        let mut b = BlockedImage::zeros(1, 16, &[2, 2]).unwrap();
        a.as_mut_slice().fill(1.0);
        b.as_mut_slice().fill(2.0);
        let now = Instant::now();
        let mk = |img: BlockedImage, id| Pending {
            id,
            input: img,
            enqueued: now,
            deadline: now + Duration::from_secs(1),
            slot: Slot::new(),
        };
        let batch = vec![mk(a, 1), mk(b, 2)];
        let asm = assemble(&batch, 16, &[2, 2]);
        assert_eq!(asm.batch, 2);
        let back0 = split_one(&asm, 0);
        let back1 = split_one(&asm, 1);
        assert!(back0.as_slice().iter().all(|&v| v == 1.0));
        assert!(back1.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn memory_ceiling_sheds_with_typed_pressure() {
        let spec = spec_1layer();
        let kernels = kernels_for(&spec);
        // A 1-byte ceiling sheds every request before it is enqueued.
        let opts = ServeOptions { memory_ceiling: Some(1), ..ServeOptions::default() };
        let server = Server::start(spec.clone(), kernels.clone(), opts).unwrap();
        let mem = server.memory_model().expect("ceiling configured");
        assert!(mem.per_image_bytes > 0);
        assert!(!mem.admits(1));
        match server.submit(input(), Duration::from_secs(30)) {
            Err(e @ ServeError::MemoryPressure { .. }) => {
                assert!(e.is_shed(), "memory pressure is load shedding, not failure")
            }
            other => panic!("expected MemoryPressure, got {other:?}", other = other.err()),
        }
        let stats = server.shutdown();
        assert_eq!(stats.shed_memory, 1);
        assert_eq!(stats.admitted, 0);

        // A generous ceiling admits and serves normally.
        let opts =
            ServeOptions { memory_ceiling: Some(usize::MAX), ..ServeOptions::default() };
        let server = Server::start(spec, kernels, opts).unwrap();
        let resp = server.submit(input(), Duration::from_secs(30)).unwrap().wait();
        assert!(resp.output.is_ok());
        let stats = server.shutdown();
        assert_eq!(stats.shed_memory, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn steady_state_hot_path_allocates_outputs_only() {
        let spec = spec_1layer();
        let kernels = kernels_for(&spec);
        let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
        // Warm-up: the first request plans the network, allocates its
        // scratch arena, memoises the kernel transforms and builds the
        // assembly buffer.
        server.submit(input(), Duration::from_secs(30)).unwrap().wait().output.unwrap();
        let mut last = server.stats().batcher_alloc_calls;
        assert!(last > 0, "warm-up must have allocated");
        // Steady state: every round costs exactly the unavoidable
        // output buffers — one engine output (single layer) plus one
        // per-request split — and nothing else. A reallocating scratch
        // arena or assembly buffer would show up as a larger delta.
        for round in 0..6 {
            server.submit(input(), Duration::from_secs(30)).unwrap().wait().output.unwrap();
            let now = server.stats().batcher_alloc_calls;
            assert_eq!(now - last, 2, "round {round} allocated scratch on the hot path");
            last = now;
        }
        server.shutdown();
    }

    #[test]
    fn rejects_mismatched_request_shapes() {
        let spec = spec_1layer();
        let kernels = kernels_for(&spec);
        let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
        let wrong = BlockedImage::zeros(1, 32, &[6, 6]).unwrap();
        match server.submit(wrong, Duration::from_secs(1)) {
            Err(ServeError::Failed(e)) => {
                assert!(matches!(*e, WinoError::Shape(_)), "got {e}")
            }
            other => panic!("expected shape failure, got {other:?}", other = other.err()),
        }
        let wrong_rank = BlockedImage::zeros(1, 16, &[6, 6, 6]).unwrap();
        assert!(server.submit(wrong_rank, Duration::from_secs(1)).is_err());
    }
}
