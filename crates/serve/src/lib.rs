//! # wino-serve
//!
//! Overload-safe inference serving on top of the Winograd engine: a
//! bounded, deadline-aware request queue, a dynamic batcher, roofline
//! admission control and a circuit breaker that walks the engine's
//! degradation ladder (configured backend → monomorphised kernels →
//! im2col) instead of failing open.
//!
//! The design premise is the robustness counterpart of the paper's
//! throughput argument: a manycore CPU serving convolutions is a *shared*
//! resource, and the failure mode that matters in production is not a
//! slow batch but an unbounded queue. Every request therefore carries a
//! deadline, every rejection is a typed [`ServeError`] returned
//! *immediately* (back-pressure, not buffering), and every admitted
//! request resolves to exactly one [`ServeResponse`] — even when workers
//! panic, barriers time out, or the fork–join pool is poisoned
//! mid-batch.
//!
//! Pipeline: [`Server::submit`] validates the request shape, sheds it if
//! the deadline is already unmeetable (queue-depth × calibrated
//! [`ServiceModel`]), and enqueues it; a single batcher thread coalesces
//! queued requests into batches (closing on size or age), executes them
//! through a cached [`wino_conv::Network`] plan, and resolves each
//! request's [`Ticket`]. Failures are contained per batch: the error is
//! fanned out to that batch's requests as [`ServeError::Failed`], the
//! pool is health-checked and rebuilt if poisoned, and repeated failures
//! trip the [`CircuitBreaker`] one [`DegradeLevel`] down.
//!
//! ```
//! use std::time::Duration;
//! use wino_conv::LayerSpec;
//! use wino_serve::{ModelSpec, ServeOptions, Server};
//! use wino_tensor::{BlockedImage, BlockedKernels, SimpleKernels};
//!
//! // One 3×3 "same" layer on 16-channel 6×6 images.
//! let spec = ModelSpec::new(16, vec![6, 6], vec![LayerSpec::same(16, 2, 3, 2)]);
//! let k = SimpleKernels::from_fn(16, 16, &[3, 3], |_, _, _| 0.01);
//! let kernels = vec![BlockedKernels::from_simple(&k).unwrap()];
//!
//! let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
//! let input = BlockedImage::zeros(1, 16, &[6, 6]).unwrap();
//! let ticket = server.submit(input, Duration::from_secs(10)).unwrap();
//! let resp = ticket.wait();
//! assert!(resp.output.is_ok());
//! assert_eq!(resp.report.batch_size, 1);
//!
//! let stats = server.shutdown();
//! assert_eq!(stats.completed, 1);
//! ```

use std::sync::Arc;

use wino_conv::{ExecutionReport, WinoError};

pub mod breaker;
pub mod model;
pub mod queue;
pub mod server;

pub use breaker::{BreakerConfig, CircuitBreaker, CircuitBreakerIn};
pub use model::{suggested_max_batch, ModelSpec, ServiceModel};
pub use queue::{DeadlineQueueIn, DropOutcome, PendingIn, PushReject, SlotIn, Ticket, TicketIn};
pub use server::{MemoryAdmission, ServeOptions, ServeStats, Server};

/// Why a request was rejected or failed. Every variant is a *terminal*
/// per-request outcome: the server never retries on the caller's behalf
/// beyond the batcher's bounded in-batch retries, and it never drops a
/// request silently.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// The bounded queue was full at enqueue. Back-pressure: the caller
    /// should slow down or retry after a backoff of its own choosing.
    Overloaded {
        /// Queue depth observed at rejection.
        depth: usize,
        /// Configured queue capacity.
        capacity: usize,
    },
    /// The request's deadline had already passed — at enqueue, or while
    /// it waited in the queue.
    DeadlineExceeded {
        /// How late the request was when it was shed, in milliseconds.
        missed_by_ms: f64,
    },
    /// Admission control predicted a deadline miss from the calibrated
    /// service model and current queue depth, and shed the request
    /// immediately rather than letting it time out in the queue.
    PredictedMiss {
        /// Estimated completion time from now, in milliseconds.
        estimated_ms: f64,
        /// The request's remaining deadline budget, in milliseconds.
        budget_ms: f64,
    },
    /// Byte-budget admission control: admitting this request would push
    /// the modeled concurrent footprint (plans + scratch + one output
    /// per queued and in-flight image) past the configured memory
    /// ceiling. The request is shed *before* anything is allocated on
    /// its behalf — degrading into load-shedding instead of letting the
    /// allocator fail mid-batch.
    MemoryPressure {
        /// Modeled bytes the server would need with this request queued.
        need_bytes: usize,
        /// The configured [`server::ServeOptions::memory_ceiling`].
        ceiling_bytes: usize,
    },
    /// The batch this request rode in failed after the breaker's bounded
    /// retries. The underlying engine error is shared by every request
    /// of the batch ([`WinoError`] is not `Clone`, hence the [`Arc`]).
    Failed(Arc<WinoError>),
    /// The server was shut down before the request could be served.
    ShutDown,
}

impl ServeError {
    /// True for load-shedding rejections (the request never executed and
    /// the system is healthy — the caller hit capacity, not a bug).
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ServeError::Overloaded { .. }
                | ServeError::DeadlineExceeded { .. }
                | ServeError::PredictedMiss { .. }
                | ServeError::MemoryPressure { .. }
        )
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Overloaded { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity}): request shed")
            }
            ServeError::DeadlineExceeded { missed_by_ms } => {
                write!(f, "deadline exceeded by {missed_by_ms:.2} ms")
            }
            ServeError::PredictedMiss { estimated_ms, budget_ms } => write!(
                f,
                "admission control: estimated {estimated_ms:.2} ms exceeds the \
                 {budget_ms:.2} ms deadline budget"
            ),
            ServeError::MemoryPressure { need_bytes, ceiling_bytes } => write!(
                f,
                "memory admission: {need_bytes} B concurrent footprint exceeds the \
                 {ceiling_bytes} B ceiling"
            ),
            ServeError::Failed(e) => write!(f, "batch execution failed: {e}"),
            ServeError::ShutDown => write!(f, "server shut down"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Failed(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

/// Rung of the serving degradation ladder. Order matters: `Full <
/// Mono < Im2col`, and the [`CircuitBreaker`] only ever moves one rung
/// at a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradeLevel {
    /// The model's configured pipeline (JIT stage-2 kernels if the
    /// [`wino_conv::ConvOptions`] ask for them).
    Full = 0,
    /// Same Winograd pipeline, stage 2 forced to the monomorphised Rust
    /// kernels — sheds the JIT as a fault-isolation measure.
    Mono = 1,
    /// The im2col baseline: slowest, simplest, hardest to break.
    Im2col = 2,
}

impl DegradeLevel {
    /// Stable kebab-case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            DegradeLevel::Full => "full",
            DegradeLevel::Mono => "mono",
            DegradeLevel::Im2col => "im2col",
        }
    }

    /// One rung down the ladder, or `None` at the bottom.
    pub fn degraded(self) -> Option<DegradeLevel> {
        match self {
            DegradeLevel::Full => Some(DegradeLevel::Mono),
            DegradeLevel::Mono => Some(DegradeLevel::Im2col),
            DegradeLevel::Im2col => None,
        }
    }

    /// One rung up the ladder, or `None` at the top.
    pub fn promoted(self) -> Option<DegradeLevel> {
        match self {
            DegradeLevel::Full => None,
            DegradeLevel::Mono => Some(DegradeLevel::Full),
            DegradeLevel::Im2col => Some(DegradeLevel::Mono),
        }
    }

    /// Inverse of `level as u8` (for atomically published snapshots).
    pub fn from_u8(v: u8) -> DegradeLevel {
        match v {
            0 => DegradeLevel::Full,
            1 => DegradeLevel::Mono,
            _ => DegradeLevel::Im2col,
        }
    }
}

/// Per-request accounting, attached to every [`ServeResponse`] —
/// including rejections resolved after enqueue (deadline expiry in the
/// queue, batch failure, shutdown drain).
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Server-assigned request id (monotonic per server).
    pub request_id: u64,
    /// Batch this request executed in; `None` if it never reached a
    /// batch (shed from the queue or drained at shutdown).
    pub batch_id: Option<u64>,
    /// Number of requests coalesced into that batch (0 if none).
    pub batch_size: usize,
    /// Time spent queued before the batcher picked the request up.
    pub queue_wait_ms: f64,
    /// Batch execution time, including in-batch retries.
    pub service_ms: f64,
    /// Enqueue-to-resolution wall time.
    pub total_ms: f64,
    /// Whether the request resolved successfully within its deadline.
    pub deadline_met: bool,
    /// Ladder rung the successful attempt executed at (for failures:
    /// the rung of the last attempt).
    pub level: DegradeLevel,
    /// In-batch retries spent before resolution.
    pub retries: u32,
    /// Per-layer execution reports from the engine (empty on failure).
    pub layers: Vec<ExecutionReport>,
}

impl ServeReport {
    /// A report for a request that never executed (shed or drained).
    pub(crate) fn unserved(request_id: u64, level: DegradeLevel) -> ServeReport {
        ServeReport {
            request_id,
            batch_id: None,
            batch_size: 0,
            queue_wait_ms: 0.0,
            service_ms: 0.0,
            total_ms: 0.0,
            deadline_met: false,
            level,
            retries: 0,
            layers: Vec::new(),
        }
    }
}

/// The terminal outcome of one admitted request.
#[derive(Debug)]
pub struct ServeResponse {
    /// The inference output, or the typed reason it could not be
    /// produced.
    pub output: Result<wino_tensor::BlockedImage, ServeError>,
    /// Timing and provenance accounting.
    pub report: ServeReport,
}
