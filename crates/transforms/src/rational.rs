//! Exact rational arithmetic over `i128`.
//!
//! The Winograd transform matrices (A, G, B) are generated with exact
//! arithmetic so that the algebraic identity
//! `F(m, r) = Aᵀ[(G·g) ⊙ (Bᵀ·d)]` can be verified *exactly*, without
//! floating-point tolerances. All quantities involved are tiny (interpolation
//! points like 0, ±1, ±2, ±1/2 and their products over at most a dozen
//! factors), so `i128` never overflows in practice; overflow is nevertheless
//! checked and panics loudly rather than wrapping.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// An exact rational number `num / den` with `den > 0` and gcd(num, den) = 1.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    if a < 0 {
        a = -a;
    }
    if b < 0 {
        b = -b;
    }
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create `num/den`, normalising sign and common factors.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The integer `n` as a rational.
    pub const fn from_int(n: i128) -> Self {
        Rational { num: n, den: 1 }
    }

    pub fn numerator(self) -> i128 {
        self.num
    }

    pub fn denominator(self) -> i128 {
        self.den
    }

    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    pub fn is_one(self) -> bool {
        self.num == 1 && self.den == 1
    }

    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    pub fn abs(self) -> Self {
        Rational { num: self.num.abs(), den: self.den }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if `self` is zero.
    pub fn recip(self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Nearest `f64` value (exact for all values used in transform
    /// generation, whose numerators/denominators are tiny).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Nearest `f32` value.
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    fn checked_mul_i128(a: i128, b: i128) -> i128 {
        a.checked_mul(b).expect("rational arithmetic overflowed i128")
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Cross-reduce first to keep intermediates small.
        let g = gcd(self.den, rhs.den);
        let (da, db) = (self.den / g, rhs.den / g);
        let num = Rational::checked_mul_i128(self.num, db)
            .checked_add(Rational::checked_mul_i128(rhs.num, da))
            .expect("rational add overflowed");
        let den = Rational::checked_mul_i128(self.den, db);
        Rational::new(num, den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce to minimise intermediate magnitude.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let num = Rational::checked_mul_i128(
            if g1 == 0 { self.num } else { self.num / g1 },
            if g2 == 0 { rhs.num } else { rhs.num / g2 },
        );
        let den = Rational::checked_mul_i128(
            if g2 == 0 { self.den } else { self.den / g2 },
            if g1 == 0 { rhs.den } else { rhs.den / g1 },
        );
        Rational::new(num, den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // a/b = a·b⁻¹ over ℚ
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational { num: -self.num, den: self.den }
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Rational) {
        *self = *self + rhs;
    }
}

impl SubAssign for Rational {
    fn sub_assign(&mut self, rhs: Rational) {
        *self = *self - rhs;
    }
}

impl MulAssign for Rational {
    fn mul_assign(&mut self, rhs: Rational) {
        *self = *self * rhs;
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 always, so cross-multiplication preserves order.
        let lhs = Rational::checked_mul_i128(self.num, other.den);
        let rhs = Rational::checked_mul_i128(other.num, self.den);
        lhs.cmp(&rhs)
    }
}

impl From<i128> for Rational {
    fn from(n: i128) -> Self {
        Rational::from_int(n)
    }
}

impl From<i32> for Rational {
    fn from(n: i32) -> Self {
        Rational::from_int(n as i128)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, -7), Rational::ZERO);
        assert_eq!(r(6, 3).numerator(), 2);
        assert_eq!(r(6, 3).denominator(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = r(1, 0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(3, 7).recip(), r(7, 3));
        assert_eq!(r(-3, 7).recip(), r(-7, 3));
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn recip_zero_panics() {
        let _ = Rational::ZERO.recip();
    }

    #[test]
    fn assign_ops() {
        let mut x = r(1, 2);
        x += r(1, 2);
        assert!(x.is_one());
        x -= r(1, 4);
        assert_eq!(x, r(3, 4));
        x *= r(4, 3);
        assert!(x.is_one());
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        let mut v = vec![r(1, 2), r(-1, 1), r(0, 1), r(3, 4)];
        v.sort();
        assert_eq!(v, vec![r(-1, 1), r(0, 1), r(1, 2), r(3, 4)]);
    }

    #[test]
    fn float_conversion() {
        assert_eq!(r(1, 2).to_f64(), 0.5);
        assert_eq!(r(-3, 4).to_f32(), -0.75);
        assert_eq!(r(1, 3).to_f64(), 1.0 / 3.0);
    }

    #[test]
    fn predicates() {
        assert!(Rational::ZERO.is_zero());
        assert!(Rational::ONE.is_one());
        assert!(r(-1, 5).is_negative());
        assert!(!r(1, 5).is_negative());
        assert_eq!(r(-2, 3).abs(), r(2, 3));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", r(1, 2)), "1/2");
        assert_eq!(format!("{}", r(4, 2)), "2");
        assert_eq!(format!("{}", r(-1, 2)), "-1/2");
    }
}
