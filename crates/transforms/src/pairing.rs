//! The Fig. 2 common-subexpression optimisation.
//!
//! When `α = m + r - 1` is even, the interpolation-point schedule is
//! symmetric (±p pairs), and pairs of rows of `Bᵀ` (and `G`) take the form
//! `rowᵢ = u + v`, `rowⱼ = u - v` for sparse `u = (rowᵢ + rowⱼ)/2` and
//! `v = (rowᵢ - rowⱼ)/2`. Computing `u·x` and `v·x` once and forming
//! `u·x ± v·x` replaces two long dot products with two short ones plus two
//! adds — the paper's example reduces 6 FMAs to 4 and the dependent latency
//! from 18 to 12 cycles.
//!
//! [`PairedProgram::optimize`] searches all row pairs greedily, keeps the
//! pairings that lower the operation count, and leaves the rest as direct
//! rows. The result is still straight-line data interpreted by the scalar
//! executor here or the S-wide vector executor in `wino-conv`.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use crate::program::{MatrixProgram, OpCount, RowProgram, Term};

/// One node of a paired program.
#[derive(Clone, Debug)]
pub enum PairNode {
    /// `out[row] = Σ terms` — an unpaired row.
    Direct { out: usize, row: RowProgram },
    /// `out[plus] = u + v`, `out[minus] = u - v` with
    /// `u = Σ u_terms`, `v = Σ v_terms`.
    Pair {
        out_plus: usize,
        out_minus: usize,
        u_terms: Vec<Term>,
        v_terms: Vec<Term>,
    },
}

/// A transform program with Fig. 2 row pairings applied.
#[derive(Clone, Debug)]
pub struct PairedProgram {
    pub n_out: usize,
    pub n_in: usize,
    pub nodes: Vec<PairNode>,
}

fn terms_cost(terms: &[Term]) -> OpCount {
    let mut c = OpCount::default();
    for (k, t) in terms.iter().enumerate() {
        if !t.is_unit() {
            c.muls += 1;
        }
        if k > 0 {
            c.adds += 1;
        }
    }
    c
}

/// Split rows `a`, `b` into (u, v) with `a = u + v`, `b = u - v`.
/// Returns `None` when the pairing does not reduce the operation count.
fn try_pair(a: &RowProgram, b: &RowProgram, n_in: usize) -> Option<(Vec<Term>, Vec<Term>)> {
    let mut ca = vec![0.0f32; n_in];
    let mut cb = vec![0.0f32; n_in];
    for t in &a.terms {
        ca[t.src] = t.coeff;
    }
    for t in &b.terms {
        cb[t.src] = t.coeff;
    }
    let mut u = Vec::new();
    let mut v = Vec::new();
    for s in 0..n_in {
        let uu = 0.5 * (ca[s] + cb[s]);
        let vv = 0.5 * (ca[s] - cb[s]);
        if uu != 0.0 {
            u.push(Term { src: s, coeff: uu });
        }
        if vv != 0.0 {
            v.push(Term { src: s, coeff: vv });
        }
    }
    if u.is_empty() || v.is_empty() {
        return None; // rows are (anti-)equal; pairing degenerates
    }
    let direct = terms_cost(&a.terms).total() + terms_cost(&b.terms).total();
    // u·x, v·x, plus the final add and sub.
    let paired = terms_cost(&u).total() + terms_cost(&v).total() + 2;
    if paired < direct {
        Some((u, v))
    } else {
        None
    }
}

impl PairedProgram {
    /// Greedily pair rows of `p` while the total operation count decreases.
    pub fn optimize(p: &MatrixProgram) -> PairedProgram {
        let n = p.n_out;
        let mut used = vec![false; n];
        let mut nodes = Vec::new();
        loop {
            // Find the best remaining pairing.
            #[allow(clippy::type_complexity)] // (row i, row j, shared terms, residual terms, gain)
            let mut best: Option<(usize, usize, Vec<Term>, Vec<Term>, usize)> = None;
            for i in 0..n {
                if used[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if used[j] {
                        continue;
                    }
                    if let Some((u, v)) = try_pair(&p.rows[i], &p.rows[j], p.n_in) {
                        let direct = terms_cost(&p.rows[i].terms).total()
                            + terms_cost(&p.rows[j].terms).total();
                        let paired = terms_cost(&u).total() + terms_cost(&v).total() + 2;
                        let gain = direct - paired;
                        if best.as_ref().is_none_or(|b| gain > b.4) {
                            best = Some((i, j, u, v, gain));
                        }
                    }
                }
            }
            match best {
                Some((i, j, u, v, _)) => {
                    used[i] = true;
                    used[j] = true;
                    nodes.push(PairNode::Pair {
                        out_plus: i,
                        out_minus: j,
                        u_terms: u,
                        v_terms: v,
                    });
                }
                None => break,
            }
        }
        for i in 0..n {
            if !used[i] {
                nodes.push(PairNode::Direct { out: i, row: p.rows[i].clone() });
            }
        }
        PairedProgram { n_out: n, n_in: p.n_in, nodes }
    }

    /// Total operation count of the paired program.
    pub fn op_count(&self) -> OpCount {
        let mut c = OpCount::default();
        for node in &self.nodes {
            match node {
                PairNode::Direct { row, .. } => {
                    let rc = terms_cost(&row.terms);
                    c.muls += rc.muls;
                    c.adds += rc.adds;
                }
                PairNode::Pair { u_terms, v_terms, .. } => {
                    for t in [u_terms, v_terms] {
                        let rc = terms_cost(t);
                        c.muls += rc.muls;
                        c.adds += rc.adds;
                    }
                    c.adds += 2; // u+v and u-v
                }
            }
        }
        c
    }

    /// Scalar interpreter (tests / reference path).
    pub fn apply(&self, input: &[f32], output: &mut [f32]) {
        debug_assert!(input.len() >= self.n_in);
        debug_assert!(output.len() >= self.n_out);
        let dot = |terms: &[Term]| -> f32 {
            terms.iter().map(|t| t.coeff * input[t.src]).sum()
        };
        for node in &self.nodes {
            match node {
                PairNode::Direct { out, row } => output[*out] = dot(&row.terms),
                PairNode::Pair { out_plus, out_minus, u_terms, v_terms } => {
                    let u = dot(u_terms);
                    let v = dot(v_terms);
                    output[*out_plus] = u + v;
                    output[*out_minus] = u - v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matgen::Transform1D;
    use crate::program::MatrixProgram;

    fn programs(m: usize, r: usize) -> (MatrixProgram, PairedProgram) {
        let t = Transform1D::generate(m, r);
        let p = MatrixProgram::compile(&t.bt.to_f32());
        let q = PairedProgram::optimize(&p);
        (p, q)
    }

    #[test]
    fn pairing_preserves_semantics() {
        for (m, r) in [(2, 3), (4, 3), (6, 3), (8, 3), (4, 5), (3, 2)] {
            let (p, q) = programs(m, r);
            let input: Vec<f32> = (0..p.n_in).map(|i| (i as f32) * 0.73 - 2.0).collect();
            let mut out_p = vec![0.0f32; p.n_out];
            let mut out_q = vec![0.0f32; p.n_out];
            p.apply(&input, &mut out_p);
            q.apply(&input, &mut out_q);
            for i in 0..p.n_out {
                assert!(
                    (out_p[i] - out_q[i]).abs() <= 1e-4 * out_p[i].abs().max(1.0),
                    "F({m},{r}) row {i}: {} vs {}",
                    out_p[i],
                    out_q[i]
                );
            }
        }
    }

    #[test]
    fn pairing_reduces_ops_for_symmetric_points() {
        // F(6,3): α = 8, points include ±1, ±2, ±1/2 — symmetric pairs exist,
        // so Fig. 2 pairing must find savings.
        let (p, q) = programs(6, 3);
        let before = p.op_count().total();
        let after = q.op_count().total();
        assert!(after < before, "expected savings: {before} -> {after}");
    }

    #[test]
    fn pairing_never_increases_ops() {
        for (m, r) in [(1, 3), (2, 3), (3, 3), (4, 3), (5, 3), (6, 3), (7, 3), (8, 3), (2, 2), (4, 4)] {
            let (p, q) = programs(m, r);
            assert!(
                q.op_count().total() <= p.op_count().total(),
                "F({m},{r}) pairing increased ops"
            );
        }
    }

    #[test]
    fn g_matrix_also_pairs() {
        let t = Transform1D::generate(4, 3);
        let p = MatrixProgram::compile(&t.g.to_f32());
        let q = PairedProgram::optimize(&p);
        let g: Vec<f32> = vec![0.3, -1.1, 0.7];
        let mut a = vec![0.0f32; p.n_out];
        let mut b = vec![0.0f32; p.n_out];
        p.apply(&g, &mut a);
        q.apply(&g, &mut b);
        for i in 0..p.n_out {
            assert!((a[i] - b[i]).abs() <= 1e-5 * a[i].abs().max(1.0));
        }
    }

    #[test]
    fn paper_fig2_shape_saves_two_fmas() {
        // Reconstruct the Fig. 2 situation: two rows
        //   o1 = i1/2 + i2/2 + i3/2   (3 FMAs direct)
        //   o2 = i1/2 - i2/2 + i3/2   (3 FMAs direct)
        // Pairing: u = i1/2 + i3/2 (2 terms), v = i2/2 (1 term),
        // o1 = u + v, o2 = u - v  → 4 ops of multiply + 2 adds vs 6.
        use crate::matgen::F32Matrix;
        let m = F32Matrix {
            rows: 2,
            cols: 3,
            data: vec![0.5, 0.5, 0.5, 0.5, -0.5, 0.5],
        };
        let p = MatrixProgram::compile(&m);
        let q = PairedProgram::optimize(&p);
        assert_eq!(p.op_count().total(), 10); // 6 muls + 4 adds
        assert!(q.op_count().total() < p.op_count().total());
        // There must be exactly one pair node covering both rows.
        assert_eq!(q.nodes.len(), 1);
        assert!(matches!(q.nodes[0], PairNode::Pair { .. }));
    }
}
