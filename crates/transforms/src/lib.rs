//! # wino-transforms
//!
//! Exact generation of Winograd minimal-filtering transform matrices for
//! arbitrary `F(m, r)` (§2.2, §4.2.1 of the paper), plus the "codelet"
//! compiler that turns them into minimal-operation straight-line programs.
//!
//! This crate plays the role of **Wincnn + the paper's templated codelet
//! generator**: it produces, for any output-tile size `m` and kernel size
//! `r`,
//!
//! * the exact rational matrices `Aᵀ` (inverse transform), `G` (kernel
//!   transform) and `Bᵀ` (input transform),
//! * their `f32` forms,
//! * sparse [`program::MatrixProgram`]s that skip structural zeros and turn
//!   ±1 coefficients into adds, and
//! * [`pairing::PairedProgram`]s implementing the Fig. 2 common-pair
//!   optimisation that shares products between `u + v` / `u - v` row pairs.
//!
//! The construction is validated *exactly* (no floating point) against
//! brute-force correlation for every tile/kernel size in the practical
//! range.
//!
//! ```
//! use wino_transforms::FmrPlan;
//!
//! // F(4, 3): 4 outputs per tile for a 3-tap kernel, tile size 6.
//! let plan = FmrPlan::new(4, 3);
//! assert_eq!(plan.transform.alpha, 6);
//! // 6 multiplications instead of 12 for the direct method:
//! assert_eq!(plan.transform.alpha, plan.m() + plan.r() - 1);
//! ```

pub mod conditioning;
pub mod matgen;
pub mod pairing;
pub mod points;
pub mod program;
pub mod rational;

pub use conditioning::Conditioning;
pub use matgen::{direct_correlation, F32Matrix, RatMatrix, Transform1D};
pub use pairing::{PairNode, PairedProgram};
pub use points::{default_points, integer_points, PointSchedule};
pub use program::{MatrixProgram, OpCount, RowProgram, Term};
pub use rational::Rational;

/// Everything needed to apply `F(m, r)` along one dimension: the exact
/// transform plus compiled (and pair-optimised) programs for each of the
/// three matrices.
#[derive(Clone, Debug)]
pub struct FmrPlan {
    /// The exact rational transform triple.
    pub transform: Transform1D,
    /// Compiled input transform `Bᵀ` (α → α).
    pub bt: PairedProgram,
    /// Compiled kernel transform `G` (r → α).
    pub g: PairedProgram,
    /// Compiled inverse transform `Aᵀ` (α → m).
    pub at: PairedProgram,
}

impl FmrPlan {
    /// Build the plan for `F(m, r)` with the default point schedule.
    pub fn new(m: usize, r: usize) -> FmrPlan {
        Self::with_schedule(m, r, PointSchedule::Mixed)
    }

    /// Build the plan with an explicit interpolation-point schedule (the
    /// accuracy ablation knob).
    pub fn with_schedule(m: usize, r: usize, schedule: PointSchedule) -> FmrPlan {
        let transform =
            Transform1D::generate_with_points(m, r, &schedule.points(m + r - 2));
        let compile =
            |mat: &RatMatrix| PairedProgram::optimize(&MatrixProgram::compile(&mat.to_f32()));
        FmrPlan {
            bt: compile(&transform.bt),
            g: compile(&transform.g),
            at: compile(&transform.at),
            transform,
        }
    }

    pub fn m(&self) -> usize {
        self.transform.m
    }

    pub fn r(&self) -> usize {
        self.transform.r
    }

    /// Tile size `α = m + r - 1`.
    pub fn alpha(&self) -> usize {
        self.transform.alpha
    }

    /// The a-priori conditioning (worst-case error amplification) of
    /// this transform triple — see [`Conditioning`].
    pub fn conditioning(&self) -> Conditioning {
        Conditioning::of(&self.transform)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_pipeline_computes_correlation_in_f32() {
        // End-to-end through the compiled programs, checked against direct
        // correlation computed in f64.
        for (m, r) in [(2, 3), (4, 3), (6, 3), (2, 2), (4, 4), (3, 5)] {
            let plan = FmrPlan::new(m, r);
            let alpha = plan.alpha();
            let d: Vec<f32> = (0..alpha).map(|i| ((i * 13 % 7) as f32 - 3.0) * 0.11).collect();
            let g: Vec<f32> = (0..r).map(|i| ((i * 5 % 3) as f32 - 1.0) * 0.4).collect();

            let mut dt = vec![0.0f32; alpha];
            let mut gt = vec![0.0f32; alpha];
            plan.bt.apply(&d, &mut dt);
            plan.g.apply(&g, &mut gt);
            let prod: Vec<f32> = dt.iter().zip(&gt).map(|(a, b)| a * b).collect();
            let mut y = vec![0.0f32; m];
            plan.at.apply(&prod, &mut y);

            for s in 0..m {
                let want: f64 =
                    (0..r).map(|k| d[s + k] as f64 * g[k] as f64).sum();
                assert!(
                    (y[s] as f64 - want).abs() < 1e-4 * want.abs().max(1.0),
                    "F({m},{r}) output {s}: {} vs {}",
                    y[s],
                    want
                );
            }
        }
    }

    #[test]
    fn plan_accessors() {
        let p = FmrPlan::new(6, 3);
        assert_eq!(p.m(), 6);
        assert_eq!(p.r(), 3);
        assert_eq!(p.alpha(), 8);
        assert_eq!(p.bt.n_in, 8);
        assert_eq!(p.bt.n_out, 8);
        assert_eq!(p.g.n_in, 3);
        assert_eq!(p.g.n_out, 8);
        assert_eq!(p.at.n_in, 8);
        assert_eq!(p.at.n_out, 6);
    }
}
