//! Exact a-priori error model for `F(m, r)`.
//!
//! Winograd's arithmetic saving comes from evaluating the correlation
//! through the transform triple `y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]`, and the price
//! is conditioning: the transform matrices for large tiles carry large
//! entries (Vandermonde-style growth in the interpolation points), so
//! element-wise rounding errors of the f32 evaluation are *amplified* on
//! the way back through `Aᵀ`. The paper's Table 3 shows the effect
//! empirically; related work (Barabasz et al., "Error Analysis and
//! Improving the Accuracy of Winograd Convolution for DNNs"; Maji et
//! al.; Liu & Mattina, see PAPERS.md) treats it as the central weakness
//! of large-tile FP32 Winograd.
//!
//! This module computes a worst-case **amplification factor** γ(m, r)
//! directly from the exact-rational matrices, before any f32 rounding
//! exists:
//!
//! ```text
//! γ(m, r) = max_i Σ_j |Aᵀ_ij| · ‖G_j‖₁ · ‖Bᵀ_j‖₁
//! ```
//!
//! i.e. the worst row-wise 1-norm of the `A·(G ⊗ B)`-style product that
//! maps (input, kernel) perturbations to output perturbations. For unit
//! data this bounds how much a relative elementwise error introduced at
//! the Hadamard stage can grow in the output; it is exactly 1·‖g‖₁ = r
//! for the direct method and grows super-linearly in m for Winograd.
//! Row norms are accumulated exactly in [`Rational`] (no rounding), and
//! only the final per-row combination is done in f64 — the triple
//! products can overflow an i128 denominator for the largest tiles.
//!
//! The factors compose multiplicatively across dimensions and feed two
//! consumers in `wino-conv`:
//!
//! * **planning**: an `AccuracyBudget` caps the per-dimension γ(m, r)·ε
//!   a plan may take on, demoting the tile size until it fits, and
//! * **runtime sentinels**: a layer-level predicted bound (γ product ×
//!   accumulation length × ε) is the trip threshold for sampled output
//!   verification against the f64 oracle.

use crate::matgen::Transform1D;
use crate::points::PointSchedule;
use crate::rational::Rational;

/// The a-priori conditioning of one `F(m, r)` transform triple: how much
/// the transforms can amplify element-wise rounding error, computed from
/// the exact rational matrices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Conditioning {
    /// Outputs per tile.
    pub m: usize,
    /// Filter taps.
    pub r: usize,
    /// Tile size `α = m + r − 1`.
    pub alpha: usize,
    /// Worst row-wise amplification factor γ(m, r) ≥ 1 (see module docs).
    pub gamma: f64,
}

impl Conditioning {
    /// Conditioning of an already-generated transform triple.
    pub fn of(t: &Transform1D) -> Conditioning {
        // Exact 1-norm of a rational row.
        let row_norm = |row: &[Rational]| -> f64 {
            let mut s = Rational::ZERO;
            for &v in row {
                s += v.abs();
            }
            s.to_f64()
        };
        let g_norms: Vec<f64> = (0..t.alpha).map(|j| row_norm(t.g.row(j))).collect();
        let b_norms: Vec<f64> = (0..t.alpha).map(|j| row_norm(t.bt.row(j))).collect();
        let mut gamma = 0.0f64;
        for i in 0..t.m {
            let mut acc = 0.0;
            for j in 0..t.alpha {
                acc += t.at.at(i, j).abs().to_f64() * g_norms[j] * b_norms[j];
            }
            gamma = gamma.max(acc);
        }
        Conditioning { m: t.m, r: t.r, alpha: t.alpha, gamma }
    }

    /// Generate the transform for `F(m, r)` under `schedule` and return
    /// its conditioning. Generation is exact and cheap for practical
    /// tiles (α ≤ 25), so callers need not cache.
    pub fn for_schedule(m: usize, r: usize, schedule: PointSchedule) -> Conditioning {
        Conditioning::of(&Transform1D::generate_with_points(
            m,
            r,
            &schedule.points(m + r - 2),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gamma_is_at_least_the_direct_methods_r() {
        // The direct method's amplification for an r-tap correlation is
        // ‖g‖₁-style, i.e. r; Winograd can only be worse.
        for r in [2, 3, 4, 5] {
            for m in 2..=6 {
                let c = Conditioning::for_schedule(m, r, PointSchedule::Mixed);
                assert!(c.gamma >= r as f64, "γ({m},{r}) = {} < r", c.gamma);
            }
        }
    }

    #[test]
    fn gamma_grows_strictly_with_tile_size() {
        // The bound-driven planner demotes tiles in steps of 2, and the
        // practical catalogue is the even tiles — γ must be strictly
        // monotone over m ∈ {2, 4, 6, 8}. (Over *all* integers it is
        // not quite: the mixed schedule's γ(7,5) slightly exceeds
        // γ(8,5), because adding the point pair ±4 for m=8 happens to
        // balance the Vandermonde rows better than m=7's lone +4.)
        for r in [3, 5] {
            for schedule in [PointSchedule::Mixed, PointSchedule::Integer] {
                let mut last = 0.0;
                for m in [2, 4, 6, 8] {
                    let c = Conditioning::for_schedule(m, r, schedule);
                    assert!(
                        c.gamma > last,
                        "γ not strictly monotone at F({m},{r}) {schedule:?}: {} ≤ {last}",
                        c.gamma
                    );
                    last = c.gamma;
                }
            }
        }
    }

    #[test]
    fn mixed_points_condition_better_than_integer_for_large_tiles() {
        // The reason the fractional schedule exists (§4.2.1): integer
        // Vandermonde points blow up much faster.
        for r in [3, 5] {
            let mixed = Conditioning::for_schedule(6, r, PointSchedule::Mixed);
            let integer = Conditioning::for_schedule(6, r, PointSchedule::Integer);
            assert!(
                integer.gamma > 4.0 * mixed.gamma,
                "F(6,{r}): integer γ {} not ≫ mixed γ {}",
                integer.gamma,
                mixed.gamma
            );
        }
    }

    #[test]
    fn conditioning_matches_between_of_and_for_schedule() {
        let t = Transform1D::generate(4, 3);
        let a = Conditioning::of(&t);
        let b = Conditioning::for_schedule(4, 3, PointSchedule::Mixed);
        assert_eq!(a, b);
        assert_eq!(a.alpha, 6);
    }
}
