//! Cook–Toom generation of the Winograd minimal-filtering matrices.
//!
//! For `F(m, r)` (computing `m` outputs of an `r`-tap FIR filter from
//! `α = m + r - 1` inputs) with finite interpolation points `p₀ … p_{α-2}`
//! plus the point at infinity:
//!
//! * `Aᵀ` is `m × α`; finite column `j` is `[1, pⱼ, …, pⱼ^{m-1}]ᵀ`, the ∞
//!   column is `[0, …, 0, 1]ᵀ`.
//! * `G` is `α × r`; finite row `i` is `wᵢ · [1, pᵢ, …, pᵢ^{r-1}]` with the
//!   barycentric weight `wᵢ = 1 / ∏_{k≠i}(pᵢ - p_k)`; the ∞ row is
//!   `[0, …, 0, 1]`.
//! * `Bᵀ` is `α × α`; finite row `i` holds the coefficients of
//!   `mᵢ(x) = ∏_{k≠i}(x - p_k)` (degree α-2, zero-padded), the ∞ row holds
//!   the coefficients of `M(x) = ∏_k(x - p_k)` (degree α-1).
//!
//! Then `y = Aᵀ[(G·g) ⊙ (Bᵀ·d)]` equals the correlation
//! `y_s = Σ_k d_{s+k}·g_k` **exactly** (verified over the rationals by the
//! tests in this module). This is the transposed modified-Toom–Cook
//! construction, identical to what Wincnn produces up to paired sign flips
//! of (G row i, Bᵀ row i), which cancel in the element-wise product.

use crate::points::default_points;
use crate::rational::Rational;

/// A dense matrix of exact rationals (row-major).
#[derive(Clone, PartialEq, Eq)]
pub struct RatMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RatMatrix {
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RatMatrix { rows, cols, data: vec![Rational::ZERO; rows * cols] }
    }

    pub fn from_rows(rows: Vec<Vec<Rational>>) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        assert!(rows.iter().all(|row| row.len() == c), "ragged rows");
        RatMatrix { rows: r, cols: c, data: rows.into_iter().flatten().collect() }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn at(&self, i: usize, j: usize) -> Rational {
        assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    pub fn set(&mut self, i: usize, j: usize, v: Rational) {
        assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j] = v;
    }

    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    pub fn transpose(&self) -> RatMatrix {
        let mut t = RatMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t.set(j, i, self.at(i, j));
            }
        }
        t
    }

    /// Exact matrix product.
    pub fn matmul(&self, rhs: &RatMatrix) -> RatMatrix {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matmul");
        let mut out = RatMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.at(i, k);
                if a.is_zero() {
                    continue;
                }
                for j in 0..rhs.cols {
                    let v = out.at(i, j) + a * rhs.at(k, j);
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Exact matrix–vector product.
    pub fn matvec(&self, x: &[Rational]) -> Vec<Rational> {
        assert_eq!(self.cols, x.len());
        (0..self.rows)
            .map(|i| {
                self.row(i)
                    .iter()
                    .zip(x)
                    .fold(Rational::ZERO, |acc, (&a, &b)| acc + a * b)
            })
            .collect()
    }

    /// Lossily convert to a row-major `f32` matrix.
    pub fn to_f32(&self) -> F32Matrix {
        F32Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|r| r.to_f32()).collect(),
        }
    }

    /// Number of structurally non-zero entries.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|r| !r.is_zero()).count()
    }
}

impl std::fmt::Debug for RatMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "RatMatrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>8} ", format!("{}", self.at(i, j)))?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// A dense row-major `f32` matrix (the form consumed by codelet builders).
#[derive(Clone, Debug, PartialEq)]
pub struct F32Matrix {
    pub rows: usize,
    pub cols: usize,
    pub data: Vec<f32>,
}

impl F32Matrix {
    pub fn at(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }
}

/// Coefficients (ascending degree) of `∏ᵢ (x - rootᵢ)`.
fn poly_from_roots(roots: &[Rational]) -> Vec<Rational> {
    let mut coeffs = vec![Rational::ONE];
    for &root in roots {
        // multiply by (x - root)
        let mut next = vec![Rational::ZERO; coeffs.len() + 1];
        for (d, &c) in coeffs.iter().enumerate() {
            next[d + 1] += c;
            next[d] -= root * c;
        }
        coeffs = next;
    }
    coeffs
}

/// The exact 1-D Winograd transform triple for `F(m, r)`.
#[derive(Clone, Debug)]
pub struct Transform1D {
    /// Number of outputs per tile.
    pub m: usize,
    /// Filter taps.
    pub r: usize,
    /// Tile size `α = m + r - 1`.
    pub alpha: usize,
    /// `m × α` inverse-transform matrix `Aᵀ`.
    pub at: RatMatrix,
    /// `α × r` kernel-transform matrix `G`.
    pub g: RatMatrix,
    /// `α × α` input-transform matrix `Bᵀ`.
    pub bt: RatMatrix,
}

impl Transform1D {
    /// Generate `F(m, r)` using the default interpolation-point schedule.
    ///
    /// # Panics
    /// Panics if `m == 0 || r == 0`, or the tile is too large for the point
    /// schedule.
    pub fn generate(m: usize, r: usize) -> Transform1D {
        Self::generate_with_points(m, r, &default_points(m + r - 2))
    }

    /// Generate `F(m, r)` with explicit finite interpolation points (the
    /// final point at infinity is implicit). `points.len()` must equal
    /// `m + r - 2` and all points must be distinct.
    pub fn generate_with_points(m: usize, r: usize, points: &[Rational]) -> Transform1D {
        assert!(m >= 1, "F(m, r) requires m >= 1");
        assert!(r >= 1, "F(m, r) requires r >= 1");
        let alpha = m + r - 1;
        assert_eq!(
            points.len(),
            alpha - 1,
            "F({m}, {r}) needs {} finite interpolation points",
            alpha - 1
        );
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                assert_ne!(points[i], points[j], "interpolation points must be distinct");
            }
        }

        // Aᵀ: m × α.
        let mut at = RatMatrix::zeros(m, alpha);
        for (j, &p) in points.iter().enumerate() {
            let mut pow = Rational::ONE;
            for i in 0..m {
                at.set(i, j, pow);
                pow *= p;
            }
        }
        at.set(m - 1, alpha - 1, Rational::ONE); // ∞ column

        // Barycentric weights wᵢ = 1 / ∏_{k≠i}(pᵢ - p_k).
        let weights: Vec<Rational> = (0..points.len())
            .map(|i| {
                let prod = points
                    .iter()
                    .enumerate()
                    .filter(|&(k, _)| k != i)
                    .fold(Rational::ONE, |acc, (_, &pk)| acc * (points[i] - pk));
                prod.recip()
            })
            .collect();

        // G: α × r.
        let mut g = RatMatrix::zeros(alpha, r);
        for (i, &p) in points.iter().enumerate() {
            let mut pow = weights[i];
            for j in 0..r {
                g.set(i, j, pow);
                pow *= p;
            }
        }
        g.set(alpha - 1, r - 1, Rational::ONE); // ∞ row

        // Bᵀ: α × α.
        let mut bt = RatMatrix::zeros(alpha, alpha);
        for i in 0..points.len() {
            let others: Vec<Rational> = points
                .iter()
                .enumerate()
                .filter(|&(k, _)| k != i)
                .map(|(_, &p)| p)
                .collect();
            let mi = poly_from_roots(&others); // degree α-2 → α-1 coeffs
            for (d, &c) in mi.iter().enumerate() {
                bt.set(i, d, c);
            }
        }
        let big_m = poly_from_roots(points); // degree α-1 → α coeffs
        for (d, &c) in big_m.iter().enumerate() {
            bt.set(alpha - 1, d, c);
        }

        let t = Transform1D { m, r, alpha, at, g, bt };
        t.normalize_signs()
    }

    /// Flip paired signs so that the first non-zero entry of every G row is
    /// positive (the convention used in the paper's printed matrices). A
    /// simultaneous flip of G row i and Bᵀ row i leaves
    /// `(G·g) ⊙ (Bᵀ·d)` unchanged.
    fn normalize_signs(mut self) -> Self {
        for i in 0..self.alpha {
            let lead = (0..self.r).map(|j| self.g.at(i, j)).find(|v| !v.is_zero());
            if let Some(v) = lead {
                if v.is_negative() {
                    for j in 0..self.r {
                        let x = self.g.at(i, j);
                        self.g.set(i, j, -x);
                    }
                    for j in 0..self.alpha {
                        let x = self.bt.at(i, j);
                        self.bt.set(i, j, -x);
                    }
                }
            }
        }
        self
    }

    /// Exact FIR correlation through the Winograd identity:
    /// `Aᵀ[(G·g) ⊙ (Bᵀ·d)]`. Used by tests and by higher-dimensional
    /// verification; production code uses compiled f32 codelets instead.
    pub fn apply_exact(&self, d: &[Rational], g_taps: &[Rational]) -> Vec<Rational> {
        assert_eq!(d.len(), self.alpha);
        assert_eq!(g_taps.len(), self.r);
        let e = self.bt.matvec(d);
        let f = self.g.matvec(g_taps);
        let prod: Vec<Rational> = e.iter().zip(&f).map(|(&a, &b)| a * b).collect();
        self.at.matvec(&prod)
    }
}

/// Brute-force exact correlation `y_s = Σ_k d_{s+k} g_k`, `s = 0..m`.
pub fn direct_correlation(d: &[Rational], g: &[Rational], m: usize) -> Vec<Rational> {
    assert!(d.len() + 1 >= g.len() + m, "input too short: need m + r - 1 samples");
    (0..m)
        .map(|s| {
            g.iter()
                .enumerate()
                .fold(Rational::ZERO, |acc, (k, &gk)| acc + d[s + k] * gk)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    fn int(n: i128) -> Rational {
        Rational::from_int(n)
    }

    #[test]
    fn f23_matches_paper_equation_5() {
        // The paper's Eq. 5 matrices for F(2, 3), up to the documented
        // paired sign convention. With points [0, 1, -1] and our
        // normalisation, G must equal the paper's G exactly.
        let t = Transform1D::generate(2, 3);
        assert_eq!(t.alpha, 4);
        let g_expect = RatMatrix::from_rows(vec![
            vec![int(1), int(0), int(0)],
            vec![rat(1, 2), rat(1, 2), rat(1, 2)],
            vec![rat(1, 2), rat(-1, 2), rat(1, 2)],
            vec![int(0), int(0), int(1)],
        ]);
        assert_eq!(t.g, g_expect, "G mismatch:\n{:?}", t.g);

        // Bᵀ rows carry the paired sign flips; the element-wise products are
        // what must match, which the exactness test below already guarantees.
        // Still, check the magnitude pattern against the paper's Bᵀ.
        let bt_abs: Vec<Vec<Rational>> =
            (0..4).map(|i| t.bt.row(i).iter().map(|v| v.abs()).collect()).collect();
        let expect_abs = vec![
            vec![int(1), int(0), int(1), int(0)],
            vec![int(0), int(1), int(1), int(0)],
            vec![int(0), int(1), int(1), int(0)],
            vec![int(0), int(1), int(0), int(1)],
        ];
        assert_eq!(bt_abs, expect_abs);
    }

    #[test]
    fn f23_identity_on_symbolic_basis() {
        // Exactness on the standard basis is equivalent to exactness for all
        // inputs (bilinearity).
        let t = Transform1D::generate(2, 3);
        for di in 0..4 {
            for gi in 0..3 {
                let mut d = vec![Rational::ZERO; 4];
                let mut g = vec![Rational::ZERO; 3];
                d[di] = Rational::ONE;
                g[gi] = Rational::ONE;
                let got = t.apply_exact(&d, &g);
                let want = direct_correlation(&d, &g, 2);
                assert_eq!(got, want, "basis d[{di}], g[{gi}]");
            }
        }
    }

    #[test]
    fn exhaustive_sizes_are_exact() {
        // Every practically relevant (m, r): bilinearity means checking the
        // standard basis proves the identity for all inputs.
        for m in 1..=8usize {
            for r in 1..=6usize {
                let t = Transform1D::generate(m, r);
                assert_eq!(t.alpha, m + r - 1);
                assert_eq!(t.at.rows(), m);
                assert_eq!(t.at.cols(), t.alpha);
                assert_eq!(t.g.rows(), t.alpha);
                assert_eq!(t.g.cols(), r);
                assert_eq!(t.bt.rows(), t.alpha);
                assert_eq!(t.bt.cols(), t.alpha);
                for di in 0..t.alpha {
                    for gi in 0..r {
                        let mut d = vec![Rational::ZERO; t.alpha];
                        let mut g = vec![Rational::ZERO; r];
                        d[di] = Rational::ONE;
                        g[gi] = Rational::ONE;
                        let got = t.apply_exact(&d, &g);
                        let want = direct_correlation(&d, &g, m);
                        assert_eq!(got, want, "F({m},{r}) basis d[{di}] g[{gi}]");
                    }
                }
            }
        }
    }

    #[test]
    fn random_rational_inputs_are_exact() {
        let t = Transform1D::generate(4, 3);
        // Deterministic "random" small rationals.
        let d: Vec<Rational> = (0..6).map(|i| rat((i * 7 % 11) as i128 - 5, 1 + (i % 3) as i128)).collect();
        let g: Vec<Rational> = (0..3).map(|i| rat((i * 5 % 7) as i128 - 3, 2)).collect();
        assert_eq!(t.apply_exact(&d, &g), direct_correlation(&d, &g, 4));
    }

    #[test]
    fn degenerate_f11_is_plain_product() {
        let t = Transform1D::generate(1, 1);
        assert_eq!(t.alpha, 1);
        let y = t.apply_exact(&[int(3)], &[int(5)]);
        assert_eq!(y, vec![int(15)]);
    }

    #[test]
    fn fm1_is_identity_scaling() {
        // r = 1: convolution with a scalar.
        let t = Transform1D::generate(3, 1);
        let d = vec![int(2), int(-4), int(6)];
        let y = t.apply_exact(&d, &[int(3)]);
        assert_eq!(y, vec![int(6), int(-12), int(18)]);
    }

    #[test]
    fn multiplication_count_is_minimal() {
        // The whole point: the element-wise product stage uses exactly
        // α = m + r - 1 multiplications.
        let t = Transform1D::generate(6, 3);
        assert_eq!(t.alpha, 8); // vs m*r = 18 for the direct method
    }

    #[test]
    fn transform_matrices_are_sparse_for_small_points(){
        // B and G contain many structural zeros (exploited by codelets).
        let t = Transform1D::generate(2, 3);
        assert_eq!(t.bt.nnz(), 8); // paper's Bᵀ has 8 non-zeros out of 16
        assert!(t.at.nnz() <= 6);
    }

    #[test]
    fn matrix_ops() {
        let a = RatMatrix::from_rows(vec![vec![int(1), int(2)], vec![int(3), int(4)]]);
        let b = RatMatrix::from_rows(vec![vec![int(0), int(1)], vec![int(1), int(0)]]);
        let c = a.matmul(&b);
        assert_eq!(c.at(0, 0), int(2));
        assert_eq!(c.at(0, 1), int(1));
        assert_eq!(c.at(1, 0), int(4));
        assert_eq!(c.at(1, 1), int(3));
        let t = a.transpose();
        assert_eq!(t.at(0, 1), int(3));
        assert_eq!(a.matvec(&[int(1), int(1)]), vec![int(3), int(7)]);
    }

    #[test]
    fn poly_from_roots_expands_correctly() {
        // (x - 1)(x + 1) = x² - 1
        let c = poly_from_roots(&[int(1), int(-1)]);
        assert_eq!(c, vec![int(-1), int(0), int(1)]);
        // (x)(x-1)(x+1) = x³ - x
        let c = poly_from_roots(&[int(0), int(1), int(-1)]);
        assert_eq!(c, vec![int(0), int(-1), int(0), int(1)]);
        // empty product = 1
        assert_eq!(poly_from_roots(&[]), vec![int(1)]);
    }

    #[test]
    fn f32_conversion_roundtrips_small_values() {
        let t = Transform1D::generate(4, 3);
        let f = t.bt.to_f32();
        assert_eq!(f.rows, 6);
        assert_eq!(f.cols, 6);
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(f.at(i, j) as f64, t.bt.at(i, j).to_f64(), "entry {i},{j} not f32-exact");
            }
        }
    }
}
