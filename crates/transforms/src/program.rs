//! Codelet programs: compiled sparse forms of transform matrices.
//!
//! The paper's transformation stages never multiply by a dense `Bᵀ`/`G`/`Aᵀ`;
//! instead a code generator emits straight-line code with the *minimal*
//! number of operations (§4.2.1). We reproduce that by "compiling" each
//! transform matrix into a [`MatrixProgram`] at plan time:
//!
//! * structural zeros are skipped entirely,
//! * coefficients ±1 become add/sub/copy instead of multiply,
//! * everything else becomes a fused multiply–add.
//!
//! The program is data (a list of terms per output row), executed either by
//! the scalar interpreter here (used by tests and the reference paths) or by
//! the S-wide vector interpreter in `wino-conv`, which processes S = 16
//! channels per operation exactly like the paper's codelets.

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use crate::matgen::F32Matrix;

/// One term of an output row: `coeff * input[src]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Term {
    pub src: usize,
    pub coeff: f32,
}

impl Term {
    /// Whether this term is a plain add/sub (coefficient ±1) rather than a
    /// genuine multiplication.
    pub fn is_unit(self) -> bool {
        self.coeff == 1.0 || self.coeff == -1.0
    }
}

/// The terms contributing to one output element. An empty row denotes a
/// structurally zero output.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RowProgram {
    pub terms: Vec<Term>,
}

/// Operation counts for a compiled program (the paper's cost model counts
/// FMAs; we separate multiplies from adds for finer reporting).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Multiplications (including the multiply half of an FMA).
    pub muls: usize,
    /// Additions/subtractions (including the add half of an FMA).
    pub adds: usize,
}

impl OpCount {
    pub fn total(self) -> usize {
        self.muls + self.adds
    }
}

/// A transform matrix compiled to sparse row programs.
#[derive(Clone, Debug)]
pub struct MatrixProgram {
    pub n_out: usize,
    pub n_in: usize,
    pub rows: Vec<RowProgram>,
}

impl MatrixProgram {
    /// Compile a dense `f32` matrix (as produced by
    /// [`crate::matgen::RatMatrix::to_f32`]) into a sparse program.
    pub fn compile(m: &F32Matrix) -> MatrixProgram {
        let rows = (0..m.rows)
            .map(|i| RowProgram {
                terms: (0..m.cols)
                    .filter(|&j| m.at(i, j) != 0.0)
                    .map(|j| Term { src: j, coeff: m.at(i, j) })
                    .collect(),
            })
            .collect();
        MatrixProgram { n_out: m.rows, n_in: m.cols, rows }
    }

    /// Count scalar operations per application of the program to one line.
    pub fn op_count(&self) -> OpCount {
        let mut c = OpCount::default();
        for row in &self.rows {
            for (k, t) in row.terms.iter().enumerate() {
                if !t.is_unit() {
                    c.muls += 1;
                }
                if k > 0 {
                    c.adds += 1;
                }
            }
        }
        c
    }

    /// Apply to a strided line of scalars: `out[i] = Σ coeff·input[src]`.
    ///
    /// `input` and `output` may not alias. Used by the reference/test paths;
    /// hot paths use the S-wide interpreter in `wino-conv`.
    pub fn apply_strided(
        &self,
        input: &[f32],
        in_stride: usize,
        output: &mut [f32],
        out_stride: usize,
    ) {
        debug_assert!(input.len() > (self.n_in - 1) * in_stride);
        debug_assert!(output.len() > (self.n_out - 1) * out_stride);
        for (i, row) in self.rows.iter().enumerate() {
            let mut acc = 0.0f32;
            for t in &row.terms {
                acc += t.coeff * input[t.src * in_stride];
            }
            output[i * out_stride] = acc;
        }
    }

    /// Apply to a contiguous line.
    pub fn apply(&self, input: &[f32], output: &mut [f32]) {
        self.apply_strided(input, 1, output, 1);
    }

    /// Reconstruct the dense matrix (for testing the compile step).
    pub fn to_dense(&self) -> F32Matrix {
        let mut data = vec![0.0f32; self.n_out * self.n_in];
        for (i, row) in self.rows.iter().enumerate() {
            for t in &row.terms {
                data[i * self.n_in + t.src] = t.coeff;
            }
        }
        F32Matrix { rows: self.n_out, cols: self.n_in, data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matgen::Transform1D;

    fn bt_program(m: usize, r: usize) -> MatrixProgram {
        let t = Transform1D::generate(m, r);
        MatrixProgram::compile(&t.bt.to_f32())
    }

    #[test]
    fn compile_skips_zeros() {
        let p = bt_program(2, 3);
        // Paper's Bᵀ for F(2,3) has exactly 8 non-zeros, all ±1.
        let total_terms: usize = p.rows.iter().map(|r| r.terms.len()).sum();
        assert_eq!(total_terms, 8);
        let c = p.op_count();
        assert_eq!(c.muls, 0, "F(2,3) Bᵀ is multiplication-free");
        assert_eq!(c.adds, 4);
    }

    #[test]
    fn apply_matches_dense_matvec() {
        for (m, r) in [(2, 3), (4, 3), (6, 3), (3, 4), (2, 5)] {
            let t = Transform1D::generate(m, r);
            for mat in [t.bt.to_f32(), t.g.to_f32(), t.at.to_f32()] {
                let p = MatrixProgram::compile(&mat);
                let input: Vec<f32> = (0..mat.cols).map(|i| (i as f32 * 0.37) - 1.0).collect();
                let mut out = vec![0.0f32; mat.rows];
                p.apply(&input, &mut out);
                for i in 0..mat.rows {
                    let want: f32 = (0..mat.cols).map(|j| mat.at(i, j) * input[j]).sum();
                    assert!(
                        (out[i] - want).abs() <= 1e-5 * want.abs().max(1.0),
                        "F({m},{r}) row {i}: {} vs {}",
                        out[i],
                        want
                    );
                }
            }
        }
    }

    #[test]
    fn strided_apply() {
        let p = bt_program(2, 3);
        let dense = p.to_dense();
        let line = [1.0f32, -2.0, 3.0, 0.5];
        // Scatter input with stride 3, output with stride 2.
        let mut input = vec![0.0f32; 4 * 3];
        for (i, &v) in line.iter().enumerate() {
            input[i * 3] = v;
        }
        let mut output = vec![0.0f32; 4 * 2];
        p.apply_strided(&input, 3, &mut output, 2);
        for i in 0..4 {
            let want: f32 = (0..4).map(|j| dense.at(i, j) * line[j]).sum();
            assert_eq!(output[i * 2], want);
        }
    }

    #[test]
    fn to_dense_roundtrips() {
        let t = Transform1D::generate(4, 3);
        let dense = t.g.to_f32();
        let p = MatrixProgram::compile(&dense);
        assert_eq!(p.to_dense(), dense);
    }

    #[test]
    fn op_counts_grow_with_tile_size() {
        // §5.1: transform op count grows roughly quadratically with m.
        let c2 = bt_program(2, 3).op_count().total();
        let c4 = bt_program(4, 3).op_count().total();
        let c6 = bt_program(6, 3).op_count().total();
        assert!(c2 < c4 && c4 < c6, "{c2} {c4} {c6}");
    }
}
