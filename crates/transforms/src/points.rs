//! Interpolation-point schedules for the Cook–Toom construction.
//!
//! The numerical accuracy of a Winograd transform depends heavily on the
//! choice of interpolation points (§5.3 of the paper, and Vincent et al.
//! 2017). We follow the schedule used by Wincnn — the tool the paper used to
//! generate its matrices — which interleaves small integers and their
//! reciprocals, symmetric around zero:
//!
//! `0, 1, -1, 2, -2, 1/2, -1/2, 3, -3, 1/3, -1/3, 4, -4, 1/4, -1/4, …`

use crate::rational::Rational;

/// Returns the first `n` interpolation points of the default schedule.
///
/// All points are distinct; the (implicit) final point of every Cook–Toom
/// construction is the point at infinity and is *not* part of this list.
///
/// # Panics
/// Panics if `n` exceeds [`MAX_FINITE_POINTS`].
pub fn default_points(n: usize) -> Vec<Rational> {
    assert!(
        n <= MAX_FINITE_POINTS,
        "requested {n} interpolation points; only {MAX_FINITE_POINTS} are supported \
         (F(m, r) with m + r - 1 <= {})",
        MAX_FINITE_POINTS + 1
    );
    let mut pts = Vec::with_capacity(n);
    pts.push(Rational::ZERO);
    // Groups of (k, -k, 1/k, -1/k) for k = 1, 2, 3, …; 1/1 duplicates 1 so
    // the k = 1 group only contributes ±1.
    let mut k: i128 = 1;
    while pts.len() < n {
        let candidates: &[Rational] = &[
            Rational::from_int(k),
            Rational::from_int(-k),
            Rational::new(1, k),
            Rational::new(-1, k),
        ];
        for &c in candidates {
            if pts.len() == n {
                break;
            }
            if !pts.contains(&c) {
                pts.push(c);
            }
        }
        k += 1;
    }
    pts.truncate(n);
    pts
}

/// Upper bound on the number of finite interpolation points. Larger tile
/// sizes are numerically useless in f32 (Table 3: F(8²,3²) already reaches
/// O(1) max error), so this bound is far beyond any practical configuration.
pub const MAX_FINITE_POINTS: usize = 24;

/// Integer-only schedule `0, 1, -1, 2, -2, 3, -3, …` — the naive choice of
/// early Winograd generators. Much worse conditioned than
/// [`default_points`] for large tiles (the `Bᵀ` entry magnitudes grow
/// ~6-10× faster); provided for the accuracy ablation that reconciles our
/// Table 3 error magnitudes with the paper's.
pub fn integer_points(n: usize) -> Vec<Rational> {
    assert!(n <= MAX_FINITE_POINTS, "requested {n} points, max {MAX_FINITE_POINTS}");
    let mut pts = vec![Rational::ZERO];
    let mut k: i128 = 1;
    while pts.len() < n {
        pts.push(Rational::from_int(k));
        if pts.len() < n {
            pts.push(Rational::from_int(-k));
        }
        k += 1;
    }
    pts.truncate(n);
    pts
}

/// Which interpolation-point schedule a transform is generated with.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum PointSchedule {
    /// Interleaved integers and reciprocals (Wincnn-style; well
    /// conditioned). The default.
    #[default]
    Mixed,
    /// Integers only (poorly conditioned; paper-era generators).
    Integer,
}

impl PointSchedule {
    /// The first `n` points of this schedule.
    pub fn points(self, n: usize) -> Vec<Rational> {
        match self {
            PointSchedule::Mixed => default_points(n),
            PointSchedule::Integer => integer_points(n),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_matches_wincnn_schedule() {
        let p = default_points(9);
        let expect: Vec<Rational> = vec![
            Rational::from_int(0),
            Rational::from_int(1),
            Rational::from_int(-1),
            Rational::from_int(2),
            Rational::from_int(-2),
            Rational::new(1, 2),
            Rational::new(-1, 2),
            Rational::from_int(3),
            Rational::from_int(-3),
        ];
        assert_eq!(p, expect);
    }

    #[test]
    fn points_are_distinct() {
        let p = default_points(MAX_FINITE_POINTS);
        for i in 0..p.len() {
            for j in (i + 1)..p.len() {
                assert_ne!(p[i], p[j], "duplicate point at {i},{j}");
            }
        }
    }

    #[test]
    fn shorter_prefixes_are_prefixes() {
        let long = default_points(12);
        for n in 0..12 {
            assert_eq!(default_points(n), long[..n]);
        }
    }

    #[test]
    #[should_panic(expected = "interpolation points")]
    fn too_many_points_panics() {
        let _ = default_points(MAX_FINITE_POINTS + 1);
    }
}
