//! Portable scalar backend: a plain `[f32; 16]` with loops simple enough
//! for LLVM to auto-vectorise. Keeps the whole workspace buildable and
//! testable on any architecture; the data layouts are unchanged.

pub(crate) const NAME: &str = "scalar";

/// 16 `f32` lanes backed by an array.
#[derive(Clone, Copy)]
#[repr(C, align(64))]
pub struct F32x16([f32; 16]);

impl F32x16 {
    /// All-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        F32x16([0.0; 16])
    }

    /// Broadcast `x` to all lanes.
    #[inline(always)]
    pub fn splat(x: f32) -> Self {
        F32x16([x; 16])
    }

    /// Unaligned load of 16 floats.
    ///
    /// # Safety
    /// `p` must be valid for reading 64 bytes.
    #[inline(always)]
    pub unsafe fn load(p: *const f32) -> Self {
        F32x16(std::ptr::read_unaligned(p as *const [f32; 16]))
    }

    /// Unaligned store of 16 floats.
    ///
    /// # Safety
    /// `p` must be valid for writing 64 bytes.
    #[inline(always)]
    pub unsafe fn store(self, p: *mut f32) {
        std::ptr::write_unaligned(p as *mut [f32; 16], self.0);
    }

    /// "Streaming" store — a plain store on this backend.
    ///
    /// # Safety
    /// `p` must be valid for writing 64 bytes and 64-byte aligned (the
    /// layout contract shared with the SIMD backends).
    #[inline(always)]
    pub unsafe fn store_nt(self, p: *mut f32) {
        debug_assert_eq!(p as usize % 64, 0, "streaming store requires 64-byte alignment");
        self.store(p);
    }

    #[inline(always)]
    pub(crate) fn add_v(a: Self, b: Self) -> Self {
        F32x16(std::array::from_fn(|i| a.0[i] + b.0[i]))
    }

    #[inline(always)]
    pub(crate) fn sub_v(a: Self, b: Self) -> Self {
        F32x16(std::array::from_fn(|i| a.0[i] - b.0[i]))
    }

    #[inline(always)]
    pub(crate) fn mul_v(a: Self, b: Self) -> Self {
        F32x16(std::array::from_fn(|i| a.0[i] * b.0[i]))
    }

    /// Multiply-add `self * b + c` (not necessarily fused on this backend).
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        F32x16(std::array::from_fn(|i| self.0[i] * b.0[i] + c.0[i]))
    }

    /// Copy lanes out into an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 16] {
        self.0
    }
}
