//! 64-byte aligned `f32` buffers with accounted, fallible allocation.
//!
//! Every array in the paper's data layout (§4.1) is 64-byte aligned "so as
//! to facilitate the consecutive and aligned memory operations" — and the
//! streaming stores *require* it. `Vec<f32>` only guarantees 4-byte
//! alignment, so hot buffers use this type instead.
//!
//! Allocation here is the memory-robustness seam for the whole engine:
//!
//! * the `try_*` constructors return a typed [`AllocError`] instead of
//!   aborting, so planners and the serving layer can degrade (smaller
//!   tiles, im2col, shedding) instead of dying;
//! * every allocation is tallied — a process-global live-byte gauge feeds
//!   the `alloc-bytes-peak` probe counter and `alloc-calls` counts every
//!   buffer ever created, so footprint models can be validated against
//!   what was actually allocated;
//! * under the `fault-inject` feature the `try_*` path consults the
//!   [`crate::fault`] injector, which can deterministically fail the
//!   k-th allocation or the first allocation past a byte budget. The
//!   infallible wrappers never consult the injector: arming a fault can
//!   make a `try_*` call fail, never abort the process.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};

use wino_probe::Counter;

use crate::CACHE_LINE;

/// Bytes of [`AlignedVec`] storage currently live, process-wide.
static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Per-thread allocation tallies: deterministic even while unrelated
    // test threads allocate, which the process-global counters are not.
    static THREAD_ALLOC_CALLS: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    static THREAD_ALLOC_BYTES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Bytes of [`AlignedVec`] storage currently live across the process —
/// the gauge behind the `alloc-bytes-peak` counter.
pub fn live_alloc_bytes() -> u64 {
    // ORDERING: Relaxed — a monitoring gauge; readers tolerate staleness.
    LIVE_BYTES.load(Ordering::Relaxed)
}

/// [`AlignedVec`] allocations made *by the calling thread* since it
/// started. Monotonic; diff two readings to count allocations in a
/// region. Unlike the process-global `alloc-calls` counter this is
/// immune to concurrent threads, so tests can assert exact deltas.
pub fn thread_alloc_calls() -> u64 {
    THREAD_ALLOC_CALLS.with(|c| c.get())
}

/// Bytes allocated by the calling thread since it started (monotonic —
/// frees are not subtracted; diff two readings around a region).
pub fn thread_alloc_bytes() -> u64 {
    THREAD_ALLOC_BYTES.with(|c| c.get())
}

/// A typed allocation failure: the allocator refused `bytes` (or the
/// fault injector simulated the refusal — `injected` says which).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AllocError {
    /// Requested length in `f32` elements.
    pub len: usize,
    /// Requested size in bytes.
    pub bytes: usize,
    /// True when the failure came from the fault injector rather than
    /// the system allocator.
    pub injected: bool,
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "allocation of {} bytes ({} f32) failed{}",
            self.bytes,
            self.len,
            if self.injected { " (injected)" } else { "" }
        )
    }
}

impl std::error::Error for AllocError {}

/// A fixed-length, zero-initialised, 64-byte aligned buffer of `f32`.
///
/// Unlike `Vec`, the length is fixed at construction (the paper's buffers
/// are sized once per plan and reused across layers); this keeps the type
/// trivially `Send + Sync` and free of growth bookkeeping.
pub struct AlignedVec {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: `AlignedVec` owns its allocation exclusively; sharing &AlignedVec
// only permits reads.
unsafe impl Send for AlignedVec {}
// SAFETY: as above — mutation requires &mut, so shared access is read-only.
unsafe impl Sync for AlignedVec {}

/// Record a successful allocation of `bytes` in the process gauge, the
/// probe counters and the per-thread tallies.
fn account(bytes: usize) {
    Counter::AllocCalls.add(1);
    // ORDERING: Relaxed — a statistics gauge; each RMW is atomic and the
    // peak estimate needs no cross-variable ordering.
    let live = LIVE_BYTES.fetch_add(bytes as u64, Ordering::Relaxed) + bytes as u64;
    Counter::AllocBytesPeak.record_max(live);
    THREAD_ALLOC_CALLS.with(|c| c.set(c.get() + 1));
    THREAD_ALLOC_BYTES.with(|c| c.set(c.get() + bytes as u64));
}

/// One fallible allocation. `injectable` is true only on the `try_*`
/// path: the infallible wrappers skip the fault injector so arming a
/// fault can never abort the process through them.
fn try_alloc(len: usize, zeroed: bool, injectable: bool) -> Result<AlignedVec, AllocError> {
    if len == 0 {
        return Ok(AlignedVec { ptr: std::ptr::NonNull::<f32>::dangling().as_ptr(), len: 0 });
    }
    let layout = AlignedVec::layout(len);
    let bytes = layout.size();
    #[cfg(feature = "fault-inject")]
    if injectable && crate::fault::should_fail(bytes) {
        return Err(AllocError { len, bytes, injected: true });
    }
    #[cfg(not(feature = "fault-inject"))]
    let _ = injectable;
    // SAFETY: layout has non-zero size here.
    let ptr = unsafe { if zeroed { alloc_zeroed(layout) } else { std::alloc::alloc(layout) } }
        as *mut f32;
    if ptr.is_null() {
        return Err(AllocError { len, bytes, injected: false });
    }
    account(bytes);
    Ok(AlignedVec { ptr, len })
}

impl AlignedVec {
    /// Allocate `len` floats, zero-filled and 64-byte aligned, or return
    /// a typed [`AllocError`] — never aborts. Does not consult the fault
    /// injector's byte/call budget beyond... it *is* the injectable seam:
    /// an armed injector fails this call with `injected: true`.
    pub fn try_zeroed(len: usize) -> Result<AlignedVec, AllocError> {
        try_alloc(len, true, true)
    }

    /// Fallible variant of [`AlignedVec::uninit`].
    ///
    /// # Safety
    /// Every element must be written (e.g. zeroed) before the buffer is
    /// read or exposed to safe code.
    pub unsafe fn try_uninit(len: usize) -> Result<AlignedVec, AllocError> {
        try_alloc(len, false, true)
    }

    /// Allocate `len` floats (zeroed), then run `init` on the fresh
    /// slice — the fallible generalisation of [`AlignedVec::from_slice`].
    pub fn try_with(
        len: usize,
        init: impl FnOnce(&mut [f32]),
    ) -> Result<AlignedVec, AllocError> {
        let mut v = Self::try_zeroed(len)?;
        init(v.as_mut_slice());
        Ok(v)
    }

    /// Allocate `len` floats, zero-filled and 64-byte aligned.
    ///
    /// Thin wrapper over [`AlignedVec::try_zeroed`] that aborts on a real
    /// OOM (the historical behaviour). It never consults the fault
    /// injector, so armed faults cannot abort through it.
    pub fn zeroed(len: usize) -> AlignedVec {
        try_alloc(len, true, false).unwrap_or_else(|_| handle_alloc_error(Self::layout(len)))
    }

    /// Allocate `len` floats, 64-byte aligned, **uninitialised** — the
    /// building block for first-touch placement: `alloc_zeroed` hands back
    /// copy-on-write zero pages whose physical frames are committed on the
    /// *allocating* thread's NUMA node at first write, so a NUMA-aware
    /// caller allocates uninitialised and zeroes each region from the
    /// thread that will use it (see `wino-tensor`'s first-touch
    /// constructors).
    ///
    /// # Safety
    /// Every element must be written (e.g. zeroed) before the buffer is
    /// read or exposed to safe code — the contents start out uninitialised
    /// and reading them is undefined behaviour.
    pub unsafe fn uninit(len: usize) -> AlignedVec {
        try_alloc(len, false, false).unwrap_or_else(|_| handle_alloc_error(Self::layout(len)))
    }

    /// Allocate and fill from a slice.
    pub fn from_slice(data: &[f32]) -> AlignedVec {
        let mut v = Self::zeroed(data.len());
        v.as_mut_slice().copy_from_slice(data);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f32>(), CACHE_LINE)
            .expect("buffer too large")
    }

    /// Size of the backing allocation in bytes.
    pub fn bytes(&self) -> usize {
        self.len * std::mem::size_of::<f32>()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.ptr
    }

    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.ptr
    }

    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `ptr` is valid for `len` floats for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as above, plus &mut self guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Reset all elements to zero.
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // ORDERING: Relaxed — statistics gauge decrement, as in `account`.
            LIVE_BYTES.fetch_sub(self.bytes() as u64, Ordering::Relaxed);
            // SAFETY: allocated with the identical layout in `try_alloc`.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        AlignedVec::from_slice(self.as_slice())
    }
}

impl Deref for AlignedVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_aligned_and_zero() {
        for len in [1, 15, 16, 17, 1024, 100_000] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.len(), len);
            assert_eq!(v.as_ptr() as usize % 64, 0, "len {len} not 64-byte aligned");
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn empty_buffer() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn from_slice_and_clone() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), &data[..]);
        let w = v.clone();
        assert_eq!(w.as_slice(), v.as_slice());
        assert_ne!(w.as_ptr(), v.as_ptr());
    }

    #[test]
    fn deref_mut_and_fill() {
        let mut v = AlignedVec::zeroed(32);
        v[3] = 7.0;
        v[31] = -1.0;
        assert_eq!(v[3], 7.0);
        v.fill_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn many_allocations_dont_leak_or_crash() {
        for _ in 0..1000 {
            let v = AlignedVec::zeroed(4096);
            std::hint::black_box(&v);
        }
    }

    #[test]
    fn try_constructors_match_infallible_ones() {
        let v = AlignedVec::try_zeroed(64).unwrap();
        assert_eq!(v.len(), 64);
        assert_eq!(v.as_ptr() as usize % 64, 0);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(v.bytes(), 256);

        let w = AlignedVec::try_with(8, |s| {
            for (i, x) in s.iter_mut().enumerate() {
                *x = i as f32;
            }
        })
        .unwrap();
        assert_eq!(w.as_slice(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0]);

        // SAFETY: fully overwritten before any read below.
        let mut u = unsafe { AlignedVec::try_uninit(16) }.unwrap();
        u.fill_zero();
        assert!(u.iter().all(|&x| x == 0.0));

        assert!(AlignedVec::try_zeroed(0).unwrap().is_empty());
    }

    #[test]
    fn allocations_are_tallied() {
        let calls0 = thread_alloc_calls();
        let bytes0 = thread_alloc_bytes();
        let v = AlignedVec::try_zeroed(1024); // 4096 bytes
        assert_eq!(thread_alloc_calls(), calls0 + 1);
        assert_eq!(thread_alloc_bytes(), bytes0 + 4096);
        // The process-wide gauge counts our buffer (plus whatever sibling
        // test threads hold — it can only be checked as a lower bound).
        assert!(live_alloc_bytes() >= 4096);
        drop(v);
        // Zero-length buffers are free and uncounted.
        let _e = AlignedVec::try_zeroed(0).unwrap();
        assert_eq!(thread_alloc_calls(), calls0 + 1);
        // The process-global counter moved too (≥, because of siblings).
        assert!(wino_probe::Counter::AllocCalls.get() >= 1);
    }
}
