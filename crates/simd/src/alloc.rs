//! 64-byte aligned `f32` buffers.
//!
//! Every array in the paper's data layout (§4.1) is 64-byte aligned "so as
//! to facilitate the consecutive and aligned memory operations" — and the
//! streaming stores *require* it. `Vec<f32>` only guarantees 4-byte
//! alignment, so hot buffers use this type instead.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};

use crate::CACHE_LINE;

/// A fixed-length, zero-initialised, 64-byte aligned buffer of `f32`.
///
/// Unlike `Vec`, the length is fixed at construction (the paper's buffers
/// are sized once per plan and reused across layers); this keeps the type
/// trivially `Send + Sync` and free of growth bookkeeping.
pub struct AlignedVec {
    ptr: *mut f32,
    len: usize,
}

// SAFETY: `AlignedVec` owns its allocation exclusively; sharing &AlignedVec
// only permits reads.
unsafe impl Send for AlignedVec {}
// SAFETY: as above — mutation requires &mut, so shared access is read-only.
unsafe impl Sync for AlignedVec {}

impl AlignedVec {
    /// Allocate `len` floats, zero-filled and 64-byte aligned.
    pub fn zeroed(len: usize) -> AlignedVec {
        if len == 0 {
            return AlignedVec { ptr: std::ptr::NonNull::<f32>::dangling().as_ptr(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size here.
        let ptr = unsafe { alloc_zeroed(layout) } as *mut f32;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        AlignedVec { ptr, len }
    }

    /// Allocate `len` floats, 64-byte aligned, **uninitialised** — the
    /// building block for first-touch placement: `alloc_zeroed` hands back
    /// copy-on-write zero pages whose physical frames are committed on the
    /// *allocating* thread's NUMA node at first write, so a NUMA-aware
    /// caller allocates uninitialised and zeroes each region from the
    /// thread that will use it (see `wino-tensor`'s first-touch
    /// constructors).
    ///
    /// # Safety
    /// Every element must be written (e.g. zeroed) before the buffer is
    /// read or exposed to safe code — the contents start out uninitialised
    /// and reading them is undefined behaviour.
    pub unsafe fn uninit(len: usize) -> AlignedVec {
        if len == 0 {
            return AlignedVec { ptr: std::ptr::NonNull::<f32>::dangling().as_ptr(), len: 0 };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has non-zero size here.
        let ptr = unsafe { std::alloc::alloc(layout) } as *mut f32;
        if ptr.is_null() {
            handle_alloc_error(layout);
        }
        AlignedVec { ptr, len }
    }

    /// Allocate and fill from a slice.
    pub fn from_slice(data: &[f32]) -> AlignedVec {
        let mut v = Self::zeroed(data.len());
        v.as_mut_slice().copy_from_slice(data);
        v
    }

    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len * std::mem::size_of::<f32>(), CACHE_LINE)
            .expect("buffer too large")
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.ptr
    }

    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.ptr
    }

    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `ptr` is valid for `len` floats for the lifetime of self.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as above, plus &mut self guarantees exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }

    /// Reset all elements to zero.
    pub fn fill_zero(&mut self) {
        self.as_mut_slice().fill(0.0);
    }
}

impl Drop for AlignedVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated with the identical layout in `zeroed`.
            unsafe { dealloc(self.ptr as *mut u8, Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedVec {
    fn clone(&self) -> Self {
        AlignedVec::from_slice(self.as_slice())
    }
}

impl Deref for AlignedVec {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        self.as_slice()
    }
}

impl DerefMut for AlignedVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        self.as_mut_slice()
    }
}

impl std::fmt::Debug for AlignedVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedVec(len={})", self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_is_aligned_and_zero() {
        for len in [1, 15, 16, 17, 1024, 100_000] {
            let v = AlignedVec::zeroed(len);
            assert_eq!(v.len(), len);
            assert_eq!(v.as_ptr() as usize % 64, 0, "len {len} not 64-byte aligned");
            assert!(v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn empty_buffer() {
        let v = AlignedVec::zeroed(0);
        assert!(v.is_empty());
        assert_eq!(v.as_slice(), &[] as &[f32]);
    }

    #[test]
    fn from_slice_and_clone() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let v = AlignedVec::from_slice(&data);
        assert_eq!(v.as_slice(), &data[..]);
        let w = v.clone();
        assert_eq!(w.as_slice(), v.as_slice());
        assert_ne!(w.as_ptr(), v.as_ptr());
    }

    #[test]
    fn deref_mut_and_fill() {
        let mut v = AlignedVec::zeroed(32);
        v[3] = 7.0;
        v[31] = -1.0;
        assert_eq!(v[3], 7.0);
        v.fill_zero();
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn many_allocations_dont_leak_or_crash() {
        for _ in 0..1000 {
            let v = AlignedVec::zeroed(4096);
            std::hint::black_box(&v);
        }
    }
}
