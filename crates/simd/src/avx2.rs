//! AVX2+FMA backend: each 16-lane vector is a pair of 256-bit halves. This
//! is the "easily extended to AVX2" configuration sketched in the paper's
//! conclusion — the data layout stays identical (S = 16), only the register
//! tiling changes.

// Rationale: on toolchains where value-only vector intrinsics are safe
// (target-feature 1.1), the wrapping `unsafe` blocks below are redundant
// but kept for portability to older rustc versions.
#![allow(unused_unsafe)]

use std::arch::x86_64::*;

pub(crate) const NAME: &str = "avx2";

/// 16 packed `f32` lanes backed by two `__m256`.
#[derive(Clone, Copy)]
pub struct F32x16(__m256, __m256);

impl F32x16 {
    /// All-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        // SAFETY: register-only intrinsic, no memory access; this module
        // only compiles when avx2+fma are statically enabled (lib.rs cfg).
        unsafe { F32x16(_mm256_setzero_ps(), _mm256_setzero_ps()) }
    }

    /// Broadcast `x` to all lanes.
    #[inline(always)]
    pub fn splat(x: f32) -> Self {
        // SAFETY: register-only intrinsic, no memory access (see `zero`).
        unsafe {
            let v = _mm256_set1_ps(x);
            F32x16(v, v)
        }
    }

    /// Unaligned load of 16 floats.
    ///
    /// # Safety
    /// `p` must be valid for reading 64 bytes.
    #[inline(always)]
    pub unsafe fn load(p: *const f32) -> Self {
        F32x16(_mm256_loadu_ps(p), _mm256_loadu_ps(p.add(8)))
    }

    /// Unaligned store of 16 floats.
    ///
    /// # Safety
    /// `p` must be valid for writing 64 bytes.
    #[inline(always)]
    pub unsafe fn store(self, p: *mut f32) {
        _mm256_storeu_ps(p, self.0);
        _mm256_storeu_ps(p.add(8), self.1);
    }

    /// Non-temporal (streaming) store.
    ///
    /// # Safety
    /// `p` must be valid for writing 64 bytes and 64-byte aligned (32-byte
    /// would suffice for AVX, but the layout contract is 64).
    #[inline(always)]
    pub unsafe fn store_nt(self, p: *mut f32) {
        debug_assert_eq!(p as usize % 64, 0, "streaming store requires 64-byte alignment");
        _mm256_stream_ps(p, self.0);
        _mm256_stream_ps(p.add(8), self.1);
    }

    #[inline(always)]
    pub(crate) fn add_v(a: Self, b: Self) -> Self {
        // SAFETY: register-only intrinsic, no memory access (see `zero`).
        unsafe { F32x16(_mm256_add_ps(a.0, b.0), _mm256_add_ps(a.1, b.1)) }
    }

    #[inline(always)]
    pub(crate) fn sub_v(a: Self, b: Self) -> Self {
        // SAFETY: register-only intrinsic, no memory access (see `zero`).
        unsafe { F32x16(_mm256_sub_ps(a.0, b.0), _mm256_sub_ps(a.1, b.1)) }
    }

    #[inline(always)]
    pub(crate) fn mul_v(a: Self, b: Self) -> Self {
        // SAFETY: register-only intrinsic, no memory access (see `zero`).
        unsafe { F32x16(_mm256_mul_ps(a.0, b.0), _mm256_mul_ps(a.1, b.1)) }
    }

    /// Fused multiply-add: `self * b + c` in one rounding per lane.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        // SAFETY: register-only intrinsic, no memory access (see `zero`);
        // FMA availability is checked together with AVX2.
        unsafe {
            F32x16(
                _mm256_fmadd_ps(self.0, b.0, c.0),
                _mm256_fmadd_ps(self.1, b.1, c.1),
            )
        }
    }

    /// Copy lanes out into an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 16] {
        let mut out = [0.0f32; 16];
        // SAFETY: `out` is a local [f32; 16] — 64 writable bytes.
        unsafe {
            _mm256_storeu_ps(out.as_mut_ptr(), self.0);
            _mm256_storeu_ps(out.as_mut_ptr().add(8), self.1);
        }
        out
    }
}
