//! # wino-simd
//!
//! The SIMD substrate: a 16-lane single-precision vector type [`F32x16`]
//! matching the paper's vector width `S = 16` (one AVX-512 register), with
//! three compile-time-selected backends:
//!
//! * **AVX-512F** — one `__m512` per vector (the paper's target ISA),
//! * **AVX2+FMA** — two `__m256` halves,
//! * **scalar** — a `[f32; 16]` array written so LLVM auto-vectorises it.
//!
//! Like the paper's artifact (which is compiled *for* the Xeon Phi), the
//! backend is chosen statically: build with `-C target-cpu=native` (the
//! workspace `.cargo/config.toml` does this) and the best available ISA is
//! used. All higher layers are written against `F32x16` only, so they are
//! ISA-agnostic — exactly the structure the paper describes ("the rest of
//! the code can be fully reused", §6).
//!
//! Also provided, because the paper's optimisations depend on them:
//!
//! * **non-temporal streaming stores** ([`F32x16::store_nt`]) used when the
//!   produced data "will not be used in the near future" (§4.2.1, §4.3.1) —
//!   they bypass the cache hierarchy, avoiding pollution;
//! * **software prefetch** hints ([`prefetch_t0`], [`prefetch_t1`]) used by
//!   the matrix-multiplication micro-kernels (§4.3.1);
//! * **64-byte aligned buffers** ([`AlignedVec`]) — the paper's layouts are
//!   64-byte aligned so every access can be an aligned vector load/store
//!   (§4.1).

mod alloc;
pub use alloc::{
    live_alloc_bytes, thread_alloc_bytes, thread_alloc_calls, AlignedVec, AllocError,
};

#[cfg(feature = "fault-inject")]
pub mod fault;

pub mod denormals;
pub use denormals::FlushDenormals;

/// The vector width in `f32` lanes. The paper's `S`: the number of
/// single-precision floats in one 512-bit register.
pub const S: usize = 16;

/// Cache-line size in bytes; all hot buffers are aligned to this.
pub const CACHE_LINE: usize = 64;

// ---------------------------------------------------------------------------
// Backend selection (compile-time, like the paper's per-ISA builds).
// ---------------------------------------------------------------------------

#[cfg(all(target_arch = "x86_64", target_feature = "avx512f"))]
#[path = "avx512.rs"]
mod backend;

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma",
    not(target_feature = "avx512f")
))]
#[path = "avx2.rs"]
mod backend;

#[cfg(not(any(
    all(target_arch = "x86_64", target_feature = "avx512f"),
    all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma",
        not(target_feature = "avx512f")
    )
)))]
#[path = "scalar.rs"]
mod backend;

pub use backend::F32x16;

/// Name of the statically selected backend (for logs and bench reports).
pub const fn backend_name() -> &'static str {
    backend::NAME
}

impl F32x16 {
    /// Number of lanes (always 16; `F32x16` is width-uniform across
    /// backends so data layouts never change with the ISA).
    pub const LANES: usize = S;

    /// Load 16 floats from a slice (bounds-checked).
    #[inline(always)]
    pub fn from_slice(s: &[f32]) -> Self {
        assert!(s.len() >= S);
        // SAFETY: length checked above.
        unsafe { Self::load(s.as_ptr()) }
    }

    /// Store 16 floats into a slice (bounds-checked).
    #[inline(always)]
    pub fn write_to_slice(self, s: &mut [f32]) {
        assert!(s.len() >= S);
        // SAFETY: length checked above.
        unsafe { self.store(s.as_mut_ptr()) }
    }
}

impl Default for F32x16 {
    #[inline(always)]
    fn default() -> Self {
        Self::zero()
    }
}

impl std::fmt::Debug for F32x16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "F32x16({:?})", self.to_array())
    }
}

impl std::ops::Add for F32x16 {
    type Output = F32x16;
    #[inline(always)]
    fn add(self, rhs: F32x16) -> F32x16 {
        F32x16::add_v(self, rhs)
    }
}

impl std::ops::Sub for F32x16 {
    type Output = F32x16;
    #[inline(always)]
    fn sub(self, rhs: F32x16) -> F32x16 {
        F32x16::sub_v(self, rhs)
    }
}

impl std::ops::Mul for F32x16 {
    type Output = F32x16;
    #[inline(always)]
    fn mul(self, rhs: F32x16) -> F32x16 {
        F32x16::mul_v(self, rhs)
    }
}

/// Serialise all pending streaming (non-temporal) stores. Must be executed
/// before data written with [`F32x16::store_nt`] is read by *another*
/// thread; the paper's fork–join barrier provides this point naturally and
/// calls this.
#[inline(always)]
pub fn sfence() {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: `sfence` is always available on x86-64.
    unsafe {
        std::arch::x86_64::_mm_sfence()
    }
    #[cfg(not(target_arch = "x86_64"))]
    std::sync::atomic::fence(std::sync::atomic::Ordering::SeqCst);
}

/// Prefetch the cache line containing `p` into L1 (hint T0).
///
/// # Safety
/// Prefetch never faults, but callers should pass addresses derived from
/// real allocations so provenance stays intact.
#[inline(always)]
pub unsafe fn prefetch_t0(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8);
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetch the cache line containing `p` into L2 (hint T1).
///
/// # Safety
/// See [`prefetch_t0`].
#[inline(always)]
pub unsafe fn prefetch_t1(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T1 }>(p as *const i8);
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetch every cache line of the `bytes`-long span starting at `p`
/// into L2 (hint T1). Used by the superblock pipeline to pull the next
/// superblock's input tiles toward the core while the current one is
/// still being computed.
///
/// # Safety
/// See [`prefetch_t0`]; the span should lie within one real allocation.
#[inline]
pub unsafe fn prefetch_span_t1(p: *const u8, bytes: usize) {
    let mut off = 0;
    while off < bytes {
        prefetch_t1(p.add(off));
        off += CACHE_LINE;
    }
}

/// True if the *running* CPU supports AVX-512F (used by `wino-jit` to decide
/// which encoding to emit, independent of how this crate was compiled).
pub fn cpu_has_avx512f() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// True if the running CPU supports AVX2 and FMA.
pub fn cpu_has_avx2_fma() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> [f32; 16] {
        std::array::from_fn(|i| i as f32 - 7.5)
    }

    #[test]
    fn splat_and_to_array() {
        let v = F32x16::splat(3.25);
        assert_eq!(v.to_array(), [3.25f32; 16]);
        assert_eq!(F32x16::zero().to_array(), [0.0f32; 16]);
    }

    #[test]
    fn load_store_roundtrip() {
        let a = seq();
        let v = F32x16::from_slice(&a);
        let mut out = [0.0f32; 16];
        v.write_to_slice(&mut out);
        assert_eq!(a, out);
    }

    #[test]
    fn arithmetic_matches_scalar() {
        let a = seq();
        let b: [f32; 16] = std::array::from_fn(|i| (i as f32) * 0.5 + 1.0);
        let va = F32x16::from_slice(&a);
        let vb = F32x16::from_slice(&b);
        let add = (va + vb).to_array();
        let sub = (va - vb).to_array();
        let mul = (va * vb).to_array();
        for i in 0..16 {
            assert_eq!(add[i], a[i] + b[i]);
            assert_eq!(sub[i], a[i] - b[i]);
            assert_eq!(mul[i], a[i] * b[i]);
        }
    }

    #[test]
    fn mul_add_matches_scalar() {
        let a = seq();
        let b: [f32; 16] = std::array::from_fn(|i| 0.25 * i as f32);
        let c: [f32; 16] = std::array::from_fn(|i| 10.0 - i as f32);
        let r = F32x16::from_slice(&a)
            .mul_add(F32x16::from_slice(&b), F32x16::from_slice(&c))
            .to_array();
        for i in 0..16 {
            let want = a[i].mul_add(b[i], c[i]);
            // The scalar backend may compute mul+add separately; both are
            // acceptable roundings.
            let alt = a[i] * b[i] + c[i];
            assert!(r[i] == want || r[i] == alt, "lane {i}: {} vs {} / {}", r[i], want, alt);
        }
    }

    #[test]
    fn streaming_store_writes_data() {
        let mut buf = AlignedVec::zeroed(32);
        let v = F32x16::splat(7.0);
        // SAFETY: buffer is 64-byte aligned and long enough.
        unsafe {
            v.store_nt(buf.as_mut_ptr());
            v.store_nt(buf.as_mut_ptr().add(16));
        }
        sfence();
        assert!(buf.iter().all(|&x| x == 7.0));
    }

    #[test]
    fn unaligned_load_store() {
        let mut raw = vec![0.0f32; 33];
        for (i, x) in raw.iter_mut().enumerate() {
            *x = i as f32;
        }
        // Deliberately offset by one float (4 bytes) — must still work.
        // SAFETY: indices 1..17 are in bounds of the 33-float buffer.
        let v = unsafe { F32x16::load(raw.as_ptr().add(1)) };
        assert_eq!(v.to_array()[0], 1.0);
        assert_eq!(v.to_array()[15], 16.0);
        // SAFETY: indices 17..33 are in bounds of the 33-float buffer.
        unsafe { v.store(raw.as_mut_ptr().add(17)) };
        assert_eq!(raw[17], 1.0);
        assert_eq!(raw[32], 16.0);
    }

    #[test]
    fn prefetch_is_harmless() {
        let data = [0u8; 128];
        // SAFETY: prefetch is a hint; it never faults, even on null.
        unsafe {
            prefetch_t0(data.as_ptr());
            prefetch_t1(data.as_ptr().add(64));
            // Prefetching invalid addresses must not fault either.
            prefetch_t0(std::ptr::null());
        }
    }

    #[test]
    fn span_prefetch_is_harmless() {
        let data = [0u8; 4096];
        // SAFETY: prefetch is a hint; it never faults.
        unsafe {
            prefetch_span_t1(data.as_ptr(), data.len());
            prefetch_span_t1(data.as_ptr(), 0);
            prefetch_span_t1(data.as_ptr(), 1); // sub-line span → one hint
        }
    }

    #[test]
    fn backend_is_reported() {
        let n = backend_name();
        assert!(["avx512", "avx2", "scalar"].contains(&n), "{n}");
    }

    #[test]
    fn feature_detection_is_consistent_with_backend() {
        if backend_name() == "avx512" {
            assert!(cpu_has_avx512f());
        }
        if backend_name() == "avx2" {
            assert!(cpu_has_avx2_fma());
        }
    }
}
