//! Deterministic allocation-failure injection (`fault-inject` builds).
//!
//! The OOM analogue of `wino-sched`'s worker-fault hooks: tests arm a
//! failure mode and every subsequent `AlignedVec::try_*` allocation
//! consults [`should_fail`] before touching the system allocator. Three
//! modes cover the interesting failure geometries:
//!
//! * **after-bytes** — succeed until a cumulative byte budget is spent,
//!   then fail (models a shrinking headroom: big plan-time buffers die
//!   first, small ones still fit);
//! * **every-kth** — fail every k-th injectable allocation (models
//!   intermittent pressure; `k = 1` fails everything);
//! * **random** — fail each allocation with probability `1/denom` from a
//!   seeded xorshift stream (deterministic given the seed, so a failing
//!   battery run reproduces byte-for-byte).
//!
//! Every mode carries a shot count: each injected failure consumes one
//! shot and the injector disarms when they run out, so a test can prove
//! "exactly n failures deep" ladder behaviour. Only the `try_*`
//! constructors are injectable — the infallible wrappers bypass the
//! injector by design, so arming faults can never abort the process.

use std::sync::Mutex;

#[derive(Clone, Copy, Debug)]
enum Mode {
    /// Fail once `seen_bytes` would exceed the budget.
    AfterBytes { budget: u64 },
    /// Fail when `seen_calls % k == 0` (1-based call index).
    EveryKth { k: u64 },
    /// Fail when the seeded stream rolls a 0 out of `denom`.
    Random { state: u64, denom: u64 },
}

#[derive(Clone, Copy, Debug)]
struct State {
    mode: Option<Mode>,
    /// Remaining injected failures before the injector disarms.
    shots: u32,
    /// Bytes successfully admitted since arming (after-bytes mode).
    seen_bytes: u64,
    /// Injectable allocations observed since arming (every-kth mode).
    seen_calls: u64,
    /// Total failures injected since the last [`reset`].
    injected: u64,
}

const IDLE: State = State { mode: None, shots: 0, seen_bytes: 0, seen_calls: 0, injected: 0 };

static STATE: Mutex<State> = Mutex::new(IDLE);

fn arm(mode: Mode, shots: u32) {
    let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
    *s = State { mode: Some(mode), shots, ..IDLE };
}

/// Fail every injectable allocation once `budget` cumulative bytes have
/// been admitted, for up to `shots` failures.
pub fn arm_fail_after_bytes(budget: u64, shots: u32) {
    arm(Mode::AfterBytes { budget }, shots);
}

/// Fail every `k`-th injectable allocation (1-based; `k = 1` fails every
/// one), for up to `shots` failures.
pub fn arm_fail_every(k: u64, shots: u32) {
    arm(Mode::EveryKth { k: k.max(1) }, shots);
}

/// Fail each injectable allocation with probability `1/denom`, drawn
/// from a xorshift stream seeded with `seed`, for up to `shots`
/// failures. Deterministic for a fixed seed and allocation order.
pub fn arm_fail_random(seed: u64, denom: u64, shots: u32) {
    arm(Mode::Random { state: seed.max(1), denom: denom.max(1) }, shots);
}

/// Disarm the injector and zero its tallies.
pub fn reset() {
    *STATE.lock().unwrap_or_else(|e| e.into_inner()) = IDLE;
}

/// Failures injected since the last [`reset`] (survives disarming, so a
/// test can confirm how many shots actually landed).
pub fn injected_failures() -> u64 {
    STATE.lock().unwrap_or_else(|e| e.into_inner()).injected
}

/// Consulted by `AlignedVec::try_*` for every injectable allocation of
/// `bytes`. Returns true when this allocation must fail.
#[doc(hidden)]
pub fn should_fail(bytes: usize) -> bool {
    let mut s = STATE.lock().unwrap_or_else(|e| e.into_inner());
    let Some(mode) = s.mode else { return false };
    if s.shots == 0 {
        s.mode = None;
        return false;
    }
    s.seen_calls += 1;
    let fail = match mode {
        Mode::AfterBytes { budget } => s.seen_bytes + bytes as u64 > budget,
        Mode::EveryKth { k } => s.seen_calls.is_multiple_of(k),
        Mode::Random { mut state, denom } => {
            // xorshift64: deterministic per-seed stream.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            s.mode = Some(Mode::Random { state, denom });
            state % denom == 0
        }
    };
    if fail {
        s.shots -= 1;
        s.injected += 1;
        if s.shots == 0 {
            s.mode = None;
        }
    } else {
        s.seen_bytes += bytes as u64;
    }
    fail
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AlignedVec;

    // The injector is process-global; tests that arm it must serialise.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn after_bytes_budget_fails_past_the_line() {
        let _g = lock();
        reset();
        arm_fail_after_bytes(8192, u32::MAX);
        assert!(AlignedVec::try_zeroed(1024).is_ok()); // 4096 bytes in
        assert!(AlignedVec::try_zeroed(1024).is_ok()); // 8192 bytes in
        let e = AlignedVec::try_zeroed(16).unwrap_err();
        assert!(e.injected);
        assert_eq!(e.bytes, 64);
        assert_eq!(injected_failures(), 1);
        reset();
        assert!(AlignedVec::try_zeroed(16).is_ok());
    }

    #[test]
    fn every_kth_fails_on_schedule_and_shots_disarm() {
        let _g = lock();
        reset();
        arm_fail_every(3, 2);
        let outcomes: Vec<bool> =
            (0..9).map(|_| AlignedVec::try_zeroed(8).is_ok()).collect();
        // Calls 3 and 6 fail (two shots), then the injector disarms.
        assert_eq!(outcomes, [true, true, false, true, true, false, true, true, true]);
        assert_eq!(injected_failures(), 2);
        reset();
    }

    #[test]
    fn random_mode_is_deterministic_per_seed() {
        let _g = lock();
        let run = |seed| -> Vec<bool> {
            reset();
            arm_fail_random(seed, 3, u32::MAX);
            let v = (0..32).map(|_| AlignedVec::try_zeroed(8).is_ok()).collect();
            reset();
            v
        };
        assert_eq!(run(42), run(42));
        assert!(run(42).iter().any(|ok| !ok), "denom 3 over 32 draws should fail sometimes");
        assert!(run(42).iter().any(|ok| *ok));
    }

    #[test]
    fn infallible_constructors_ignore_the_injector() {
        let _g = lock();
        reset();
        arm_fail_every(1, u32::MAX);
        // Would abort if the injector fired here.
        let v = AlignedVec::zeroed(64);
        assert_eq!(v.len(), 64);
        let w = AlignedVec::from_slice(&[1.0, 2.0]);
        assert_eq!(w.as_slice(), &[1.0, 2.0]);
        reset();
    }
}
