//! AVX-512F backend: one 512-bit register per vector — the paper's native
//! configuration (KNL, §2.1).

// Rationale: on toolchains where value-only vector intrinsics are safe
// (target-feature 1.1), the wrapping `unsafe` blocks below are redundant
// but kept for portability to older rustc versions.
#![allow(unused_unsafe)]

use std::arch::x86_64::*;

pub(crate) const NAME: &str = "avx512";

/// 16 packed `f32` lanes backed by one `__m512`.
#[derive(Clone, Copy)]
#[repr(transparent)]
pub struct F32x16(__m512);

impl F32x16 {
    /// All-zero vector.
    #[inline(always)]
    pub fn zero() -> Self {
        // SAFETY: avx512f statically enabled for this module to compile.
        unsafe { F32x16(_mm512_setzero_ps()) }
    }

    /// Broadcast `x` to all lanes.
    #[inline(always)]
    pub fn splat(x: f32) -> Self {
        // SAFETY: register-only intrinsic; avx512f statically enabled for
        // this module to compile.
        unsafe { F32x16(_mm512_set1_ps(x)) }
    }

    /// Unaligned load of 16 floats.
    ///
    /// # Safety
    /// `p` must be valid for reading 64 bytes.
    #[inline(always)]
    pub unsafe fn load(p: *const f32) -> Self {
        F32x16(_mm512_loadu_ps(p))
    }

    /// Unaligned store of 16 floats.
    ///
    /// # Safety
    /// `p` must be valid for writing 64 bytes.
    #[inline(always)]
    pub unsafe fn store(self, p: *mut f32) {
        _mm512_storeu_ps(p, self.0);
    }

    /// Non-temporal (streaming) store: writes bypass the cache hierarchy.
    /// Use for data not needed until a later stage (§4.2.1/§4.3.1); pair
    /// with [`crate::sfence`] before cross-thread visibility is required.
    ///
    /// # Safety
    /// `p` must be valid for writing 64 bytes and 64-byte aligned.
    #[inline(always)]
    pub unsafe fn store_nt(self, p: *mut f32) {
        debug_assert_eq!(p as usize % 64, 0, "streaming store requires 64-byte alignment");
        _mm512_stream_ps(p, self.0);
    }

    #[inline(always)]
    pub(crate) fn add_v(a: Self, b: Self) -> Self {
        // SAFETY: register-only intrinsic (see `zero`).
        unsafe { F32x16(_mm512_add_ps(a.0, b.0)) }
    }

    #[inline(always)]
    pub(crate) fn sub_v(a: Self, b: Self) -> Self {
        // SAFETY: register-only intrinsic (see `zero`).
        unsafe { F32x16(_mm512_sub_ps(a.0, b.0)) }
    }

    #[inline(always)]
    pub(crate) fn mul_v(a: Self, b: Self) -> Self {
        // SAFETY: register-only intrinsic (see `zero`).
        unsafe { F32x16(_mm512_mul_ps(a.0, b.0)) }
    }

    /// Fused multiply-add: `self * b + c` in one rounding.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        // SAFETY: register-only intrinsic (see `zero`).
        unsafe { F32x16(_mm512_fmadd_ps(self.0, b.0, c.0)) }
    }

    /// Copy lanes out into an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 16] {
        let mut out = [0.0f32; 16];
        // SAFETY: destination is 64 writable bytes.
        unsafe { _mm512_storeu_ps(out.as_mut_ptr(), self.0) };
        out
    }
}
