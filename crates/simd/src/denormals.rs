//! Denormal (subnormal) control: FTZ/DAZ scoped guards.
//!
//! Subnormal f32 operands put x86 cores into microcode assists — each
//! affected FMA can cost 50–100× its normal latency, so a single run of
//! denormals in a transformed tensor (e.g. deep-layer activations
//! underflowing) can silently destroy the throughput the whole pipeline
//! is built for. The standard DNN practice is to set the SSE control
//! register's **FTZ** (flush-to-zero, MXCSR bit 15) and **DAZ**
//! (denormals-are-zero, bit 6) flags: subnormal results and operands are
//! treated as 0.0. The numeric effect is confined to magnitudes below
//! ~1.2e-38, far under any bound the accuracy subsystem tracks.
//!
//! [`FlushDenormals`] is an RAII scope: engaging saves the current MXCSR
//! and sets FTZ|DAZ, dropping restores the saved word exactly, so nested
//! or already-engaged states round-trip. **MXCSR is per-thread state**:
//! the guard affects only the thread that created it (and is deliberately
//! `!Send` so it cannot be dropped on a different thread). The execution
//! layer engages it on the coordinating thread around layer execution;
//! pool workers inherit whatever their OS thread has — a serial executor
//! therefore gives full coverage, a pool covers the coordinator's own
//! share.
//!
//! On non-x86-64 targets the guard is a no-op with the same API.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// FTZ (bit 15) | DAZ (bit 6) of MXCSR.
#[cfg(target_arch = "x86_64")]
const FTZ_DAZ: u32 = 0x8000 | 0x0040;

/// How many times a guard has been engaged, process-wide (observability:
/// surfaces in perf reports and lets tests prove the guard ran).
static ENGAGED: AtomicU64 = AtomicU64::new(0);

/// Read the calling thread's MXCSR. (`_mm_getcsr` is deprecated in favour
/// of inline assembly, so this issues `stmxcsr` directly.)
///
/// # Safety
/// Always safe on x86-64: `stmxcsr` stores the per-thread control word to
/// the given stack slot and has no other effects.
#[cfg(target_arch = "x86_64")]
unsafe fn read_mxcsr() -> u32 {
    let mut csr: u32 = 0;
    std::arch::asm!("stmxcsr [{}]", in(reg) &mut csr, options(nostack, preserves_flags));
    csr
}

/// Write the calling thread's MXCSR via `ldmxcsr`.
///
/// # Safety
/// `csr` must be a value previously read from MXCSR, possibly with FTZ/DAZ
/// bits added — reserved bits set by software would fault (#GP).
#[cfg(target_arch = "x86_64")]
unsafe fn write_mxcsr(csr: u32) {
    std::arch::asm!("ldmxcsr [{}]", in(reg) &csr, options(nostack, readonly, preserves_flags));
}

/// Scoped flush-to-zero / denormals-are-zero mode for the current thread.
/// See the module docs for semantics and the per-thread caveat.
pub struct FlushDenormals {
    #[cfg(target_arch = "x86_64")]
    saved: u32,
    /// MXCSR is per-thread: keep the guard `!Send`/`!Sync` so the restore
    /// in `drop` runs on the thread that engaged it.
    _thread_bound: PhantomData<*const ()>,
}

impl FlushDenormals {
    /// Engage FTZ|DAZ on the calling thread, returning the guard that
    /// restores the previous MXCSR state on drop.
    pub fn engage() -> FlushDenormals {
        ENGAGED.fetch_add(1, Ordering::Relaxed);
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: reads/writes only the calling thread's MXCSR.
            // Setting FTZ|DAZ on a hardware-read word cannot fault and
            // changes only how this thread's SSE/AVX ops treat
            // subnormals; the saved word is restored verbatim on drop,
            // and the guard is !Send so drop runs on this same thread.
            let saved = unsafe { read_mxcsr() };
            // SAFETY: as above — FTZ|DAZ are architected (non-reserved)
            // bits of a value just read from MXCSR.
            unsafe { write_mxcsr(saved | FTZ_DAZ) };
            FlushDenormals { saved, _thread_bound: PhantomData }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            FlushDenormals { _thread_bound: PhantomData }
        }
    }

    /// Whether the calling thread currently flushes denormals (always
    /// `false` on targets without MXCSR).
    pub fn active() -> bool {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: reading the calling thread's MXCSR has no effects.
            let csr = unsafe { read_mxcsr() };
            csr & FTZ_DAZ == FTZ_DAZ
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    }
}

impl Drop for FlushDenormals {
    fn drop(&mut self) {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: restores the MXCSR word saved by `engage` on this same
        // thread (the guard is !Send); writing a previously read MXCSR
        // value is always valid.
        unsafe {
            write_mxcsr(self.saved)
        };
    }
}

/// Process-wide count of [`FlushDenormals::engage`] calls.
pub fn engaged_count() -> u64 {
    ENGAGED.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_engages_and_restores() {
        let before = ENGAGED.load(Ordering::Relaxed);
        {
            let _g = FlushDenormals::engage();
            assert_eq!(FlushDenormals::active(), cfg!(target_arch = "x86_64"));
            assert!(engaged_count() > before);
        }
        // Restored: on x86 the test-runner thread starts with denormals
        // enabled, so `active` must be false again after the scope.
        #[cfg(target_arch = "x86_64")]
        assert!(!FlushDenormals::active());
    }

    #[test]
    fn nested_guards_round_trip() {
        let _outer = FlushDenormals::engage();
        {
            let _inner = FlushDenormals::engage();
            assert_eq!(FlushDenormals::active(), cfg!(target_arch = "x86_64"));
        }
        // The inner drop restores the *engaged* state the outer guard set.
        assert_eq!(FlushDenormals::active(), cfg!(target_arch = "x86_64"));
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn subnormal_arithmetic_flushes_to_zero() {
        let tiny = std::hint::black_box(1.0e-40f32); // subnormal
        let scale = std::hint::black_box(1.0f32);
        let unflushed = tiny * scale;
        assert!(unflushed != 0.0, "without FTZ the product stays subnormal");
        let _g = FlushDenormals::engage();
        let flushed = std::hint::black_box(tiny) * std::hint::black_box(scale);
        assert_eq!(flushed, 0.0, "DAZ zeroes the subnormal operand");
    }
}
