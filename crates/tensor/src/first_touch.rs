//! First-touch buffer placement for sharded execution.
//!
//! Linux commits the physical page backing an allocation on the NUMA node
//! of the thread that first *writes* it. `AlignedVec::zeroed` gets
//! copy-on-write zero pages, so the commit happens lazily — and with a
//! serial allocator every page lands on whichever node the allocating
//! thread ran on, putting a remote-memory penalty on every other domain's
//! accesses for the buffer's whole lifetime. [`zeroed_first_touch`]
//! instead allocates uninitialised and zeroes the buffer *through the
//! executor that will later work on it*: with a
//! [`ShardedPool`](../../wino_sched/shard/index.html) each shard zeroes
//! (and therefore places) the same contiguous region of the buffer that
//! the GCD partitioner will hand it during execution, because both walk
//! the identical `GridPartition` of the identical flat range.
//!
//! On a single-domain machine this degenerates to a parallel `memset` —
//! harmless — and if the executor fails mid-zero (a panicked or degraded
//! pool) the buffer is serially re-zeroed, so the result is always fully
//! initialised regardless of executor health.

use wino_sched::Executor;
use wino_simd::{AlignedVec, AllocError};

/// Floats per first-touch grid cell: 64 Ki floats = 256 KiB, a few pages
/// past any huge-page boundary so placement tracks the partition at page
/// granularity without making the fork–join per-task overhead visible.
const CHUNK: usize = 1 << 16;

/// Shared raw pointer for the disjoint-range zeroing tasks.
struct MutPtr(*mut f32);
// SAFETY: tasks write strictly disjoint [i*CHUNK, i*CHUNK+n) ranges (one
// per flat grid index, each index executed exactly once per the Executor
// contract), and the executor's join orders all writes before the return.
unsafe impl Sync for MutPtr {}

/// Allocate `len` zeroed floats, 64-byte aligned, with each region of the
/// buffer first written — and therefore NUMA-placed — by the executor
/// thread that the partitioner will steer at the same region during
/// later `run_grid` calls over the same executor.
pub fn zeroed_first_touch(len: usize, exec: &dyn Executor) -> AlignedVec {
    if len == 0 || exec.threads() <= 1 {
        return AlignedVec::zeroed(len);
    }
    // SAFETY: every element is written below before the buffer is
    // returned: either by the grid tasks covering [0, len) exactly, or by
    // the serial `fill_zero` fallback when the grid reports any failure.
    let v = unsafe { AlignedVec::uninit(len) };
    touch(v, len, exec)
}

/// Fallible [`zeroed_first_touch`]: a typed [`AllocError`] instead of an
/// abort when the allocator refuses the buffer.
pub fn try_zeroed_first_touch(len: usize, exec: &dyn Executor) -> Result<AlignedVec, AllocError> {
    if len == 0 || exec.threads() <= 1 {
        return AlignedVec::try_zeroed(len);
    }
    // SAFETY: `touch` writes every element (grid tasks covering [0, len)
    // exactly, or the serial re-zero fallback) before returning.
    let v = unsafe { AlignedVec::try_uninit(len) }?;
    Ok(touch(v, len, exec))
}

/// Zero `v` through `exec` so each region is first written by the thread
/// the partitioner will steer at it; serial re-zero on executor failure.
fn touch(mut v: AlignedVec, len: usize, exec: &dyn Executor) -> AlignedVec {
    let ptr = MutPtr(v.as_mut_ptr());
    // Borrow the Sync wrapper (not its raw-pointer field) so the closure's
    // capture is `&MutPtr`, which is shareable across the pool's threads.
    let ptr = &ptr;
    let cells = len.div_ceil(CHUNK);
    let complete = exec
        .run_grid(&[cells], &|_slot, i| {
            let lo = i * CHUNK;
            let n = CHUNK.min(len - lo);
            // SAFETY: `lo < len` (i < cells) and `lo + n <= len`; ranges
            // of distinct flat indices are disjoint (see MutPtr).
            unsafe { std::ptr::write_bytes(ptr.0.add(lo), 0, n) };
        })
        .is_ok();
    if !complete {
        // A panicked or degraded executor may have skipped regions;
        // re-zero everything serially. Placement is lost, correctness not.
        v.fill_zero();
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_sched::{SerialExecutor, StaticExecutor};

    #[test]
    fn first_touch_buffer_is_fully_zeroed_and_aligned() {
        let exec = StaticExecutor::new(3);
        for len in [0, 1, CHUNK - 1, CHUNK, CHUNK + 1, 3 * CHUNK + 17] {
            let v = zeroed_first_touch(len, &exec);
            assert_eq!(v.len(), len);
            assert!(v.iter().all(|&x| x == 0.0), "len {len}");
            if len > 0 {
                assert_eq!(v.as_ptr() as usize % 64, 0);
            }
        }
    }

    #[test]
    fn serial_executor_takes_the_plain_path() {
        let v = zeroed_first_touch(1000, &SerialExecutor);
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn failing_executor_still_yields_zeroed_buffer() {
        // An executor whose tasks panic: run_grid errs, the serial
        // fallback must still hand back a fully zeroed buffer.
        struct Panicky(StaticExecutor);
        impl Executor for Panicky {
            fn run_grid(
                &self,
                dims: &[usize],
                task: &(dyn Fn(usize, usize) + Sync),
            ) -> Result<(), wino_sched::PoolError> {
                self.0.run_grid(dims, &|slot, i| {
                    if i == 0 {
                        panic!("injected");
                    }
                    task(slot, i);
                })
            }
            fn threads(&self) -> usize {
                self.0.threads()
            }
            fn name(&self) -> &'static str {
                "panicky"
            }
        }
        let v = zeroed_first_touch(4 * CHUNK, &Panicky(StaticExecutor::new(2)));
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
