//! Convolution-layer geometry and overlap-add tiling (§3.1–§3.2).

use crate::{div_ceil, unflatten, ShapeError};

/// The shape of one convolutional layer (Eqn. 6): a batch of `B` tuples of
/// `C` N-D images convolved with `C × C'` kernels under zero padding,
/// stride 1 (Winograd convolution is a stride-1 algorithm).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvShape {
    pub batch: usize,
    pub in_channels: usize,
    pub out_channels: usize,
    /// Input spatial extent per dimension (e.g. `[H, W]` or `[D, H, W]`).
    pub image_dims: Vec<usize>,
    /// Kernel extent per dimension.
    pub kernel_dims: Vec<usize>,
    /// Zero padding per dimension (applied on both sides).
    pub padding: Vec<usize>,
}

impl ConvShape {
    pub fn new(
        batch: usize,
        in_channels: usize,
        out_channels: usize,
        image_dims: &[usize],
        kernel_dims: &[usize],
        padding: &[usize],
    ) -> Result<Self, ShapeError> {
        if kernel_dims.len() != image_dims.len() {
            return Err(ShapeError::RankMismatch {
                expected: image_dims.len(),
                got: kernel_dims.len(),
            });
        }
        if padding.len() != image_dims.len() {
            return Err(ShapeError::RankMismatch {
                expected: image_dims.len(),
                got: padding.len(),
            });
        }
        if batch == 0
            || in_channels == 0
            || out_channels == 0
            || image_dims.contains(&0)
            || kernel_dims.contains(&0)
        {
            return Err(ShapeError::ZeroDim);
        }
        for d in 0..image_dims.len() {
            if kernel_dims[d] > image_dims[d] + 2 * padding[d] {
                return Err(ShapeError::KernelTooLarge);
            }
        }
        Ok(ConvShape {
            batch,
            in_channels,
            out_channels,
            image_dims: image_dims.to_vec(),
            kernel_dims: kernel_dims.to_vec(),
            padding: padding.to_vec(),
        })
    }

    /// Number of spatial dimensions N.
    pub fn rank(&self) -> usize {
        self.image_dims.len()
    }

    /// Output extent per dimension: `in + 2·pad − r + 1`.
    pub fn out_dims(&self) -> Vec<usize> {
        (0..self.rank())
            .map(|d| self.image_dims[d] + 2 * self.padding[d] - self.kernel_dims[d] + 1)
            .collect()
    }

    /// Multiply–add count of the direct method:
    /// `B · C · C' · prod(out) · prod(r)`.
    pub fn direct_macs(&self) -> u128 {
        let out: u128 = self.out_dims().iter().map(|&d| d as u128).product();
        let ker: u128 = self.kernel_dims.iter().map(|&d| d as u128).product();
        self.batch as u128 * self.in_channels as u128 * self.out_channels as u128 * out * ker
    }

    /// FLOP count of the direct method (2 per MAC) — the normaliser used in
    /// "effective GFLOP/s" reporting.
    pub fn direct_flops(&self) -> u128 {
        2 * self.direct_macs()
    }
}

/// Per-dimension stride and dilation plus a channel group count — the
/// scenario axes of a general convolution on top of a stride-1
/// [`ConvShape`]. The identity geometry (all ones) is the plain Winograd
/// case; everything else is routed by the dispatch layer in `wino-conv`:
/// stride 2 through the sub-lattice (polyphase) decomposition, groups by
/// blocking the C/C' loops, dilation through the im2col baseline.
///
/// Output extents under a geometry follow the standard formula
///
/// ```text
/// out_d = ⌊(in_d + 2·pad_d − ((r_d − 1)·dilation_d + 1)) / stride_d⌋ + 1
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConvGeometry {
    /// Output sampling step per dimension (≥ 1).
    pub stride: Vec<usize>,
    /// Kernel tap spacing per dimension (≥ 1).
    pub dilation: Vec<usize>,
    /// Channel groups: input channels `[g·C/G, (g+1)·C/G)` feed only
    /// output channels `[g·C'/G, (g+1)·C'/G)`. `groups == C` is depthwise.
    pub groups: usize,
}

impl ConvGeometry {
    /// The stride-1/dilation-1/ungrouped geometry of the given rank.
    pub fn identity(rank: usize) -> ConvGeometry {
        ConvGeometry { stride: vec![1; rank], dilation: vec![1; rank], groups: 1 }
    }

    /// True when this is the plain stride-1/dilation-1/ungrouped case.
    pub fn is_identity(&self) -> bool {
        self.groups == 1
            && self.stride.iter().all(|&s| s == 1)
            && self.dilation.iter().all(|&d| d == 1)
    }

    /// Dilated kernel extent along dimension `d`: `(r − 1)·dilation + 1`.
    pub fn effective_kernel(&self, kernel_dims: &[usize], d: usize) -> usize {
        (kernel_dims[d] - 1) * self.dilation[d] + 1
    }

    /// Check this geometry against a layer shape. Failures here mean the
    /// layer is *unrepresentable* (no backend could run it), as opposed to
    /// merely outside what Winograd supports:
    /// zero stride/dilation/groups, a rank mismatch, a group count that
    /// does not divide C or C', or a dilated kernel wider than the padded
    /// image.
    pub fn validate(&self, shape: &ConvShape) -> Result<(), ShapeError> {
        let rank = shape.rank();
        if self.stride.len() != rank {
            return Err(ShapeError::RankMismatch { expected: rank, got: self.stride.len() });
        }
        if self.dilation.len() != rank {
            return Err(ShapeError::RankMismatch { expected: rank, got: self.dilation.len() });
        }
        if self.stride.contains(&0) {
            return Err(ShapeError::BadGeometry { what: "stride must be at least 1" });
        }
        if self.dilation.contains(&0) {
            return Err(ShapeError::BadGeometry { what: "dilation must be at least 1" });
        }
        if self.groups == 0 {
            return Err(ShapeError::BadGeometry { what: "groups must be at least 1" });
        }
        if !shape.in_channels.is_multiple_of(self.groups) {
            return Err(ShapeError::BadGroups { channels: shape.in_channels, groups: self.groups });
        }
        if !shape.out_channels.is_multiple_of(self.groups) {
            return Err(ShapeError::BadGroups {
                channels: shape.out_channels,
                groups: self.groups,
            });
        }
        for d in 0..rank {
            if self.effective_kernel(&shape.kernel_dims, d)
                > shape.image_dims[d] + 2 * shape.padding[d]
            {
                return Err(ShapeError::BadGeometry {
                    what: "dilated kernel exceeds padded image extent",
                });
            }
        }
        Ok(())
    }

    /// Output extent per dimension under this geometry (validates first).
    pub fn out_dims(&self, shape: &ConvShape) -> Result<Vec<usize>, ShapeError> {
        self.validate(shape)?;
        Ok((0..shape.rank())
            .map(|d| {
                let span = shape.image_dims[d] + 2 * shape.padding[d]
                    - self.effective_kernel(&shape.kernel_dims, d);
                span / self.stride[d] + 1
            })
            .collect())
    }

    /// Multiply–add count of the direct method under this geometry:
    /// `B · (C/G) · C' · ∏out · ∏r` (each output channel sees only its
    /// group's input channels).
    pub fn direct_macs(&self, shape: &ConvShape) -> Result<u128, ShapeError> {
        let out: u128 = self.out_dims(shape)?.iter().map(|&d| d as u128).product();
        let ker: u128 = shape.kernel_dims.iter().map(|&d| d as u128).product();
        Ok(shape.batch as u128
            * (shape.in_channels / self.groups) as u128
            * shape.out_channels as u128
            * out
            * ker)
    }
}

/// The overlap-add tile decomposition for one layer and one choice of
/// output-tile sizes `m` (§3.2): input tiles of size
/// `T_d = m_d + r_d − 1` overlapping by `r_d − 1`, `N_d = ⌈out_d/m_d⌉`
/// tiles per dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TileGrid {
    /// Output tile size per dimension.
    pub m: Vec<usize>,
    /// Kernel size per dimension.
    pub r: Vec<usize>,
    /// Input tile size per dimension (`α_d = m_d + r_d − 1`).
    pub tile_dims: Vec<usize>,
    /// Tiles per dimension (`N_d`).
    pub counts: Vec<usize>,
    /// Padding per dimension (start side).
    pub padding: Vec<usize>,
    /// Output extent per dimension.
    pub out_dims: Vec<usize>,
    /// Input extent per dimension.
    pub in_dims: Vec<usize>,
}

impl TileGrid {
    pub fn new(shape: &ConvShape, m: &[usize]) -> Result<TileGrid, ShapeError> {
        if m.len() != shape.rank() {
            return Err(ShapeError::RankMismatch { expected: shape.rank(), got: m.len() });
        }
        if m.contains(&0) {
            return Err(ShapeError::ZeroDim);
        }
        let out_dims = shape.out_dims();
        let counts: Vec<usize> = out_dims.iter().zip(m).map(|(&o, &mm)| div_ceil(o, mm)).collect();
        let tile_dims: Vec<usize> =
            m.iter().zip(&shape.kernel_dims).map(|(&mm, &rr)| mm + rr - 1).collect();
        Ok(TileGrid {
            m: m.to_vec(),
            r: shape.kernel_dims.clone(),
            tile_dims,
            counts,
            padding: shape.padding.clone(),
            out_dims,
            in_dims: shape.image_dims.clone(),
        })
    }

    /// Total number of tiles per (batch, channel) image: `N = ∏ N_d`.
    pub fn total_tiles(&self) -> usize {
        self.counts.iter().product()
    }

    /// Number of elements per tile: `T = ∏ T_d`.
    pub fn tile_volume(&self) -> usize {
        self.tile_dims.iter().product()
    }

    /// Output elements per tile: `∏ m_d`.
    pub fn out_tile_volume(&self) -> usize {
        self.m.iter().product()
    }

    /// Multi-index of tile `flat` (row-major over `counts`).
    pub fn tile_coords(&self, flat: usize) -> Vec<usize> {
        unflatten(flat, &self.counts)
    }

    /// Input-space origin (top-left-front corner) of the given tile, in
    /// *unpadded* input coordinates — may be negative (reads the zero
    /// padding region).
    pub fn input_origin(&self, tile_coords: &[usize]) -> Vec<isize> {
        (0..self.m.len())
            .map(|d| (tile_coords[d] * self.m[d]) as isize - self.padding[d] as isize)
            .collect()
    }

    /// Output-space origin of the given tile.
    pub fn output_origin(&self, tile_coords: &[usize]) -> Vec<usize> {
        (0..self.m.len()).map(|d| tile_coords[d] * self.m[d]).collect()
    }

    /// How many output elements of the tile are real (not ceil-division
    /// overhang) along each dimension.
    pub fn output_extent(&self, tile_coords: &[usize]) -> Vec<usize> {
        (0..self.m.len())
            .map(|d| {
                let start = tile_coords[d] * self.m[d];
                self.m[d].min(self.out_dims[d] - start)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vgg22() -> ConvShape {
        // VGG 2.2 from Table 2: B=64, C=C'=128, 112², pad 1, kernel 3².
        ConvShape::new(64, 128, 128, &[112, 112], &[3, 3], &[1, 1]).unwrap()
    }

    #[test]
    fn out_dims_with_padding() {
        let s = vgg22();
        assert_eq!(s.out_dims(), vec![112, 112]); // "same" conv
        let s2 = ConvShape::new(1, 64, 64, &[640, 640], &[3, 3], &[0, 0]).unwrap();
        assert_eq!(s2.out_dims(), vec![638, 638]); // FusionNet 1.2: valid conv
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            ConvShape::new(1, 16, 16, &[8, 8], &[3], &[0, 0]),
            Err(ShapeError::RankMismatch { .. })
        ));
        assert!(matches!(
            ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[0]),
            Err(ShapeError::RankMismatch { .. })
        ));
        assert!(matches!(
            ConvShape::new(1, 16, 16, &[2, 2], &[5, 5], &[0, 0]),
            Err(ShapeError::KernelTooLarge)
        ));
        assert!(matches!(
            ConvShape::new(0, 16, 16, &[8, 8], &[3, 3], &[0, 0]),
            Err(ShapeError::ZeroDim)
        ));
    }

    #[test]
    fn direct_flops_vgg() {
        let s = vgg22();
        // 2 * 64 * 128 * 128 * 112^2 * 9
        assert_eq!(s.direct_flops(), 2 * 64 * 128 * 128 * 112 * 112 * 9);
    }

    #[test]
    fn tile_grid_divisible() {
        let s = vgg22();
        let g = TileGrid::new(&s, &[4, 4]).unwrap();
        assert_eq!(g.tile_dims, vec![6, 6]);
        assert_eq!(g.counts, vec![28, 28]);
        assert_eq!(g.total_tiles(), 784);
        assert_eq!(g.tile_volume(), 36);
        assert_eq!(g.out_tile_volume(), 16);
    }

    #[test]
    fn tile_grid_with_overhang() {
        // out = 112, m = 6 -> 19 tiles, last one partial (112 = 18*6 + 4).
        let s = vgg22();
        let g = TileGrid::new(&s, &[6, 6]).unwrap();
        assert_eq!(g.counts, vec![19, 19]);
        let last = g.output_extent(&[18, 18]);
        assert_eq!(last, vec![4, 4]);
        let first = g.output_extent(&[0, 0]);
        assert_eq!(first, vec![6, 6]);
    }

    #[test]
    fn tile_origins_account_for_padding() {
        let s = vgg22();
        let g = TileGrid::new(&s, &[4, 4]).unwrap();
        assert_eq!(g.input_origin(&[0, 0]), vec![-1, -1]); // reads padding
        assert_eq!(g.input_origin(&[1, 2]), vec![3, 7]);
        assert_eq!(g.output_origin(&[1, 2]), vec![4, 8]);
    }

    #[test]
    fn three_d_grid() {
        // C3D C3b: B=32, C=C'=256, (8,28,28), pad 1, kernel 3³.
        let s = ConvShape::new(32, 256, 256, &[8, 28, 28], &[3, 3, 3], &[1, 1, 1]).unwrap();
        let g = TileGrid::new(&s, &[4, 4, 4]).unwrap();
        assert_eq!(s.out_dims(), vec![8, 28, 28]);
        assert_eq!(g.counts, vec![2, 7, 7]);
        assert_eq!(g.total_tiles(), 98);
        assert_eq!(g.tile_volume(), 216);
        let c = g.tile_coords(97);
        assert_eq!(c, vec![1, 6, 6]);
    }

    #[test]
    fn geometry_identity_matches_conv_shape() {
        let s = vgg22();
        let g = ConvGeometry::identity(2);
        assert!(g.is_identity());
        assert_eq!(g.out_dims(&s).unwrap(), s.out_dims());
        assert_eq!(g.direct_macs(&s).unwrap(), s.direct_macs());
    }

    #[test]
    fn geometry_strided_and_dilated_out_dims() {
        let s = ConvShape::new(1, 16, 16, &[13, 13], &[3, 3], &[1, 1]).unwrap();
        let g = ConvGeometry { stride: vec![2, 2], dilation: vec![1, 1], groups: 1 };
        // (13 + 2 − 3)/2 + 1 = 7.
        assert_eq!(g.out_dims(&s).unwrap(), vec![7, 7]);
        let d = ConvGeometry { stride: vec![1, 1], dilation: vec![2, 2], groups: 1 };
        // Effective kernel 5: 13 + 2 − 5 + 1 = 11.
        assert_eq!(d.out_dims(&s).unwrap(), vec![11, 11]);
        // Stride larger than the extent still yields one output.
        let huge = ConvGeometry { stride: vec![40, 40], dilation: vec![1, 1], groups: 1 };
        assert_eq!(huge.out_dims(&s).unwrap(), vec![1, 1]);
    }

    #[test]
    fn geometry_rejects_unrepresentable() {
        let s = ConvShape::new(1, 16, 32, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let bad_groups = ConvGeometry { stride: vec![1, 1], dilation: vec![1, 1], groups: 3 };
        assert!(matches!(
            bad_groups.validate(&s),
            Err(ShapeError::BadGroups { channels: 16, groups: 3 })
        ));
        // 5 divides neither 16 nor 32; the input-channel check fires first.
        let zero_stride = ConvGeometry { stride: vec![0, 1], dilation: vec![1, 1], groups: 1 };
        assert!(matches!(zero_stride.validate(&s), Err(ShapeError::BadGeometry { .. })));
        // Dilation 8 → effective kernel 17 > 8 + 2.
        let wide = ConvGeometry { stride: vec![1, 1], dilation: vec![8, 8], groups: 1 };
        assert!(matches!(wide.validate(&s), Err(ShapeError::BadGeometry { .. })));
        let short = ConvGeometry { stride: vec![1], dilation: vec![1], groups: 1 };
        assert!(matches!(short.validate(&s), Err(ShapeError::RankMismatch { .. })));
    }

    #[test]
    fn grouped_macs_scale_down() {
        let s = ConvShape::new(1, 32, 32, &[8, 8], &[3, 3], &[1, 1]).unwrap();
        let g2 = ConvGeometry { stride: vec![1, 1], dilation: vec![1, 1], groups: 2 };
        assert_eq!(g2.direct_macs(&s).unwrap() * 2, s.direct_macs());
    }

    #[test]
    fn arbitrary_kernel_sizes() {
        // The Budden et al. sample network uses 4×4 kernels; N-D arbitrary-r
        // support is the headline novelty.
        let s = ConvShape::new(1, 32, 32, &[64, 64], &[4, 4], &[0, 0]).unwrap();
        assert_eq!(s.out_dims(), vec![61, 61]);
        let g = TileGrid::new(&s, &[3, 3]).unwrap();
        assert_eq!(g.tile_dims, vec![6, 6]);
        assert_eq!(g.counts, vec![21, 21]);
    }
}
