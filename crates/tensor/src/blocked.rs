//! The paper's channel-blocked layouts (Table 1, rows "Input images",
//! "Kernels", "Output images").
//!
//! * Images: `I[b][c/S][d][h][w][c mod S]` — an array of size
//!   `B × C/S × D × H × W × S`.
//! * Kernels: `W[c][c'/S][r_d][r_h][r_w][c' mod S]` — size
//!   `C × C'/S × r_D × r_H × r_W × S`.
//!
//! The innermost `S = 16` stride means that reading "the same pixel of S
//! adjacent channels" — the unit of work of every transform codelet — is a
//! single aligned 64-byte vector load. Because the output of one layer is
//! the input of the next in the *same* layout, no reshuffling happens
//! between layers (§4.1).

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_simd::{AlignedVec, S};

use crate::{flat_index, volume, ShapeError, SimpleImage, SimpleKernels, TensorError};

/// A batch of images in blocked layout `[B][C/S][spatial…][S]`.
#[derive(Clone, Debug)]
pub struct BlockedImage {
    pub batch: usize,
    pub channels: usize,
    pub dims: Vec<usize>,
    data: AlignedVec,
}

impl BlockedImage {
    /// Zero-filled blocked image batch. `channels` must be a multiple of
    /// `S` (asserted by the paper for all modern ConvNets).
    pub fn zeros(batch: usize, channels: usize, dims: &[usize]) -> Result<Self, ShapeError> {
        let len = Self::validate(batch, channels, dims)?;
        // ALLOC: the infallible half of the constructor pair;
        // memory-accounted callers route through `try_zeros` below.
        Ok(Self::assemble(batch, channels, dims, AlignedVec::zeroed(len)))
    }

    /// As [`Self::zeros`], but the buffer is zeroed — and therefore
    /// NUMA-placed — through `exec` (see [`crate::first_touch`]): each
    /// executor thread first-touches the region of the image the
    /// partitioner will later steer it at.
    pub fn zeros_first_touch(
        batch: usize,
        channels: usize,
        dims: &[usize],
        exec: &dyn wino_sched::Executor,
    ) -> Result<Self, ShapeError> {
        let len = Self::validate(batch, channels, dims)?;
        // ALLOC: infallible first-touch half; `try_zeros_first_touch` is
        // the accounted path.
        let data = crate::first_touch::zeroed_first_touch(len, exec);
        Ok(Self::assemble(batch, channels, dims, data))
    }

    /// Fallible [`Self::zeros`]: a typed [`TensorError::Alloc`] instead of
    /// an abort when the allocator refuses the buffer.
    pub fn try_zeros(
        batch: usize,
        channels: usize,
        dims: &[usize],
    ) -> Result<Self, TensorError> {
        let len = Self::validate(batch, channels, dims)?;
        let data = AlignedVec::try_zeroed(len)?;
        Ok(Self::assemble(batch, channels, dims, data))
    }

    /// Fallible [`Self::zeros_first_touch`].
    pub fn try_zeros_first_touch(
        batch: usize,
        channels: usize,
        dims: &[usize],
        exec: &dyn wino_sched::Executor,
    ) -> Result<Self, TensorError> {
        let len = Self::validate(batch, channels, dims)?;
        let data = crate::first_touch::try_zeroed_first_touch(len, exec)?;
        Ok(Self::assemble(batch, channels, dims, data))
    }

    /// Bytes a `zeros(batch, channels, dims)` image allocates — the
    /// analytic side of the memory-footprint model.
    pub fn bytes_for(batch: usize, channels: usize, dims: &[usize]) -> usize {
        batch * channels * volume(dims) * std::mem::size_of::<f32>()
    }

    fn validate(batch: usize, channels: usize, dims: &[usize]) -> Result<usize, ShapeError> {
        if channels == 0 || !channels.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels });
        }
        if batch == 0 || dims.contains(&0) {
            return Err(ShapeError::ZeroDim);
        }
        Ok(batch * channels * volume(dims))
    }

    fn assemble(batch: usize, channels: usize, dims: &[usize], data: AlignedVec) -> Self {
        BlockedImage { batch, channels, dims: dims.to_vec(), data }
    }

    #[inline]
    pub fn channel_groups(&self) -> usize {
        self.channels / S
    }

    #[inline]
    pub fn spatial_volume(&self) -> usize {
        volume(&self.dims)
    }

    /// Flat offset of the S-vector holding channels
    /// `[cg*S, cg*S + S)` at spatial position `coords` of batch item `b`.
    #[inline]
    pub fn vec_offset(&self, b: usize, cg: usize, coords: &[usize]) -> usize {
        debug_assert!(b < self.batch && cg < self.channel_groups());
        ((b * self.channel_groups() + cg) * self.spatial_volume() + flat_index(coords, &self.dims))
            * S
    }

    /// As [`Self::vec_offset`] but with a pre-flattened spatial index.
    #[inline]
    pub fn vec_offset_flat(&self, b: usize, cg: usize, spatial: usize) -> usize {
        debug_assert!(b < self.batch && cg < self.channel_groups());
        debug_assert!(spatial < self.spatial_volume());
        ((b * self.channel_groups() + cg) * self.spatial_volume() + spatial) * S
    }

    #[inline]
    pub fn get(&self, b: usize, c: usize, coords: &[usize]) -> f32 {
        self.data[self.vec_offset(b, c / S, coords) + c % S]
    }

    #[inline]
    pub fn set(&mut self, b: usize, c: usize, coords: &[usize], v: f32) {
        let o = self.vec_offset(b, c / S, coords) + c % S;
        self.data[o] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Copy out the channel block `[c0, c0 + count)` as its own image —
    /// the C-loop blocking of grouped convolution. Both bounds must be
    /// multiples of `S` so the slice is whole channel groups: per batch
    /// item the block is then one contiguous run of the backing buffer.
    pub fn channel_block(&self, c0: usize, count: usize) -> Result<BlockedImage, ShapeError> {
        if !c0.is_multiple_of(S) || count == 0 || !count.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels: count.max(c0) });
        }
        if c0 + count > self.channels {
            return Err(ShapeError::Mismatch {
                what: "channel block end",
                expected: self.channels,
                got: c0 + count,
            });
        }
        let mut out = BlockedImage::zeros(self.batch, count, &self.dims)?;
        let vol = self.spatial_volume();
        let run = (count / S) * vol * S;
        for b in 0..self.batch {
            let src = (b * self.channel_groups() + c0 / S) * vol * S;
            let dst = b * run;
            out.data[dst..dst + run].copy_from_slice(&self.data[src..src + run]);
        }
        Ok(out)
    }

    /// Inverse of [`Self::channel_block`]: write `src` into channels
    /// `[c0, c0 + src.channels)` of `self`.
    pub fn write_channel_block(&mut self, c0: usize, src: &BlockedImage) -> Result<(), ShapeError> {
        if !c0.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels: c0 });
        }
        if src.batch != self.batch {
            return Err(ShapeError::Mismatch {
                what: "batch",
                expected: self.batch,
                got: src.batch,
            });
        }
        if src.dims != self.dims {
            return Err(ShapeError::RankMismatch { expected: self.dims.len(), got: src.dims.len() });
        }
        if c0 + src.channels > self.channels {
            return Err(ShapeError::Mismatch {
                what: "channel block end",
                expected: self.channels,
                got: c0 + src.channels,
            });
        }
        let vol = self.spatial_volume();
        let run = src.channel_groups() * vol * S;
        for b in 0..self.batch {
            let dst = (b * self.channel_groups() + c0 / S) * vol * S;
            let s0 = b * run;
            self.data[dst..dst + run].copy_from_slice(&src.data[s0..s0 + run]);
        }
        Ok(())
    }

    /// Elementwise `self += other` — the accumulation step of the
    /// polyphase (sub-lattice) stride decomposition, where every phase
    /// contributes a full-size partial output in the same blocked layout.
    pub fn accumulate(&mut self, other: &BlockedImage) -> Result<(), ShapeError> {
        if other.batch != self.batch || other.channels != self.channels || other.dims != self.dims {
            return Err(ShapeError::Mismatch {
                what: "accumulate operand length",
                expected: self.data.len(),
                got: other.data.len(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
        Ok(())
    }

    /// Convert from the interchange layout.
    pub fn from_simple(img: &SimpleImage) -> Result<Self, ShapeError> {
        let mut out = Self::zeros(img.batch, img.channels, &img.dims)?;
        let vol = out.spatial_volume();
        for b in 0..img.batch {
            for c in 0..img.channels {
                let src = img.channel(b, c);
                let (cg, cl) = (c / S, c % S);
                for s in 0..vol {
                    let o = out.vec_offset_flat(b, cg, s) + cl;
                    out.data[o] = src[s];
                }
            }
        }
        Ok(out)
    }

    /// Convert to the interchange layout.
    pub fn to_simple(&self) -> SimpleImage {
        let mut img = SimpleImage::zeros(self.batch, self.channels, &self.dims);
        let vol = self.spatial_volume();
        for b in 0..self.batch {
            for c in 0..self.channels {
                let (cg, cl) = (c / S, c % S);
                for s in 0..vol {
                    let v = self.data[self.vec_offset_flat(b, cg, s) + cl];
                    img.data[(b * self.channels + c) * vol + s] = v;
                }
            }
        }
        img
    }
}

/// A kernel bank in blocked layout `[C][C'/S][kernel spatial…][S]` —
/// input channel major, the S-vector runs over *output* channels.
#[derive(Clone, Debug)]
pub struct BlockedKernels {
    pub in_channels: usize,
    pub out_channels: usize,
    pub dims: Vec<usize>,
    data: AlignedVec,
}

impl BlockedKernels {
    pub fn zeros(
        in_channels: usize,
        out_channels: usize,
        dims: &[usize],
    ) -> Result<Self, ShapeError> {
        let len = Self::validate(in_channels, out_channels, dims)?;
        Ok(BlockedKernels {
            in_channels,
            out_channels,
            dims: dims.to_vec(),
            // ALLOC: infallible constructor half; `try_zeros` below is
            // the accounted path.
            data: AlignedVec::zeroed(len),
        })
    }

    /// Fallible [`Self::zeros`]: a typed [`TensorError::Alloc`] instead of
    /// an abort when the allocator refuses the buffer.
    pub fn try_zeros(
        in_channels: usize,
        out_channels: usize,
        dims: &[usize],
    ) -> Result<Self, TensorError> {
        let len = Self::validate(in_channels, out_channels, dims)?;
        Ok(BlockedKernels {
            in_channels,
            out_channels,
            dims: dims.to_vec(),
            data: AlignedVec::try_zeroed(len)?,
        })
    }

    fn validate(
        in_channels: usize,
        out_channels: usize,
        dims: &[usize],
    ) -> Result<usize, ShapeError> {
        if out_channels == 0 || !out_channels.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels: out_channels });
        }
        if in_channels == 0 || dims.contains(&0) {
            return Err(ShapeError::ZeroDim);
        }
        Ok(in_channels * out_channels * volume(dims))
    }

    #[inline]
    pub fn out_channel_groups(&self) -> usize {
        self.out_channels / S
    }

    #[inline]
    pub fn spatial_volume(&self) -> usize {
        volume(&self.dims)
    }

    /// Flat offset of the S-vector holding output channels
    /// `[og*S, og*S + S)` of input channel `c` at kernel position `coords`.
    #[inline]
    pub fn vec_offset(&self, c: usize, og: usize, coords: &[usize]) -> usize {
        debug_assert!(c < self.in_channels && og < self.out_channel_groups());
        ((c * self.out_channel_groups() + og) * self.spatial_volume()
            + flat_index(coords, &self.dims))
            * S
    }

    /// As [`Self::vec_offset`] with a pre-flattened kernel position.
    #[inline]
    pub fn vec_offset_flat(&self, c: usize, og: usize, spatial: usize) -> usize {
        debug_assert!(c < self.in_channels && og < self.out_channel_groups());
        debug_assert!(spatial < self.spatial_volume());
        ((c * self.out_channel_groups() + og) * self.spatial_volume() + spatial) * S
    }

    #[inline]
    pub fn get(&self, c_out: usize, c_in: usize, coords: &[usize]) -> f32 {
        self.data[self.vec_offset(c_in, c_out / S, coords) + c_out % S]
    }

    #[inline]
    pub fn set(&mut self, c_out: usize, c_in: usize, coords: &[usize], v: f32) {
        let o = self.vec_offset(c_in, c_out / S, coords) + c_out % S;
        self.data[o] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    /// Copy out the kernel block feeding input channels
    /// `[ci0, ci0 + ci_count)` and output channels `[co0, co0 + co_count)`
    /// — the C/C' blocking of grouped convolution. `co0` and `co_count`
    /// must be multiples of `S` (the vector runs over output channels);
    /// input channels are the outer dimension and slice freely.
    pub fn group_block(
        &self,
        ci0: usize,
        ci_count: usize,
        co0: usize,
        co_count: usize,
    ) -> Result<BlockedKernels, ShapeError> {
        if !co0.is_multiple_of(S) || co_count == 0 || !co_count.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels: co_count.max(co0) });
        }
        if ci0 + ci_count > self.in_channels || co0 + co_count > self.out_channels {
            return Err(ShapeError::Mismatch {
                what: "kernel group block end",
                expected: self.in_channels.max(self.out_channels),
                got: (ci0 + ci_count).max(co0 + co_count),
            });
        }
        let mut out = BlockedKernels::zeros(ci_count, co_count, &self.dims)?;
        let vol = self.spatial_volume();
        let run = (co_count / S) * vol * S;
        for ci in 0..ci_count {
            let src = ((ci0 + ci) * self.out_channel_groups() + co0 / S) * vol * S;
            let dst = ci * run;
            out.data[dst..dst + run].copy_from_slice(&self.data[src..src + run]);
        }
        Ok(out)
    }

    pub fn from_simple(k: &SimpleKernels) -> Result<Self, ShapeError> {
        let mut out = Self::zeros(k.in_channels, k.out_channels, &k.dims)?;
        let vol = out.spatial_volume();
        for co in 0..k.out_channels {
            for ci in 0..k.in_channels {
                let src = k.kernel(co, ci);
                let (og, ol) = (co / S, co % S);
                for s in 0..vol {
                    let o = out.vec_offset_flat(ci, og, s) + ol;
                    out.data[o] = src[s];
                }
            }
        }
        Ok(out)
    }

    pub fn to_simple(&self) -> SimpleKernels {
        let mut k = SimpleKernels::zeros(self.out_channels, self.in_channels, &self.dims);
        let vol = self.spatial_volume();
        for co in 0..self.out_channels {
            for ci in 0..self.in_channels {
                let (og, ol) = (co / S, co % S);
                for s in 0..vol {
                    let v = self.data[self.vec_offset_flat(ci, og, s) + ol];
                    k.data[(co * self.in_channels + ci) * vol + s] = v;
                }
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_must_be_vector_multiple() {
        assert!(matches!(
            BlockedImage::zeros(1, 17, &[4, 4]),
            Err(ShapeError::ChannelsNotVectorMultiple { channels: 17 })
        ));
        assert!(BlockedImage::zeros(1, 32, &[4, 4]).is_ok());
        assert!(matches!(
            BlockedKernels::zeros(16, 8, &[3, 3]),
            Err(ShapeError::ChannelsNotVectorMultiple { channels: 8 })
        ));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(matches!(BlockedImage::zeros(0, 16, &[4]), Err(ShapeError::ZeroDim)));
        assert!(matches!(BlockedImage::zeros(1, 16, &[0, 4]), Err(ShapeError::ZeroDim)));
    }

    #[test]
    fn image_simple_roundtrip() {
        let img = SimpleImage::from_fn(2, 32, &[3, 4], |b, c, xy| {
            (b * 1000 + c * 10) as f32 + (xy[0] * 4 + xy[1]) as f32 * 0.1
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        assert_eq!(blocked.to_simple(), img);
        // Spot-check the blocked indexing agrees with element accessors.
        assert_eq!(blocked.get(1, 17, &[2, 3]), img.get(1, 17, &[2, 3]));
    }

    #[test]
    fn kernel_simple_roundtrip() {
        let k = SimpleKernels::from_fn(32, 5, &[3, 3], |co, ci, xy| {
            (co * 100 + ci * 10 + xy[0] * 3 + xy[1]) as f32
        });
        let blocked = BlockedKernels::from_simple(&k).unwrap();
        assert_eq!(blocked.to_simple(), k);
        assert_eq!(blocked.get(31, 4, &[1, 2]), k.get(31, 4, &[1, 2]));
    }

    #[test]
    fn innermost_dim_is_channel_vector() {
        // Verify the Table-1 property: channels c and c+1 within the same
        // group are adjacent floats in memory.
        let mut img = BlockedImage::zeros(1, 32, &[2, 2]).unwrap();
        img.set(0, 4, &[1, 1], 1.0);
        img.set(0, 5, &[1, 1], 2.0);
        let base = img.vec_offset(0, 0, &[1, 1]);
        assert_eq!(img.as_slice()[base + 4], 1.0);
        assert_eq!(img.as_slice()[base + 5], 2.0);
    }

    #[test]
    fn vec_offsets_are_vector_aligned() {
        let img = BlockedImage::zeros(2, 48, &[5, 7]).unwrap();
        for b in 0..2 {
            for cg in 0..3 {
                for s in 0..35 {
                    assert_eq!(img.vec_offset_flat(b, cg, s) % S, 0);
                }
            }
        }
    }

    #[test]
    fn blocked_image_is_64_byte_aligned() {
        let img = BlockedImage::zeros(1, 16, &[8]).unwrap();
        assert_eq!(img.as_ptr() as usize % 64, 0);
        let k = BlockedKernels::zeros(16, 16, &[3]).unwrap();
        assert_eq!(k.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn channel_block_roundtrip() {
        let img = SimpleImage::from_fn(2, 48, &[3, 3], |b, c, xy| {
            (b * 10000 + c * 100 + xy[0] * 10 + xy[1]) as f32
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        let mid = blocked.channel_block(16, 16).unwrap();
        assert_eq!(mid.channels, 16);
        for b in 0..2 {
            for c in 0..16 {
                for x in 0..3 {
                    for y in 0..3 {
                        assert_eq!(mid.get(b, c, &[x, y]), img.get(b, 16 + c, &[x, y]));
                    }
                }
            }
        }
        // Write it back shifted into a fresh image and check placement.
        let mut dst = BlockedImage::zeros(2, 48, &[3, 3]).unwrap();
        dst.write_channel_block(32, &mid).unwrap();
        assert_eq!(dst.get(1, 32, &[2, 2]), img.get(1, 16, &[2, 2]));
        assert_eq!(dst.get(0, 0, &[0, 0]), 0.0);
        // Misaligned or out-of-range blocks are typed errors.
        assert!(blocked.channel_block(8, 16).is_err());
        assert!(blocked.channel_block(32, 32).is_err());
    }

    #[test]
    fn accumulate_adds_elementwise() {
        let a0 = SimpleImage::from_fn(1, 16, &[2, 2], |_, c, xy| (c + xy[0]) as f32);
        let b0 = SimpleImage::from_fn(1, 16, &[2, 2], |_, _, xy| (xy[1] * 10) as f32);
        let mut a = BlockedImage::from_simple(&a0).unwrap();
        let b = BlockedImage::from_simple(&b0).unwrap();
        a.accumulate(&b).unwrap();
        assert_eq!(a.get(0, 3, &[1, 1]), (3 + 1) as f32 + 10.0);
        let wrong = BlockedImage::zeros(1, 16, &[3, 3]).unwrap();
        assert!(a.accumulate(&wrong).is_err());
    }

    #[test]
    fn kernel_group_block_roundtrip() {
        let k = SimpleKernels::from_fn(32, 8, &[3], |co, ci, xy| {
            (co * 100 + ci * 10 + xy[0]) as f32
        });
        let blocked = BlockedKernels::from_simple(&k).unwrap();
        let block = blocked.group_block(2, 4, 16, 16).unwrap();
        assert_eq!((block.in_channels, block.out_channels), (4, 16));
        for co in 0..16 {
            for ci in 0..4 {
                for x in 0..3 {
                    assert_eq!(block.get(co, ci, &[x]), k.get(16 + co, 2 + ci, &[x]));
                }
            }
        }
        assert!(blocked.group_block(0, 8, 8, 16).is_err());
        assert!(blocked.group_block(4, 8, 0, 16).is_err());
    }

    #[test]
    fn three_d_roundtrip() {
        let img = SimpleImage::from_fn(1, 16, &[2, 3, 4], |_, c, xyz| {
            c as f32 + (xyz[0] * 12 + xyz[1] * 4 + xyz[2]) as f32 * 0.01
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        assert_eq!(blocked.to_simple(), img);
    }
}
