//! The paper's channel-blocked layouts (Table 1, rows "Input images",
//! "Kernels", "Output images").
//!
//! * Images: `I[b][c/S][d][h][w][c mod S]` — an array of size
//!   `B × C/S × D × H × W × S`.
//! * Kernels: `W[c][c'/S][r_d][r_h][r_w][c' mod S]` — size
//!   `C × C'/S × r_D × r_H × r_W × S`.
//!
//! The innermost `S = 16` stride means that reading "the same pixel of S
//! adjacent channels" — the unit of work of every transform codelet — is a
//! single aligned 64-byte vector load. Because the output of one layer is
//! the input of the next in the *same* layout, no reshuffling happens
//! between layers (§4.1).

// Index-based loops are the idiom throughout: most walk several
// arrays with derived offsets, where iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]
use wino_simd::{AlignedVec, S};

use crate::{flat_index, volume, ShapeError, SimpleImage, SimpleKernels};

/// A batch of images in blocked layout `[B][C/S][spatial…][S]`.
#[derive(Clone, Debug)]
pub struct BlockedImage {
    pub batch: usize,
    pub channels: usize,
    pub dims: Vec<usize>,
    data: AlignedVec,
}

impl BlockedImage {
    /// Zero-filled blocked image batch. `channels` must be a multiple of
    /// `S` (asserted by the paper for all modern ConvNets).
    pub fn zeros(batch: usize, channels: usize, dims: &[usize]) -> Result<Self, ShapeError> {
        Self::zeros_with(batch, channels, dims, AlignedVec::zeroed)
    }

    /// As [`Self::zeros`], but the buffer is zeroed — and therefore
    /// NUMA-placed — through `exec` (see [`crate::first_touch`]): each
    /// executor thread first-touches the region of the image the
    /// partitioner will later steer it at.
    pub fn zeros_first_touch(
        batch: usize,
        channels: usize,
        dims: &[usize],
        exec: &dyn wino_sched::Executor,
    ) -> Result<Self, ShapeError> {
        Self::zeros_with(batch, channels, dims, |len| {
            crate::first_touch::zeroed_first_touch(len, exec)
        })
    }

    fn zeros_with(
        batch: usize,
        channels: usize,
        dims: &[usize],
        alloc: impl FnOnce(usize) -> AlignedVec,
    ) -> Result<Self, ShapeError> {
        if channels == 0 || !channels.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels });
        }
        if batch == 0 || dims.contains(&0) {
            return Err(ShapeError::ZeroDim);
        }
        Ok(BlockedImage {
            batch,
            channels,
            dims: dims.to_vec(),
            data: alloc(batch * channels * volume(dims)),
        })
    }

    #[inline]
    pub fn channel_groups(&self) -> usize {
        self.channels / S
    }

    #[inline]
    pub fn spatial_volume(&self) -> usize {
        volume(&self.dims)
    }

    /// Flat offset of the S-vector holding channels
    /// `[cg*S, cg*S + S)` at spatial position `coords` of batch item `b`.
    #[inline]
    pub fn vec_offset(&self, b: usize, cg: usize, coords: &[usize]) -> usize {
        debug_assert!(b < self.batch && cg < self.channel_groups());
        ((b * self.channel_groups() + cg) * self.spatial_volume() + flat_index(coords, &self.dims))
            * S
    }

    /// As [`Self::vec_offset`] but with a pre-flattened spatial index.
    #[inline]
    pub fn vec_offset_flat(&self, b: usize, cg: usize, spatial: usize) -> usize {
        debug_assert!(b < self.batch && cg < self.channel_groups());
        debug_assert!(spatial < self.spatial_volume());
        ((b * self.channel_groups() + cg) * self.spatial_volume() + spatial) * S
    }

    #[inline]
    pub fn get(&self, b: usize, c: usize, coords: &[usize]) -> f32 {
        self.data[self.vec_offset(b, c / S, coords) + c % S]
    }

    #[inline]
    pub fn set(&mut self, b: usize, c: usize, coords: &[usize], v: f32) {
        let o = self.vec_offset(b, c / S, coords) + c % S;
        self.data[o] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Convert from the interchange layout.
    pub fn from_simple(img: &SimpleImage) -> Result<Self, ShapeError> {
        let mut out = Self::zeros(img.batch, img.channels, &img.dims)?;
        let vol = out.spatial_volume();
        for b in 0..img.batch {
            for c in 0..img.channels {
                let src = img.channel(b, c);
                let (cg, cl) = (c / S, c % S);
                for s in 0..vol {
                    let o = out.vec_offset_flat(b, cg, s) + cl;
                    out.data[o] = src[s];
                }
            }
        }
        Ok(out)
    }

    /// Convert to the interchange layout.
    pub fn to_simple(&self) -> SimpleImage {
        let mut img = SimpleImage::zeros(self.batch, self.channels, &self.dims);
        let vol = self.spatial_volume();
        for b in 0..self.batch {
            for c in 0..self.channels {
                let (cg, cl) = (c / S, c % S);
                for s in 0..vol {
                    let v = self.data[self.vec_offset_flat(b, cg, s) + cl];
                    img.data[(b * self.channels + c) * vol + s] = v;
                }
            }
        }
        img
    }
}

/// A kernel bank in blocked layout `[C][C'/S][kernel spatial…][S]` —
/// input channel major, the S-vector runs over *output* channels.
#[derive(Clone, Debug)]
pub struct BlockedKernels {
    pub in_channels: usize,
    pub out_channels: usize,
    pub dims: Vec<usize>,
    data: AlignedVec,
}

impl BlockedKernels {
    pub fn zeros(
        in_channels: usize,
        out_channels: usize,
        dims: &[usize],
    ) -> Result<Self, ShapeError> {
        if out_channels == 0 || !out_channels.is_multiple_of(S) {
            return Err(ShapeError::ChannelsNotVectorMultiple { channels: out_channels });
        }
        if in_channels == 0 || dims.contains(&0) {
            return Err(ShapeError::ZeroDim);
        }
        Ok(BlockedKernels {
            in_channels,
            out_channels,
            dims: dims.to_vec(),
            data: AlignedVec::zeroed(in_channels * out_channels * volume(dims)),
        })
    }

    #[inline]
    pub fn out_channel_groups(&self) -> usize {
        self.out_channels / S
    }

    #[inline]
    pub fn spatial_volume(&self) -> usize {
        volume(&self.dims)
    }

    /// Flat offset of the S-vector holding output channels
    /// `[og*S, og*S + S)` of input channel `c` at kernel position `coords`.
    #[inline]
    pub fn vec_offset(&self, c: usize, og: usize, coords: &[usize]) -> usize {
        debug_assert!(c < self.in_channels && og < self.out_channel_groups());
        ((c * self.out_channel_groups() + og) * self.spatial_volume()
            + flat_index(coords, &self.dims))
            * S
    }

    /// As [`Self::vec_offset`] with a pre-flattened kernel position.
    #[inline]
    pub fn vec_offset_flat(&self, c: usize, og: usize, spatial: usize) -> usize {
        debug_assert!(c < self.in_channels && og < self.out_channel_groups());
        debug_assert!(spatial < self.spatial_volume());
        ((c * self.out_channel_groups() + og) * self.spatial_volume() + spatial) * S
    }

    #[inline]
    pub fn get(&self, c_out: usize, c_in: usize, coords: &[usize]) -> f32 {
        self.data[self.vec_offset(c_in, c_out / S, coords) + c_out % S]
    }

    #[inline]
    pub fn set(&mut self, c_out: usize, c_in: usize, coords: &[usize], v: f32) {
        let o = self.vec_offset(c_in, c_out / S, coords) + c_out % S;
        self.data[o] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    pub fn from_simple(k: &SimpleKernels) -> Result<Self, ShapeError> {
        let mut out = Self::zeros(k.in_channels, k.out_channels, &k.dims)?;
        let vol = out.spatial_volume();
        for co in 0..k.out_channels {
            for ci in 0..k.in_channels {
                let src = k.kernel(co, ci);
                let (og, ol) = (co / S, co % S);
                for s in 0..vol {
                    let o = out.vec_offset_flat(ci, og, s) + ol;
                    out.data[o] = src[s];
                }
            }
        }
        Ok(out)
    }

    pub fn to_simple(&self) -> SimpleKernels {
        let mut k = SimpleKernels::zeros(self.out_channels, self.in_channels, &self.dims);
        let vol = self.spatial_volume();
        for co in 0..self.out_channels {
            for ci in 0..self.in_channels {
                let (og, ol) = (co / S, co % S);
                for s in 0..vol {
                    let v = self.data[self.vec_offset_flat(ci, og, s) + ol];
                    k.data[(co * self.in_channels + ci) * vol + s] = v;
                }
            }
        }
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channels_must_be_vector_multiple() {
        assert!(matches!(
            BlockedImage::zeros(1, 17, &[4, 4]),
            Err(ShapeError::ChannelsNotVectorMultiple { channels: 17 })
        ));
        assert!(BlockedImage::zeros(1, 32, &[4, 4]).is_ok());
        assert!(matches!(
            BlockedKernels::zeros(16, 8, &[3, 3]),
            Err(ShapeError::ChannelsNotVectorMultiple { channels: 8 })
        ));
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(matches!(BlockedImage::zeros(0, 16, &[4]), Err(ShapeError::ZeroDim)));
        assert!(matches!(BlockedImage::zeros(1, 16, &[0, 4]), Err(ShapeError::ZeroDim)));
    }

    #[test]
    fn image_simple_roundtrip() {
        let img = SimpleImage::from_fn(2, 32, &[3, 4], |b, c, xy| {
            (b * 1000 + c * 10) as f32 + (xy[0] * 4 + xy[1]) as f32 * 0.1
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        assert_eq!(blocked.to_simple(), img);
        // Spot-check the blocked indexing agrees with element accessors.
        assert_eq!(blocked.get(1, 17, &[2, 3]), img.get(1, 17, &[2, 3]));
    }

    #[test]
    fn kernel_simple_roundtrip() {
        let k = SimpleKernels::from_fn(32, 5, &[3, 3], |co, ci, xy| {
            (co * 100 + ci * 10 + xy[0] * 3 + xy[1]) as f32
        });
        let blocked = BlockedKernels::from_simple(&k).unwrap();
        assert_eq!(blocked.to_simple(), k);
        assert_eq!(blocked.get(31, 4, &[1, 2]), k.get(31, 4, &[1, 2]));
    }

    #[test]
    fn innermost_dim_is_channel_vector() {
        // Verify the Table-1 property: channels c and c+1 within the same
        // group are adjacent floats in memory.
        let mut img = BlockedImage::zeros(1, 32, &[2, 2]).unwrap();
        img.set(0, 4, &[1, 1], 1.0);
        img.set(0, 5, &[1, 1], 2.0);
        let base = img.vec_offset(0, 0, &[1, 1]);
        assert_eq!(img.as_slice()[base + 4], 1.0);
        assert_eq!(img.as_slice()[base + 5], 2.0);
    }

    #[test]
    fn vec_offsets_are_vector_aligned() {
        let img = BlockedImage::zeros(2, 48, &[5, 7]).unwrap();
        for b in 0..2 {
            for cg in 0..3 {
                for s in 0..35 {
                    assert_eq!(img.vec_offset_flat(b, cg, s) % S, 0);
                }
            }
        }
    }

    #[test]
    fn blocked_image_is_64_byte_aligned() {
        let img = BlockedImage::zeros(1, 16, &[8]).unwrap();
        assert_eq!(img.as_ptr() as usize % 64, 0);
        let k = BlockedKernels::zeros(16, 16, &[3]).unwrap();
        assert_eq!(k.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn three_d_roundtrip() {
        let img = SimpleImage::from_fn(1, 16, &[2, 3, 4], |_, c, xyz| {
            c as f32 + (xyz[0] * 12 + xyz[1] * 4 + xyz[2]) as f32 * 0.01
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        assert_eq!(blocked.to_simple(), img);
    }
}
