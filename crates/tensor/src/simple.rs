//! Plain row-major tensors — the interchange format.

use crate::{flat_index, volume};

/// A batch of multi-channel N-D images in row-major `[B][C][spatial…]`
/// order (NCHW / NCDHW). The easy-to-reason-about format used by reference
/// implementations, conversions and tests.
#[derive(Clone, Debug, PartialEq)]
pub struct SimpleImage {
    pub batch: usize,
    pub channels: usize,
    pub dims: Vec<usize>,
    pub data: Vec<f32>,
}

impl SimpleImage {
    /// Zero-filled image batch.
    pub fn zeros(batch: usize, channels: usize, dims: &[usize]) -> Self {
        SimpleImage {
            batch,
            channels,
            dims: dims.to_vec(),
            data: vec![0.0; batch * channels * volume(dims)],
        }
    }

    /// Build from a generator `f(b, c, spatial_coords)`.
    pub fn from_fn(
        batch: usize,
        channels: usize,
        dims: &[usize],
        mut f: impl FnMut(usize, usize, &[usize]) -> f32,
    ) -> Self {
        let mut img = Self::zeros(batch, channels, dims);
        let vol = volume(dims);
        for b in 0..batch {
            for c in 0..channels {
                for i in 0..vol {
                    let coords = crate::unflatten(i, dims);
                    let v = f(b, c, &coords);
                    img.data[(b * channels + c) * vol + i] = v;
                }
            }
        }
        img
    }

    #[inline]
    pub fn spatial_volume(&self) -> usize {
        volume(&self.dims)
    }

    #[inline]
    pub fn offset(&self, b: usize, c: usize, coords: &[usize]) -> usize {
        debug_assert!(b < self.batch && c < self.channels);
        (b * self.channels + c) * self.spatial_volume() + flat_index(coords, &self.dims)
    }

    #[inline]
    pub fn get(&self, b: usize, c: usize, coords: &[usize]) -> f32 {
        self.data[self.offset(b, c, coords)]
    }

    #[inline]
    pub fn set(&mut self, b: usize, c: usize, coords: &[usize], v: f32) {
        let o = self.offset(b, c, coords);
        self.data[o] = v;
    }

    /// Value at `coords` where coordinates may lie outside the image
    /// (returns 0.0 — implicit zero padding).
    pub fn get_padded(&self, b: usize, c: usize, coords: &[isize]) -> f32 {
        for (&x, &d) in coords.iter().zip(&self.dims) {
            if x < 0 || x as usize >= d {
                return 0.0;
            }
        }
        let ucoords: Vec<usize> = coords.iter().map(|&x| x as usize).collect();
        self.get(b, c, &ucoords)
    }

    /// One flat channel slice `[spatial…]`.
    pub fn channel(&self, b: usize, c: usize) -> &[f32] {
        let vol = self.spatial_volume();
        let start = (b * self.channels + c) * vol;
        &self.data[start..start + vol]
    }
}

/// A kernel bank in row-major `[C'][C][kernel spatial…]` order.
#[derive(Clone, Debug, PartialEq)]
pub struct SimpleKernels {
    pub out_channels: usize,
    pub in_channels: usize,
    pub dims: Vec<usize>,
    pub data: Vec<f32>,
}

impl SimpleKernels {
    pub fn zeros(out_channels: usize, in_channels: usize, dims: &[usize]) -> Self {
        SimpleKernels {
            out_channels,
            in_channels,
            dims: dims.to_vec(),
            data: vec![0.0; out_channels * in_channels * volume(dims)],
        }
    }

    /// Build from a generator `f(c_out, c_in, spatial_coords)`.
    pub fn from_fn(
        out_channels: usize,
        in_channels: usize,
        dims: &[usize],
        mut f: impl FnMut(usize, usize, &[usize]) -> f32,
    ) -> Self {
        let mut k = Self::zeros(out_channels, in_channels, dims);
        let vol = volume(dims);
        for co in 0..out_channels {
            for ci in 0..in_channels {
                for i in 0..vol {
                    let coords = crate::unflatten(i, dims);
                    k.data[(co * in_channels + ci) * vol + i] = f(co, ci, &coords);
                }
            }
        }
        k
    }

    #[inline]
    pub fn spatial_volume(&self) -> usize {
        volume(&self.dims)
    }

    #[inline]
    pub fn offset(&self, c_out: usize, c_in: usize, coords: &[usize]) -> usize {
        debug_assert!(c_out < self.out_channels && c_in < self.in_channels);
        (c_out * self.in_channels + c_in) * self.spatial_volume() + flat_index(coords, &self.dims)
    }

    #[inline]
    pub fn get(&self, c_out: usize, c_in: usize, coords: &[usize]) -> f32 {
        self.data[self.offset(c_out, c_in, coords)]
    }

    #[inline]
    pub fn set(&mut self, c_out: usize, c_in: usize, coords: &[usize], v: f32) {
        let o = self.offset(c_out, c_in, coords);
        self.data[o] = v;
    }

    /// One flat kernel `[spatial…]` for a (c_out, c_in) pair.
    pub fn kernel(&self, c_out: usize, c_in: usize) -> &[f32] {
        let vol = self.spatial_volume();
        let start = (c_out * self.in_channels + c_in) * vol;
        &self.data[start..start + vol]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_get_set_roundtrip() {
        let mut img = SimpleImage::zeros(2, 3, &[4, 5]);
        img.set(1, 2, &[3, 4], 9.0);
        assert_eq!(img.get(1, 2, &[3, 4]), 9.0);
        assert_eq!(img.get(0, 0, &[0, 0]), 0.0);
        assert_eq!(img.data.len(), 2 * 3 * 20);
    }

    #[test]
    fn image_from_fn() {
        let img = SimpleImage::from_fn(1, 2, &[3, 3], |b, c, xy| {
            (b + 10 * c) as f32 + 0.1 * (xy[0] * 3 + xy[1]) as f32
        });
        assert_eq!(img.get(0, 1, &[2, 1]), 10.0 + 0.7);
    }

    #[test]
    fn padded_reads_are_zero_outside() {
        let img = SimpleImage::from_fn(1, 1, &[2, 2], |_, _, _| 1.0);
        assert_eq!(img.get_padded(0, 0, &[-1, 0]), 0.0);
        assert_eq!(img.get_padded(0, 0, &[0, 2]), 0.0);
        assert_eq!(img.get_padded(0, 0, &[1, 1]), 1.0);
    }

    #[test]
    fn kernels_roundtrip() {
        let mut k = SimpleKernels::zeros(4, 2, &[3, 3, 3]);
        k.set(3, 1, &[2, 2, 2], -1.5);
        assert_eq!(k.get(3, 1, &[2, 2, 2]), -1.5);
        assert_eq!(k.kernel(3, 1)[26], -1.5);
        assert_eq!(k.data.len(), 4 * 2 * 27);
    }

    #[test]
    fn channel_slice_is_contiguous() {
        let img = SimpleImage::from_fn(2, 2, &[2, 2], |b, c, xy| {
            (b * 100 + c * 10 + xy[0] * 2 + xy[1]) as f32
        });
        assert_eq!(img.channel(1, 1), &[110.0, 111.0, 112.0, 113.0]);
    }
}
