//! The transformed-data layout (Table 1, rows "Transformed inputs/kernels/
//! outputs"): `T` logical matrices stored block-panel interleaved.
//!
//! A [`BlockedMatrices`] with parameters `(t, rows, cols, rb, cb)` stores
//! element `(t, row, col)` at
//!
//! ```text
//! M[row/rb][col/cb][t][row mod rb][col mod cb]
//! ```
//!
//! Two properties make this the right layout for the paper's pipeline:
//!
//! 1. **Stage 2 (GEMM)**: every `rb × cb` sub-matrix of every one of the `T`
//!    matrices is one contiguous chunk, so the JIT micro-kernel streams
//!    through it with aligned vector loads and unit stride.
//! 2. **Stages 1/3 (transforms)**: for a fixed (row, col-group) the `T`
//!    values live `rb·cb` floats apart inside a single `T·rb·cb`-float
//!    region — the paper's "scattering range" that keeps TLB misses low.
//!
//! Rows are padded up to a multiple of `rb` (the paper pads the last
//! sub-matrix of U when `NB` is not divisible by `n_blk`); padded rows read
//! as zeros and multiply harmlessly.

use wino_simd::{AlignedVec, S};

use crate::div_ceil;

/// `T` matrices of `rows × cols` in block-panel layout (see module docs).
#[derive(Clone, Debug)]
pub struct BlockedMatrices {
    t_count: usize,
    rows: usize,
    cols: usize,
    rb: usize,
    cb: usize,
    row_blocks: usize,
    col_blocks: usize,
    data: AlignedVec,
}

impl BlockedMatrices {
    /// Allocate (zero-filled). `cols` must be divisible by `cb`, and `cb`
    /// by the vector width `S` so that column groups are vector-aligned.
    pub fn new(t_count: usize, rows: usize, cols: usize, rb: usize, cb: usize) -> Self {
        let len = Self::validate(t_count, rows, cols, rb, cb);
        // ALLOC: the infallible half of the constructor pair;
        // memory-accounted callers route through `try_new` below.
        Self::assemble(t_count, rows, cols, rb, cb, AlignedVec::zeroed(len))
    }

    /// As [`Self::new`], but the backing buffer is zeroed — and therefore
    /// NUMA-placed — through `exec` (see [`crate::first_touch`]). Used for
    /// the transformed-data scratch, the largest allocations of a plan.
    pub fn new_first_touch(
        t_count: usize,
        rows: usize,
        cols: usize,
        rb: usize,
        cb: usize,
        exec: &dyn wino_sched::Executor,
    ) -> Self {
        let len = Self::validate(t_count, rows, cols, rb, cb);
        // ALLOC: infallible first-touch half; `try_new_first_touch` is the
        // accounted path.
        let data = crate::first_touch::zeroed_first_touch(len, exec);
        Self::assemble(t_count, rows, cols, rb, cb, data)
    }

    /// Fallible [`Self::new`]: a typed [`wino_simd::AllocError`] instead
    /// of an abort when the allocator refuses the buffer. Shape
    /// constraints remain assertions — they are planner invariants, not
    /// runtime conditions.
    pub fn try_new(
        t_count: usize,
        rows: usize,
        cols: usize,
        rb: usize,
        cb: usize,
    ) -> Result<Self, wino_simd::AllocError> {
        let len = Self::validate(t_count, rows, cols, rb, cb);
        Ok(Self::assemble(t_count, rows, cols, rb, cb, AlignedVec::try_zeroed(len)?))
    }

    /// Fallible [`Self::new_first_touch`].
    pub fn try_new_first_touch(
        t_count: usize,
        rows: usize,
        cols: usize,
        rb: usize,
        cb: usize,
        exec: &dyn wino_sched::Executor,
    ) -> Result<Self, wino_simd::AllocError> {
        let len = Self::validate(t_count, rows, cols, rb, cb);
        let data = crate::first_touch::try_zeroed_first_touch(len, exec)?;
        Ok(Self::assemble(t_count, rows, cols, rb, cb, data))
    }

    /// A zero-sized stand-in for temporarily moving a real buffer out of
    /// a struct field (`std::mem::replace`). Allocates nothing — a
    /// zero-length [`AlignedVec`] is a dangling pointer, never touched.
    /// Any attempt to index it panics, so accidental use is loud.
    pub fn placeholder() -> Self {
        // ALLOC: zero-length — a dangling aligned pointer, no allocator
        // call, nothing to account.
        Self::assemble(0, 0, 0, 1, 16, AlignedVec::zeroed(0))
    }

    /// Bytes a `new(t_count, rows, cols, rb, cb)` instance allocates —
    /// the analytic side of the memory-footprint model.
    pub fn bytes_for(t_count: usize, rows: usize, cols: usize, rb: usize, cb: usize) -> usize {
        div_ceil(rows, rb) * (cols / cb) * t_count * rb * cb * std::mem::size_of::<f32>()
    }

    fn validate(t_count: usize, rows: usize, cols: usize, rb: usize, cb: usize) -> usize {
        assert!(rb > 0 && cb > 0 && t_count > 0 && rows > 0 && cols > 0);
        assert_eq!(cols % cb, 0, "cols ({cols}) must be divisible by cb ({cb})");
        assert_eq!(cb % S, 0, "cb ({cb}) must be divisible by the vector width {S}");
        div_ceil(rows, rb) * (cols / cb) * t_count * rb * cb
    }

    fn assemble(
        t_count: usize,
        rows: usize,
        cols: usize,
        rb: usize,
        cb: usize,
        data: AlignedVec,
    ) -> Self {
        BlockedMatrices {
            t_count,
            rows,
            cols,
            rb,
            cb,
            row_blocks: div_ceil(rows, rb),
            col_blocks: cols / cb,
            data,
        }
    }

    pub fn t_count(&self) -> usize {
        self.t_count
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Rows including the padding up to a multiple of `rb`.
    pub fn padded_rows(&self) -> usize {
        self.row_blocks * self.rb
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn rb(&self) -> usize {
        self.rb
    }

    pub fn cb(&self) -> usize {
        self.cb
    }

    pub fn row_blocks(&self) -> usize {
        self.row_blocks
    }

    pub fn col_blocks(&self) -> usize {
        self.col_blocks
    }

    /// Bytes of backing storage (for the paper's memory-overhead accounting).
    pub fn bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Flat offset of the first element of block `(rb_i, cb_i)` of matrix
    /// `t`. The block is `rb·cb` contiguous floats from there.
    #[inline]
    pub fn block_offset(&self, rb_i: usize, cb_i: usize, t: usize) -> usize {
        debug_assert!(rb_i < self.row_blocks && cb_i < self.col_blocks && t < self.t_count);
        (((rb_i * self.col_blocks + cb_i) * self.t_count) + t) * self.rb * self.cb
    }

    /// Distance (in floats) between the same block position of matrices
    /// `t` and `t + 1` — the stage-1/3 scatter stride.
    #[inline]
    pub fn t_stride(&self) -> usize {
        self.rb * self.cb
    }

    #[inline]
    pub fn element_offset(&self, t: usize, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        self.block_offset(row / self.rb, col / self.cb, t)
            + (row % self.rb) * self.cb
            + (col % self.cb)
    }

    #[inline]
    pub fn get(&self, t: usize, row: usize, col: usize) -> f32 {
        self.data[self.element_offset(t, row, col)]
    }

    #[inline]
    pub fn set(&mut self, t: usize, row: usize, col: usize, v: f32) {
        let o = self.element_offset(t, row, col);
        self.data[o] = v;
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn as_ptr(&self) -> *const f32 {
        self.data.as_ptr()
    }

    pub fn as_mut_ptr(&mut self) -> *mut f32 {
        self.data.as_mut_ptr()
    }

    /// Contiguous `rb × cb` block (row-major within the block).
    pub fn block(&self, rb_i: usize, cb_i: usize, t: usize) -> &[f32] {
        let o = self.block_offset(rb_i, cb_i, t);
        &self.data[o..o + self.rb * self.cb]
    }

    pub fn fill_zero(&mut self) {
        self.data.fill_zero();
    }

    /// Extract matrix `t` as a dense row-major `rows × cols` matrix
    /// (test/debug helper; padded rows are dropped).
    pub fn to_dense(&self, t: usize) -> Vec<f32> {
        let mut out = vec![0.0; self.rows * self.cols];
        for row in 0..self.rows {
            for col in 0..self.cols {
                out[row * self.cols + col] = self.get(t, row, col);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_elements() {
        let mut m = BlockedMatrices::new(4, 10, 32, 3, 16);
        assert_eq!(m.padded_rows(), 12);
        for t in 0..4 {
            for r in 0..10 {
                for c in 0..32 {
                    m.set(t, r, c, (t * 1000 + r * 32 + c) as f32);
                }
            }
        }
        for t in 0..4 {
            for r in 0..10 {
                for c in 0..32 {
                    assert_eq!(m.get(t, r, c), (t * 1000 + r * 32 + c) as f32);
                }
            }
        }
    }

    #[test]
    fn blocks_are_contiguous_row_major() {
        let mut m = BlockedMatrices::new(2, 6, 32, 3, 16);
        // Fill block (1, 1) of t=1 through set() and read it back as a slice.
        for r in 3..6 {
            for c in 16..32 {
                m.set(1, r, c, (r * 100 + c) as f32);
            }
        }
        let b = m.block(1, 1, 1);
        assert_eq!(b.len(), 48);
        for (i, &v) in b.iter().enumerate() {
            let (r, c) = (3 + i / 16, 16 + i % 16);
            assert_eq!(v, (r * 100 + c) as f32, "block element {i}");
        }
    }

    #[test]
    fn t_stride_is_block_size() {
        let m = BlockedMatrices::new(3, 8, 16, 4, 16);
        assert_eq!(m.t_stride(), 64);
        assert_eq!(m.block_offset(0, 0, 1) - m.block_offset(0, 0, 0), 64);
        assert_eq!(m.block_offset(1, 0, 0), 3 * 64);
    }

    #[test]
    fn vector_groups_are_aligned() {
        // Offsets of S-wide column groups must be multiples of S so that
        // (on a 64-byte-aligned base) they are aligned vector lanes.
        let m = BlockedMatrices::new(5, 33, 64, 7, 32);
        for t in 0..5 {
            for row in 0..33 {
                for cg in 0..(64 / 16) {
                    assert_eq!(m.element_offset(t, row, cg * 16) % 16, 0);
                }
            }
        }
        assert_eq!(m.as_ptr() as usize % 64, 0);
    }

    #[test]
    fn padded_rows_read_zero() {
        let m = BlockedMatrices::new(1, 5, 16, 4, 16);
        assert_eq!(m.padded_rows(), 8);
        // Raw padding area is zero-initialised.
        let o = m.block_offset(1, 0, 0) + 16; // row 5 (first padded)
        assert!(m.as_slice()[o..o + 16].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn to_dense_matches_gets() {
        let mut m = BlockedMatrices::new(2, 7, 16, 3, 16);
        for r in 0..7 {
            for c in 0..16 {
                m.set(1, r, c, (r * 16 + c) as f32 * 0.5);
            }
        }
        let d = m.to_dense(1);
        for r in 0..7 {
            for c in 0..16 {
                assert_eq!(d[r * 16 + c], (r * 16 + c) as f32 * 0.5);
            }
        }
    }

    #[test]
    #[should_panic(expected = "divisible by cb")]
    fn cols_must_divide() {
        let _ = BlockedMatrices::new(1, 4, 30, 2, 16);
    }

    #[test]
    fn memory_accounting() {
        let m = BlockedMatrices::new(36, 100, 64, 8, 32);
        // ceil(100/8)=13 row blocks, 2 col blocks, 36 t, 8*32 block.
        assert_eq!(m.bytes(), 13 * 2 * 36 * 8 * 32 * 4);
    }
}
