//! # wino-tensor
//!
//! The data-layout substrate (paper §4.1, Table 1).
//!
//! Three families of containers:
//!
//! * [`SimpleImage`] / [`SimpleKernels`] — plain row-major `NC(D)HW` /
//!   `C'C(R)HW` tensors. These are the *interchange* format: easy to reason
//!   about, used by reference implementations and tests.
//! * [`BlockedImage`] / [`BlockedKernels`] — the paper's vectorisation
//!   layout, `I[b][c/S][d][h][w][c mod S]` and `W[c][c'/S][...][c' mod S]`
//!   with `S = 16`: the innermost dimension is a full vector register, so
//!   every access in the hot loops is one aligned vector load/store.
//! * [`BlockedMatrices`] — the transformed-data layout,
//!   `[row/rb][col/cb][t][row mod rb][col mod cb]`: `T` logical matrices
//!   (one per intra-tile position `t`) stored so that every
//!   `rb × cb` GEMM block is a single contiguous chunk and the stage-1/3
//!   scatter/gather touches a small, TLB-friendly range.
//!
//! Geometry lives in [`geometry`]: [`ConvShape`] describes a convolutional
//! layer, [`TileGrid`] the overlap-add tiling (§3.1–3.2).

pub mod blocked;
pub mod first_touch;
pub mod geometry;
pub mod matrices;
pub mod simple;

pub use blocked::{BlockedImage, BlockedKernels};
pub use first_touch::{try_zeroed_first_touch, zeroed_first_touch};
pub use geometry::{ConvGeometry, ConvShape, TileGrid};
pub use matrices::BlockedMatrices;
pub use simple::{SimpleImage, SimpleKernels};

/// The channel-block width: one vector register of `f32` (paper's `S`).
pub use wino_simd::S;
/// Re-exported so tensor consumers can match allocation failures without
/// depending on `wino-simd` directly.
pub use wino_simd::AllocError;

/// Errors for shape construction and conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeError {
    /// Channel count not divisible by the vector width `S`.
    ChannelsNotVectorMultiple { channels: usize },
    /// Mismatched dimensionality between two shapes.
    RankMismatch { expected: usize, got: usize },
    /// A kernel larger than its (padded) image.
    KernelTooLarge,
    /// Empty or zero-sized dimension.
    ZeroDim,
    /// Two connected buffers disagree on one extent (batch, channel count,
    /// spatial dimension, …) — `what` names the quantity.
    Mismatch { what: &'static str, expected: usize, got: usize },
    /// A channel count that the requested group count does not divide —
    /// such a layer is unrepresentable, not merely unsupported.
    BadGroups { channels: usize, groups: usize },
    /// A stride/dilation/groups field outside the representable range
    /// (zero stride, zero dilation, zero groups, or a dilated receptive
    /// field wider than the padded image) — `what` names the field.
    BadGeometry { what: &'static str },
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShapeError::ChannelsNotVectorMultiple { channels } => write!(
                f,
                "channel count {channels} is not a multiple of the vector width {S}; \
                 the paper's layout requires C, C' divisible by S (true for all modern ConvNets)"
            ),
            ShapeError::RankMismatch { expected, got } => {
                write!(f, "rank mismatch: expected {expected} spatial dims, got {got}")
            }
            ShapeError::KernelTooLarge => write!(f, "kernel exceeds padded image extent"),
            ShapeError::ZeroDim => write!(f, "zero-sized dimension"),
            ShapeError::Mismatch { what, expected, got } => {
                write!(f, "{what} mismatch: expected {expected}, got {got}")
            }
            ShapeError::BadGroups { channels, groups } => {
                write!(f, "group count {groups} does not divide channel count {channels}")
            }
            ShapeError::BadGeometry { what } => write!(f, "bad conv geometry: {what}"),
        }
    }
}

impl std::error::Error for ShapeError {}

/// A fallible-constructor failure: either the requested shape is invalid
/// or the allocator refused the backing buffer. Only the `try_*`
/// constructors return this — the infallible ones keep [`ShapeError`]
/// and abort on OOM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorError {
    /// The requested shape is unrepresentable.
    Shape(ShapeError),
    /// The allocator (or the fault injector) refused the backing buffer.
    Alloc(AllocError),
}

impl std::fmt::Display for TensorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TensorError::Shape(e) => write!(f, "{e}"),
            TensorError::Alloc(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for TensorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TensorError::Shape(e) => Some(e),
            TensorError::Alloc(e) => Some(e),
        }
    }
}

impl From<ShapeError> for TensorError {
    fn from(e: ShapeError) -> Self {
        TensorError::Shape(e)
    }
}

impl From<AllocError> for TensorError {
    fn from(e: AllocError) -> Self {
        TensorError::Alloc(e)
    }
}

/// Product of a dimension list.
#[inline]
pub fn volume(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// Row-major flat index of `coords` within `dims`.
#[inline]
pub fn flat_index(coords: &[usize], dims: &[usize]) -> usize {
    debug_assert_eq!(coords.len(), dims.len());
    let mut idx = 0;
    for (c, d) in coords.iter().zip(dims) {
        debug_assert!(c < d, "coordinate {c} out of bound {d}");
        idx = idx * d + c;
    }
    idx
}

/// Inverse of [`flat_index`].
#[inline]
pub fn unflatten(mut idx: usize, dims: &[usize]) -> Vec<usize> {
    let mut coords = vec![0; dims.len()];
    for i in (0..dims.len()).rev() {
        coords[i] = idx % dims[i];
        idx /= dims[i];
    }
    debug_assert_eq!(idx, 0);
    coords
}

/// `ceil(a / b)`.
#[inline]
pub fn div_ceil(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_roundtrip() {
        let dims = [3usize, 4, 5];
        for i in 0..volume(&dims) {
            let c = unflatten(i, &dims);
            assert_eq!(flat_index(&c, &dims), i);
        }
    }

    #[test]
    fn flat_index_is_row_major() {
        // Matches Table 1's t = t_d·T_h·T_w + t_h·T_w + t_w.
        assert_eq!(flat_index(&[1, 2, 3], &[4, 5, 6]), 30 + 2 * 6 + 3);
    }

    #[test]
    fn div_ceil_works() {
        assert_eq!(div_ceil(10, 5), 2);
        assert_eq!(div_ceil(11, 5), 3);
        assert_eq!(div_ceil(1, 5), 1);
        assert_eq!(div_ceil(5, 1), 5);
    }
}
