//! # wino-workloads
//!
//! The evaluation's data side: the Table 2 layer catalogue
//! ([`catalog`]), deterministic input/kernel generators matching §5.3's
//! distributions ([`generate`]), and reporting metrics ([`metrics`]).
//!
//! Layers are addressed by their catalogue id (network + layer label):
//!
//! ```
//! use wino_workloads::{effective_gflops, scaled_catalog, tile_sweep};
//!
//! let vgg = scaled_catalog().into_iter().find(|l| l.id() == "VGG 3.2").unwrap();
//! assert_eq!(vgg.rank(), 2);
//!
//! // Fig. 5's tile sweep covers F(2²)..F(6²) in 2-D, F(2³)..F(4³) in 3-D.
//! assert!(tile_sweep(vgg.rank()).contains(&vec![4, 4]));
//!
//! // Effective GFLOP/s uses *direct-method* FLOPs regardless of the
//! // algorithm measured — the paper's Fig. 5 normaliser.
//! let at_1ms = effective_gflops(&vgg.shape, 1.0);
//! assert_eq!(at_1ms, vgg.shape.direct_flops() as f64 / 1e-3 / 1e9);
//! ```

pub mod catalog;
pub mod generate;
pub mod metrics;

pub use catalog::{budden_sample_net, full_catalog, scaled_catalog, tile_sweep, Layer, Network};
pub use generate::{pretrained_kernels, uniform_input, xavier_kernels};
pub use metrics::{effective_gflops, mvox_per_sec, time_best, Timing};
