//! # wino-workloads
//!
//! The evaluation's data side: the Table 2 layer catalogue
//! ([`catalog`]), deterministic input/kernel generators matching §5.3's
//! distributions ([`generate`]), and reporting metrics ([`metrics`]).

pub mod catalog;
pub mod generate;
pub mod metrics;

pub use catalog::{budden_sample_net, full_catalog, scaled_catalog, tile_sweep, Layer, Network};
pub use generate::{pretrained_kernels, uniform_input, xavier_kernels};
pub use metrics::{effective_gflops, mvox_per_sec, time_best, Timing};
