//! Deterministic data generators for the evaluation (§5.3).
//!
//! * Inputs: uniform `[-0.1, 0.1]` — the paper's image distribution.
//! * Kernels, training mode: Xavier/Glorot initialisation
//!   (uniform `±√(6 / (fan_in + fan_out))`).
//! * Kernels, inference mode: pseudo-pretrained — Xavier-shaped draws with
//!   a deterministic per-layer seed (the substitution for the downloaded
//!   VGG/C3D Caffe weights; see DESIGN.md).
//!
//! All generators are seeded so every experiment is reproducible bit for
//! bit.

use wino_rng::Rng;
use wino_tensor::{ConvShape, SimpleImage, SimpleKernels};

/// Uniform `[-0.1, 0.1]` input batch (the paper's input distribution).
pub fn uniform_input(shape: &ConvShape, seed: u64) -> SimpleImage {
    let mut rng = Rng::seed_from_u64(seed);
    let mut img = SimpleImage::zeros(shape.batch, shape.in_channels, &shape.image_dims);
    for v in img.data.iter_mut() {
        *v = rng.range_f32(-0.1, 0.1);
    }
    img
}

/// Xavier-initialised kernels (training-mode distribution).
pub fn xavier_kernels(shape: &ConvShape, seed: u64) -> SimpleKernels {
    let mut rng = Rng::seed_from_u64(seed);
    let ker_vol: usize = shape.kernel_dims.iter().product();
    let fan_in = shape.in_channels * ker_vol;
    let fan_out = shape.out_channels * ker_vol;
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let mut k = SimpleKernels::zeros(shape.out_channels, shape.in_channels, &shape.kernel_dims);
    for v in k.data.iter_mut() {
        *v = rng.range_f32(-bound, bound);
    }
    k
}

/// Pseudo-pretrained kernels for inference-error measurements: Xavier
/// magnitudes with a sparsity/decay profile loosely matching trained
/// filters (a few large weights, many small ones).
pub fn pretrained_kernels(shape: &ConvShape, seed: u64) -> SimpleKernels {
    let mut rng = Rng::seed_from_u64(seed ^ 0x57ab_1e5e_ed00_d1ce);
    let ker_vol: usize = shape.kernel_dims.iter().product();
    let fan_in = shape.in_channels * ker_vol;
    let fan_out = shape.out_channels * ker_vol;
    let bound = (6.0 / (fan_in + fan_out) as f64).sqrt() as f32;
    let mut k = SimpleKernels::zeros(shape.out_channels, shape.in_channels, &shape.kernel_dims);
    for v in k.data.iter_mut() {
        // Heavy-tailed-ish: square a uniform to concentrate mass near 0,
        // keep the sign — trained filters are mostly small with a few
        // strong weights.
        let u: f32 = rng.range_f32(-1.0, 1.0);
        *v = u * u.abs() * bound * 2.0;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(2, 32, 48, &[12, 12], &[3, 3], &[1, 1]).unwrap()
    }

    #[test]
    fn inputs_are_in_range_and_deterministic() {
        let a = uniform_input(&shape(), 7);
        let b = uniform_input(&shape(), 7);
        let c = uniform_input(&shape(), 8);
        assert_eq!(a.data, b.data);
        assert_ne!(a.data, c.data);
        assert!(a.data.iter().all(|&v| (-0.1..0.1).contains(&v)));
        // Not degenerate.
        let mean: f32 = a.data.iter().sum::<f32>() / a.data.len() as f32;
        assert!(mean.abs() < 0.01);
    }

    #[test]
    fn xavier_bound_matches_formula() {
        let s = shape();
        let k = xavier_kernels(&s, 1);
        let bound = (6.0f64 / ((32 * 9 + 48 * 9) as f64)).sqrt() as f32;
        assert!(k.data.iter().all(|&v| v.abs() <= bound));
        let max = k.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        assert!(max > bound * 0.9, "draws should fill the range");
    }

    #[test]
    fn pretrained_is_heavier_tailed_than_xavier() {
        let s = shape();
        let x = xavier_kernels(&s, 1);
        let p = pretrained_kernels(&s, 1);
        let small = |d: &[f32], thr: f32| d.iter().filter(|v| v.abs() < thr).count();
        let bound = (6.0f64 / ((32 * 9 + 48 * 9) as f64)).sqrt() as f32;
        // Squaring concentrates more mass near zero.
        assert!(small(&p.data, bound * 0.25) > small(&x.data, bound * 0.25));
    }

    #[test]
    fn kernels_deterministic_per_seed() {
        let s = shape();
        assert_eq!(xavier_kernels(&s, 3).data, xavier_kernels(&s, 3).data);
        assert_ne!(xavier_kernels(&s, 3).data, xavier_kernels(&s, 4).data);
        assert_ne!(xavier_kernels(&s, 3).data, pretrained_kernels(&s, 3).data);
    }
}
