//! The benchmarked convolutional layers of Table 2: VGG (detection, 2-D),
//! FusionNet (segmentation, 2-D, batch 1), C3D (spatiotemporal 3-D) and
//! 3D U-Net (volumetric segmentation, 3-D, batch 1).
//!
//! Every layer is available at the paper's full size and in a *scaled*
//! variant (smaller batch / spatial extent, identical structure) so the
//! whole Fig. 5 sweep runs in minutes on a laptop-class machine; the
//! scaled variant preserves the properties the algorithms care about
//! (many more tiles than panel rows, tall-skinny stage-2 matrices).

use wino_tensor::ConvShape;

/// Which network a layer belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Network {
    Vgg,
    FusionNet,
    C3d,
    UNet3d,
}

impl Network {
    pub fn name(self) -> &'static str {
        match self {
            Network::Vgg => "VGG",
            Network::FusionNet => "FusionNet",
            Network::C3d => "C3D",
            Network::UNet3d => "3DUNet",
        }
    }
}

/// One row of Table 2.
#[derive(Clone, Debug)]
pub struct Layer {
    pub network: Network,
    /// The paper's layer label ("1.2", "C3b", …).
    pub label: &'static str,
    pub shape: ConvShape,
}

impl Layer {
    /// `"VGG 3.2"`-style display id.
    pub fn id(&self) -> String {
        format!("{} {}", self.network.name(), self.label)
    }

    /// Spatial rank (2 or 3 in the catalogue).
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }
}

#[allow(clippy::too_many_arguments)] // one argument per Table 2 column
fn layer(
    network: Network,
    label: &'static str,
    b: usize,
    c: usize,
    cp: usize,
    img: &[usize],
    pad: &[usize],
    ker: &[usize],
) -> Layer {
    Layer {
        network,
        label,
        shape: ConvShape::new(b, c, cp, img, ker, pad).expect("catalogue layer must be valid"),
    }
}

/// The full Table 2 catalogue at paper-reported sizes.
pub fn full_catalog() -> Vec<Layer> {
    use Network::*;
    vec![
        layer(Vgg, "1.2", 64, 64, 64, &[224, 224], &[1, 1], &[3, 3]),
        layer(Vgg, "2.2", 64, 128, 128, &[112, 112], &[1, 1], &[3, 3]),
        layer(Vgg, "3.2", 64, 256, 256, &[56, 56], &[1, 1], &[3, 3]),
        layer(Vgg, "4.2", 64, 512, 512, &[28, 28], &[1, 1], &[3, 3]),
        layer(Vgg, "5.2", 64, 512, 512, &[14, 14], &[1, 1], &[3, 3]),
        layer(FusionNet, "1.2", 1, 64, 64, &[640, 640], &[0, 0], &[3, 3]),
        layer(FusionNet, "2.2", 1, 128, 128, &[320, 320], &[0, 0], &[3, 3]),
        layer(FusionNet, "3.2", 1, 256, 256, &[160, 160], &[0, 0], &[3, 3]),
        layer(FusionNet, "4.2", 1, 512, 512, &[80, 80], &[0, 0], &[3, 3]),
        layer(FusionNet, "5.2", 1, 1024, 1024, &[40, 40], &[0, 0], &[3, 3]),
        layer(C3d, "C2a", 32, 64, 128, &[16, 56, 56], &[1, 1, 1], &[3, 3, 3]),
        layer(C3d, "C3b", 32, 256, 256, &[8, 28, 28], &[1, 1, 1], &[3, 3, 3]),
        layer(C3d, "C4b", 32, 512, 512, &[4, 14, 14], &[1, 1, 1], &[3, 3, 3]),
        layer(UNet3d, "1.2", 1, 32, 64, &[114, 130, 130], &[0, 0, 0], &[3, 3, 3]),
        layer(UNet3d, "2.2", 1, 64, 128, &[54, 62, 62], &[0, 0, 0], &[3, 3, 3]),
        layer(UNet3d, "3.2", 1, 128, 256, &[26, 30, 30], &[0, 0, 0], &[3, 3, 3]),
    ]
}

/// The same catalogue scaled to laptop size: batch capped at 2, channels
/// capped at 64, spatial extents quartered (minimum 14 per dimension) —
/// structure, padding and kernels identical.
pub fn scaled_catalog() -> Vec<Layer> {
    full_catalog()
        .into_iter()
        .map(|l| {
            let s = &l.shape;
            let img: Vec<usize> = s.image_dims.iter().map(|&d| (d / 4).max(14)).collect();
            Layer {
                network: l.network,
                label: l.label,
                shape: ConvShape::new(
                    s.batch.min(2),
                    s.in_channels.min(64),
                    s.out_channels.min(64),
                    &img,
                    &s.kernel_dims,
                    &s.padding,
                )
                .expect("scaled layer must be valid"),
            }
        })
        .collect()
}

/// The sample network from Budden et al. \[15\] used in §5.1's throughput
/// comparison: 3 layers of 32 channels with the "unusual" 4×4 kernels.
pub fn budden_sample_net(image: usize) -> Vec<Layer> {
    use Network::*;
    (0..3)
        .map(|i| {
            let label = ["b1", "b2", "b3"][i];
            layer(Vgg, label, 1, 32, 32, &[image, image], &[0, 0], &[4, 4])
        })
        .collect()
}

/// Default `F(m, r)` tile-size sweep for a layer of the given rank —
/// mirrors the per-layer columns of Fig. 5.
pub fn tile_sweep(rank: usize) -> Vec<Vec<usize>> {
    match rank {
        2 => vec![vec![2, 2], vec![3, 3], vec![4, 4], vec![5, 5], vec![6, 6]],
        3 => vec![vec![2, 2, 2], vec![3, 3, 3], vec![4, 4, 4]],
        _ => vec![vec![2; rank], vec![4; rank]],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_catalog_matches_table2() {
        let cat = full_catalog();
        assert_eq!(cat.len(), 16);
        let vgg32 = cat.iter().find(|l| l.id() == "VGG 3.2").unwrap();
        assert_eq!(vgg32.shape.batch, 64);
        assert_eq!(vgg32.shape.in_channels, 256);
        assert_eq!(vgg32.shape.image_dims, vec![56, 56]);
        let c3b = cat.iter().find(|l| l.id() == "C3D C3b").unwrap();
        assert_eq!(c3b.shape.image_dims, vec![8, 28, 28]);
        assert_eq!(c3b.shape.kernel_dims, vec![3, 3, 3]);
        let fn52 = cat.iter().find(|l| l.id() == "FusionNet 5.2").unwrap();
        assert_eq!(fn52.shape.batch, 1);
        assert_eq!(fn52.shape.in_channels, 1024);
        assert_eq!(fn52.shape.padding, vec![0, 0]);
    }

    #[test]
    fn all_layers_have_vector_multiple_channels() {
        for l in full_catalog().iter().chain(scaled_catalog().iter()) {
            assert_eq!(l.shape.in_channels % 16, 0, "{}", l.id());
            assert_eq!(l.shape.out_channels % 16, 0, "{}", l.id());
        }
    }

    #[test]
    fn scaled_catalog_preserves_structure() {
        let full = full_catalog();
        let scaled = scaled_catalog();
        assert_eq!(full.len(), scaled.len());
        for (f, s) in full.iter().zip(&scaled) {
            assert_eq!(f.id(), s.id());
            assert_eq!(f.shape.kernel_dims, s.shape.kernel_dims);
            assert_eq!(f.shape.padding, s.shape.padding);
            assert!(s.shape.batch <= 2);
            assert!(s.shape.in_channels <= 64);
            // Scaled layers are still valid conv shapes with many tiles.
            assert!(s.shape.out_dims().iter().all(|&d| d >= 12));
        }
    }

    #[test]
    fn budden_net_shape() {
        let net = budden_sample_net(64);
        assert_eq!(net.len(), 3);
        for l in &net {
            assert_eq!(l.shape.kernel_dims, vec![4, 4]);
            assert_eq!(l.shape.in_channels, 32);
        }
    }

    #[test]
    fn tile_sweep_ranks() {
        assert!(tile_sweep(2).iter().all(|m| m.len() == 2));
        assert!(tile_sweep(3).iter().all(|m| m.len() == 3));
        assert!(!tile_sweep(2).is_empty());
    }
}
