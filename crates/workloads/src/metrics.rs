//! Reporting metrics: timing summaries, effective GFLOP/s, MVox/s (the
//! Budden et al. comparison unit), and the Table 3 error statistics.

use std::time::Instant;

use wino_tensor::ConvShape;

/// Best / mean milliseconds over a set of repetitions.
#[derive(Clone, Copy, Debug)]
pub struct Timing {
    pub best_ms: f64,
    pub mean_ms: f64,
    pub reps: usize,
}

/// Time `f` with one warm-up call plus `reps` measured calls.
pub fn time_best<F: FnMut()>(reps: usize, mut f: F) -> Timing {
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut sum = 0.0;
    let reps = reps.max(1);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        best = best.min(dt);
        sum += dt;
    }
    Timing { best_ms: best, mean_ms: sum / reps as f64, reps }
}

/// Effective GFLOP/s: direct-method FLOPs divided by wall time (the Fig. 5
/// normaliser — algorithms that *do less work* score above the machine
/// peak, which is the point of Winograd).
pub fn effective_gflops(shape: &ConvShape, ms: f64) -> f64 {
    shape.direct_flops() as f64 / (ms * 1e-3) / 1e9
}

/// Output mega-voxels per second (the throughput unit of the Budden et
/// al. comparison in §5.1).
pub fn mvox_per_sec(shape: &ConvShape, ms: f64) -> f64 {
    let out_vox: f64 =
        shape.batch as f64 * shape.out_dims().iter().map(|&d| d as f64).product::<f64>();
    out_vox / (ms * 1e-3) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_counts_reps() {
        let mut calls = 0;
        let t = time_best(3, || calls += 1);
        assert_eq!(calls, 4); // warm-up + 3
        assert_eq!(t.reps, 3);
        assert!(t.best_ms <= t.mean_ms + 1e-9);
    }

    #[test]
    fn gflops_formula() {
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[1, 1]).unwrap();
        // direct flops = 2*16*16*100*9 = 460800; at 1 ms -> 0.4608 GFLOP/s.
        let g = effective_gflops(&s, 1.0);
        assert!((g - 0.4608).abs() < 1e-9);
    }

    #[test]
    fn mvox_formula() {
        let s = ConvShape::new(2, 16, 16, &[100, 100], &[3, 3], &[1, 1]).unwrap();
        // out vox = 2*100*100 = 20_000; at 1 ms → 20 MVox/s.
        assert!((mvox_per_sec(&s, 1.0) - 20.0).abs() < 1e-9);
    }
}
