//! Property-style differential testing of the machine-code generator,
//! driven by the seeded `wino-rng` generator (no registry access, so no
//! `proptest`): for arbitrary legal kernel shapes and random data, the
//! JIT kernel must agree with the scalar reference (and hence with the
//! monomorphised engine, which is tested against the same oracle).

use wino_gemm::microkernel_reference;
use wino_jit::{JitKernel, JitOutput};
use wino_rng::Rng;
use wino_simd::AlignedVec;

fn filled(n: usize, seed: u64) -> AlignedVec {
    let mut v = AlignedVec::zeroed(n);
    let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    for x in v.iter_mut() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *x = ((s >> 40) as f32 / (1u64 << 23) as f32) - 1.0;
    }
    v
}

#[test]
fn jit_block_kernel_matches_reference() {
    if !wino_simd::cpu_has_avx512f() {
        return;
    }
    let mut rng = Rng::seed_from_u64(0x317b);
    for _ in 0..32 {
        let n_blk = rng.range_usize(1, 30);
        let c_blk = rng.range_usize(1, 96);
        let cp_blk = rng.range_usize(1, 6) * 16;
        let beta = rng.next_bool();
        let seed = rng.next_u64() % 10_000;
        let u = filled(n_blk * c_blk, seed);
        let v = filled(c_blk * cp_blk, seed ^ 1);
        let x0 = filled(n_blk * cp_blk, seed ^ 2);
        let mut x_jit = x0.clone();
        let mut x_ref: Vec<f32> = x0.as_slice().to_vec();

        let kern = JitKernel::compile(n_blk, c_blk, cp_blk, beta).unwrap();
        unsafe { kern.call(u.as_ptr(), v.as_ptr(), x_jit.as_mut_ptr()) };
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, beta);
        for i in 0..n_blk * cp_blk {
            let (a, b) = (x_jit[i], x_ref[i]);
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                "n_blk={n_blk} c_blk={c_blk} cp_blk={cp_blk} beta={beta} elem {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn jit_scatter_kernel_matches_reference() {
    if !wino_simd::cpu_has_avx512f() {
        return;
    }
    let mut rng = Rng::seed_from_u64(0x5ca7);
    for _ in 0..32 {
        let n_blk = rng.range_usize(1, 12);
        let c_blk = rng.range_usize(1, 48);
        let cp_q = rng.range_usize(1, 4);
        let beta = rng.next_bool();
        let stride_extra = rng.range_usize(0, 3); // group_stride = cp-group + padding·16
        let seed = rng.next_u64() % 10_000;
        let cp_blk = cp_q * 16;
        let group_stride = 16 + stride_extra * 16;
        let u = filled(n_blk * c_blk, seed);
        let v = filled(c_blk * cp_blk, seed ^ 3);
        let x0 = filled(n_blk * cp_blk, seed ^ 4);
        let mut x_ref: Vec<f32> = x0.as_slice().to_vec();
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, beta);

        let row_span = 1024usize;
        let mut arena = AlignedVec::zeroed(n_blk * row_span + cp_q * group_stride);
        let base = arena.as_mut_ptr();
        let row_ptrs: Vec<*mut f32> =
            (0..n_blk).map(|j| unsafe { base.add(j * row_span) }).collect();

        let kern = JitKernel::compile_with_output(
            n_blk,
            c_blk,
            cp_blk,
            beta,
            JitOutput::Scatter { group_stride },
        )
        .unwrap();
        unsafe { kern.call_scatter(u.as_ptr(), v.as_ptr(), x0.as_ptr(), row_ptrs.as_ptr()) };
        wino_simd::sfence();

        for j in 0..n_blk {
            for q in 0..cp_q {
                for lane in 0..16 {
                    let got = arena[j * row_span + q * group_stride + lane];
                    let want = x_ref[j * cp_blk + q * 16 + lane];
                    assert!(
                        (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                        "row {j} group {q} lane {lane}: {got} vs {want}"
                    );
                }
            }
        }
    }
}
