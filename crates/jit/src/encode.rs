//! A small x86-64 encoder for exactly the instruction repertoire of the
//! paper's GEMM micro-kernel (§4.3.1): EVEX-encoded AVX-512 loads, stores,
//! streaming stores, broadcast FMAs, register zeroing, and legacy
//! prefetch hints.
//!
//! EVEX layout refresher (Intel SDM Vol. 2, §2.7):
//!
//! ```text
//! 0x62 | P0: R̄ X̄ B̄ R̄' 0 m m m | P1: W v̄v̄v̄v̄ 1 p p | P2: z L'L b V̄' a a a
//! ```
//!
//! All extension bits (R, X, B, R', V') are stored inverted. We always use
//! 512-bit vectors (`L'L = 10`), no masking (`aaa = 000`, `z = 0`), and
//! plain disp32 addressing (`mod = 10`) with bases in the low eight GPRs,
//! so no SIB bytes or compressed displacements are needed.

/// Opcode map selector.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Map {
    /// 0F
    M0F = 1,
    /// 0F 38
    M0F38 = 2,
}

/// Mandatory-prefix selector (`pp`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum Pp {
    None = 0,
    P66 = 1,
}

/// General-purpose registers usable as bases (SysV argument registers
/// plus the caller-saved scratch R8 used by the scatter variant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Gpr {
    Rdi = 7,
    Rsi = 6,
    Rdx = 2,
    Rcx = 1,
    R8 = 8,
}

/// The r/m operand.
#[derive(Clone, Copy)]
pub enum Rm {
    /// Another zmm register.
    Zmm(u8),
    /// `[base + disp32]`.
    Mem { base: Gpr, disp: i32 },
}

/// Growable code buffer.
#[derive(Default)]
pub struct Asm {
    pub code: Vec<u8>,
}

impl Asm {
    pub fn new() -> Asm {
        Asm::default()
    }

    pub fn len(&self) -> usize {
        self.code.len()
    }

    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }

    /// Emit one EVEX instruction with a zmm `reg` operand, optional second
    /// source `vvvv`, and an `rm` operand. `bcast` sets the EVEX.b bit
    /// (embedded 32-bit broadcast for memory operands).
    #[allow(clippy::too_many_arguments)] // mirrors the encoding fields
    fn evex(&mut self, map: Map, pp: Pp, opcode: u8, reg: u8, vvvv: Option<u8>, rm: Rm, bcast: bool) {
        debug_assert!(reg < 32);
        let (xbar, bbar, modrm_rm, mem) = match rm {
            Rm::Zmm(r) => {
                debug_assert!(r < 32);
                ((!(r >> 4)) & 1, (!(r >> 3)) & 1, r & 7, None)
            }
            Rm::Mem { base, disp } => {
                let b = base as u8;
                debug_assert!(b & 7 != 4, "rsp/r12 base needs SIB");
                (1, (!(b >> 3)) & 1, b & 7, Some(disp))
            }
        };
        let rbar = (!(reg >> 3)) & 1;
        let rpbar = (!(reg >> 4)) & 1;
        let p0 = (rbar << 7) | (xbar << 6) | (bbar << 5) | (rpbar << 4) | (map as u8);
        let v = vvvv.unwrap_or(0);
        debug_assert!(v < 32);
        let vbar = (!v) & 0xF;
        let vpbar = (!(v >> 4)) & 1;
        let p1 = (vbar << 3) | 0b100 | (pp as u8); // W = 0 always here
        let p2 = (0b10 << 5) | ((bcast as u8) << 4) | (vpbar << 3); // z=0, aaa=0
        self.code.extend_from_slice(&[0x62, p0, p1, p2, opcode]);
        match mem {
            Some(disp) => {
                // mod = 10 (disp32), except mod=00 would be shorter — keep
                // uniform disp32 for simplicity.
                self.code.push(0b10_000_000 | ((reg & 7) << 3) | modrm_rm);
                self.code.extend_from_slice(&disp.to_le_bytes());
            }
            None => {
                self.code.push(0b11_000_000 | ((reg & 7) << 3) | modrm_rm);
            }
        }
    }

    /// `vmovups zmm, [base + disp]` — unaligned 512-bit load.
    pub fn vmovups_load(&mut self, zmm: u8, base: Gpr, disp: i32) {
        self.evex(Map::M0F, Pp::None, 0x10, zmm, None, Rm::Mem { base, disp }, false);
    }

    /// `vmovups [base + disp], zmm` — unaligned 512-bit store.
    pub fn vmovups_store(&mut self, base: Gpr, disp: i32, zmm: u8) {
        self.evex(Map::M0F, Pp::None, 0x11, zmm, None, Rm::Mem { base, disp }, false);
    }

    /// `vmovntps [base + disp], zmm` — non-temporal 512-bit store
    /// (requires 64-byte alignment).
    pub fn vmovntps(&mut self, base: Gpr, disp: i32, zmm: u8) {
        self.evex(Map::M0F, Pp::None, 0x2B, zmm, None, Rm::Mem { base, disp }, false);
    }

    /// `vfmadd231ps zmm_dst, zmm_src, dword bcst [base + disp]` —
    /// `dst += src · broadcast(mem32)`, the paper's scalar-vector FMA.
    pub fn vfmadd231ps_bcast(&mut self, dst: u8, src: u8, base: Gpr, disp: i32) {
        self.evex(Map::M0F38, Pp::P66, 0xB8, dst, Some(src), Rm::Mem { base, disp }, true);
    }

    /// `vpxord zmm, zmm, zmm` — zero a register (AVX-512F, unlike the
    /// EVEX `vxorps` which needs AVX-512DQ).
    pub fn vzero(&mut self, zmm: u8) {
        self.evex(Map::M0F, Pp::P66, 0xEF, zmm, Some(zmm), Rm::Zmm(zmm), false);
    }

    /// `prefetcht0 [base + disp]` (legacy encoding).
    pub fn prefetcht0(&mut self, base: Gpr, disp: i32) {
        self.prefetch(1, base, disp);
    }

    /// `prefetcht1 [base + disp]`.
    pub fn prefetcht1(&mut self, base: Gpr, disp: i32) {
        self.prefetch(2, base, disp);
    }

    fn prefetch(&mut self, hint: u8, base: Gpr, disp: i32) {
        let b = base as u8;
        debug_assert!(b & 7 != 4);
        if b >= 8 {
            self.code.push(0x41); // REX.B
        }
        self.code.extend_from_slice(&[0x0F, 0x18, 0b10_000_000 | (hint << 3) | (b & 7)]);
        self.code.extend_from_slice(&disp.to_le_bytes());
    }

    /// `mov dst, qword [base + disp]` — 64-bit GPR load (used to fetch
    /// per-row scatter destinations from the pointer table).
    pub fn mov_load64(&mut self, dst: Gpr, base: Gpr, disp: i32) {
        let d = dst as u8;
        let b = base as u8;
        debug_assert!(b & 7 != 4, "rsp/r12 base needs SIB");
        let rex = 0x48 | ((d >> 3) << 2) | (b >> 3); // REX.W + R + B
        self.code.extend_from_slice(&[rex, 0x8B, 0b10_000_000 | ((d & 7) << 3) | (b & 7)]);
        self.code.extend_from_slice(&disp.to_le_bytes());
    }

    /// `sfence` — drain the store buffers after streaming stores.
    pub fn sfence(&mut self) {
        self.code.extend_from_slice(&[0x0F, 0xAE, 0xF8]);
    }

    /// `ret`.
    pub fn ret(&mut self) {
        self.code.push(0xC3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Cross-check a handful of encodings against byte sequences produced
    /// by a reference assembler (GNU as).
    #[test]
    fn known_encodings() {
        // vmovups zmm0, [rdi+0x40]
        let mut a = Asm::new();
        a.vmovups_load(0, Gpr::Rdi, 0x40);
        assert_eq!(a.code, vec![0x62, 0xF1, 0x7C, 0x48, 0x10, 0x87, 0x40, 0, 0, 0]);

        // vmovups [rdx+0], zmm5
        let mut a = Asm::new();
        a.vmovups_store(Gpr::Rdx, 0, 5);
        assert_eq!(a.code, vec![0x62, 0xF1, 0x7C, 0x48, 0x11, 0xAA, 0, 0, 0, 0]);

        // vmovups zmm30, [rsi+0x100]: zmm30 has bit3 and bit4 set →
        // R̄ = 0, R̄' = 0.
        let mut a = Asm::new();
        a.vmovups_load(30, Gpr::Rsi, 0x100);
        assert_eq!(a.code, vec![0x62, 0x61, 0x7C, 0x48, 0x10, 0xB6, 0, 1, 0, 0]);

        // vfmadd231ps zmm3, zmm30, dword bcst [rdi+4]
        // vvvv = ~30 & 15 = 1, V̄' = 0, pp = 66, map = 0F38, b = 1.
        let mut a = Asm::new();
        a.vfmadd231ps_bcast(3, 30, Gpr::Rdi, 4);
        assert_eq!(a.code, vec![0x62, 0xF2, 0x0D, 0x50, 0xB8, 0x9F, 4, 0, 0, 0]);

        // vpxord zmm7, zmm7, zmm7
        let mut a = Asm::new();
        a.vzero(7);
        assert_eq!(a.code, vec![0x62, 0xF1, 0x45, 0x48, 0xEF, 0xFF]);

        // prefetcht0 [rsi+0x80]
        let mut a = Asm::new();
        a.prefetcht0(Gpr::Rsi, 0x80);
        assert_eq!(a.code, vec![0x0F, 0x18, 0x8E, 0x80, 0, 0, 0]);

        // ret / sfence
        let mut a = Asm::new();
        a.sfence();
        a.ret();
        assert_eq!(a.code, vec![0x0F, 0xAE, 0xF8, 0xC3]);
    }

    #[test]
    fn gpr_load_and_r8_base() {
        // mov r8, [rcx + 0x10]
        let mut a = Asm::new();
        a.mov_load64(Gpr::R8, Gpr::Rcx, 0x10);
        assert_eq!(a.code, vec![0x4C, 0x8B, 0x81, 0x10, 0, 0, 0]);

        // mov rdx, [rdi + 8]
        let mut a = Asm::new();
        a.mov_load64(Gpr::Rdx, Gpr::Rdi, 8);
        assert_eq!(a.code, vec![0x48, 0x8B, 0x97, 8, 0, 0, 0]);

        // vmovntps [r8 + 0x40], zmm3 — base extension via EVEX.B̄ = 0.
        let mut a = Asm::new();
        a.vmovntps(Gpr::R8, 0x40, 3);
        assert_eq!(a.code, vec![0x62, 0xD1, 0x7C, 0x48, 0x2B, 0x98, 0x40, 0, 0, 0]);
    }

    #[test]
    fn high_registers_set_extension_bits() {
        // vpxord zmm31, zmm31, zmm31: R̄=0, R̄'=0, X̄=0, B̄=0, v̄=0, V̄'=0.
        let mut a = Asm::new();
        a.vzero(31);
        assert_eq!(a.code, vec![0x62, 0x01, 0x05, 0x40, 0xEF, 0xFF]);
    }

    #[test]
    fn negative_displacements() {
        let mut a = Asm::new();
        a.vmovups_load(1, Gpr::Rcx, -64);
        let disp = &a.code[6..10];
        assert_eq!(disp, (-64i32).to_le_bytes());
    }
}
