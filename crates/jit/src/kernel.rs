//! Runtime code generation of the batched-GEMM micro-kernel (§4.3.1).
//!
//! For each `(n_blk, C_blk, C'_blk, β)` an x86-64 function is emitted on
//! demand — fully unrolled, with precomputed byte offsets, exactly as the
//! paper describes ("we can optimally unroll loops, and pre-compute all
//! memory access offsets"). The generated code mirrors the structure of
//! `wino_gemm::micro`:
//!
//! ```text
//! fn(u: *const f32 /*rdi*/, v: *const f32 /*rsi*/, x: *mut f32 /*rdx*/)
//! for q in 0..C'_blk/16:
//!     zmm0..zmm{n_blk-1} ← X̂ rows (β = 1) or zeroed (β = 0)
//!     for k in 0..C_blk:
//!         zmm30 ← V̂[k, q·16..]           (one look-ahead vector load)
//!         prefetcht0 upcoming V̂ and Û lines
//!         for j in 0..n_blk:
//!             zmm_j += bcst(Û[j,k]) · zmm30   (scalar-vector FMA)
//!     store zmm0..zmm{n_blk-1} back to X̂
//! ret
//! ```
//!
//! Correctness is established by differential testing against the
//! monomorphised Rust kernel and the scalar reference in `wino-gemm`.

use wino_gemm::MAX_N_BLK;
use wino_tensor::BlockedMatrices;

use crate::encode::{Asm, Gpr};
use crate::exec::ExecBuffer;

/// Errors from kernel compilation.
#[derive(Debug)]
pub enum JitError {
    /// The running CPU does not support AVX-512F.
    Avx512Unavailable,
    /// Parameters outside the encodable/legal range (static reason code).
    BadParams(&'static str),
    /// mmap/mprotect failure.
    Os(std::io::Error),
}

impl std::fmt::Display for JitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JitError::Avx512Unavailable => write!(f, "AVX-512F not available on this CPU"),
            JitError::BadParams(s) => write!(f, "bad JIT parameters: {s}"),
            JitError::Os(e) => write!(f, "executable mapping failed: {e}"),
        }
    }
}

impl std::error::Error for JitError {}

/// Look-ahead distance (in `V̂` rows) for L1 prefetch, matching the Rust
/// micro-kernel.
const PF_DIST: usize = 4;

/// Where a compiled kernel writes its result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JitOutput {
    /// Store accumulators back into the contiguous `X̂` block.
    Block,
    /// Operation ⑥: scatter row `j` with non-temporal streaming stores to
    /// `row_ptrs[j] + q·group_stride` floats for each 16-wide column
    /// group `q` (`row_ptrs` is the kernel's 4th argument). The group
    /// stride is baked into the code — it is a per-plan constant.
    Scatter { group_stride: usize },
}

/// A compiled micro-kernel `X̂ = β·X̂ + Û·V̂` for fixed
/// `(n_blk, C_blk, C'_blk, β, output)`.
pub struct JitKernel {
    buf: ExecBuffer,
    n_blk: usize,
    c_blk: usize,
    cp_blk: usize,
    beta: bool,
    output: JitOutput,
    code_bytes: usize,
}

impl JitKernel {
    /// Emit and map a block-output kernel.
    pub fn compile(n_blk: usize, c_blk: usize, cp_blk: usize, beta: bool) -> Result<JitKernel, JitError> {
        Self::compile_with_output(n_blk, c_blk, cp_blk, beta, JitOutput::Block)
    }

    /// Emit and map a kernel with an explicit output mode.
    pub fn compile_with_output(
        n_blk: usize,
        c_blk: usize,
        cp_blk: usize,
        beta: bool,
        output: JitOutput,
    ) -> Result<JitKernel, JitError> {
        if !wino_simd::cpu_has_avx512f() {
            return Err(JitError::Avx512Unavailable);
        }
        if n_blk == 0 || n_blk > MAX_N_BLK {
            return Err(JitError::BadParams("n_blk out of 1..=30"));
        }
        if cp_blk == 0 || !cp_blk.is_multiple_of(16) {
            return Err(JitError::BadParams("cp_blk not a positive multiple of 16"));
        }
        if c_blk == 0 {
            return Err(JitError::BadParams("c_blk = 0"));
        }
        // disp32 bound: the largest offset is c_blk·cp_blk·4 bytes.
        let max_off = (n_blk.max(c_blk) * c_blk.max(cp_blk) + cp_blk) * 4;
        if max_off > i32::MAX as usize / 2 {
            return Err(JitError::BadParams("block too large for disp32 addressing"));
        }

        let mut a = Asm::new();
        let v_reg = 30u8; // current V̂ row; zmm31 is the look-ahead slot
        let qn = cp_blk / 16;
        for q in 0..qn {
            let xq = (q * 16 * 4) as i32;
            let vq = (q * 16 * 4) as i32;
            // Load or zero the accumulators.
            for j in 0..n_blk {
                if beta {
                    a.vmovups_load(j as u8, Gpr::Rdx, xq + (j * cp_blk * 4) as i32);
                } else {
                    a.vzero(j as u8);
                }
            }
            // First V̂ row.
            a.vmovups_load(v_reg, Gpr::Rsi, vq);
            for k in 0..c_blk {
                // Look-ahead load into the other slot (ping-pong 30/31),
                // interleaved before the FMAs of this iteration.
                let cur = if k % 2 == 0 { v_reg } else { v_reg + 1 };
                let nxt = if k % 2 == 0 { v_reg + 1 } else { v_reg };
                if k + 1 < c_blk {
                    a.vmovups_load(nxt, Gpr::Rsi, vq + ((k + 1) * cp_blk * 4) as i32);
                }
                if k + PF_DIST < c_blk {
                    a.prefetcht0(Gpr::Rsi, vq + ((k + PF_DIST) * cp_blk * 4) as i32);
                }
                a.prefetcht0(Gpr::Rdi, ((k + PF_DIST) * 4) as i32);
                for j in 0..n_blk {
                    a.vfmadd231ps_bcast(j as u8, cur, Gpr::Rdi, ((j * c_blk + k) * 4) as i32);
                }
            }
            // Store the accumulators.
            match output {
                JitOutput::Block => {
                    for j in 0..n_blk {
                        a.vmovups_store(Gpr::Rdx, xq + (j * cp_blk * 4) as i32, j as u8);
                    }
                }
                JitOutput::Scatter { group_stride } => {
                    // Operation ⑥: fetch each row's destination from the
                    // pointer table (rcx) and stream the register out.
                    let off = (q * group_stride * 4) as i32;
                    for j in 0..n_blk {
                        a.mov_load64(Gpr::R8, Gpr::Rcx, (j * 8) as i32);
                        a.vmovntps(Gpr::R8, off, j as u8);
                    }
                }
            }
        }
        a.ret();
        let code_bytes = a.len();
        let buf = ExecBuffer::from_code(&a.code).map_err(JitError::Os)?;
        Ok(JitKernel { buf, n_blk, c_blk, cp_blk, beta, output, code_bytes })
    }

    pub fn n_blk(&self) -> usize {
        self.n_blk
    }

    pub fn c_blk(&self) -> usize {
        self.c_blk
    }

    pub fn cp_blk(&self) -> usize {
        self.cp_blk
    }

    pub fn beta(&self) -> bool {
        self.beta
    }

    /// Size of the generated machine code in bytes.
    pub fn code_bytes(&self) -> usize {
        self.code_bytes
    }

    pub fn output(&self) -> JitOutput {
        self.output
    }

    /// Invoke a block-output kernel.
    ///
    /// # Safety
    /// * `u` valid for `n_blk·c_blk` reads,
    /// * `v` valid for `c_blk·cp_blk` reads,
    /// * `x` valid for `n_blk·cp_blk` reads and writes,
    /// * the kernel was compiled with [`JitOutput::Block`].
    ///
    /// The buffers must not overlap.
    #[inline]
    pub unsafe fn call(&self, u: *const f32, v: *const f32, x: *mut f32) {
        debug_assert_eq!(self.output, JitOutput::Block);
        let f: extern "sysv64" fn(*const f32, *const f32, *mut f32) =
            std::mem::transmute(self.buf.entry());
        f(u, v, x);
    }

    /// Invoke a scatter-output kernel.
    ///
    /// # Safety
    /// As [`Self::call`], plus:
    /// * the kernel was compiled with [`JitOutput::Scatter`],
    /// * `row_ptrs` holds `n_blk` non-null pointers, each 64-byte aligned
    ///   and valid for `(cp_blk/16 - 1)·group_stride + 16` float writes,
    ///   disjoint from `u`/`v`/`x`,
    /// * `x` is read when `β = 1` (never written).
    ///
    /// Streaming stores require an `sfence` (or barrier) before the data
    /// is read by another thread.
    #[inline]
    pub unsafe fn call_scatter(
        &self,
        u: *const f32,
        v: *const f32,
        x: *const f32,
        row_ptrs: *const *mut f32,
    ) {
        debug_assert!(matches!(self.output, JitOutput::Scatter { .. }));
        let f: extern "sysv64" fn(*const f32, *const f32, *const f32, *const *mut f32) =
            std::mem::transmute(self.buf.entry());
        f(u, v, x, row_ptrs);
    }
}

/// A β = 0 / β = 1 kernel pair for one blocking shape (the unit the
/// paper's runtime generates per layer).
pub struct JitKernelPair {
    pub k0: JitKernel,
    pub k1: JitKernel,
}

impl JitKernelPair {
    pub fn compile(n_blk: usize, c_blk: usize, cp_blk: usize) -> Result<JitKernelPair, JitError> {
        Ok(JitKernelPair {
            k0: JitKernel::compile(n_blk, c_blk, cp_blk, false)?,
            k1: JitKernel::compile(n_blk, c_blk, cp_blk, true)?,
        })
    }
}

/// Batched product `X_t = U_t · V_t` driven entirely by JIT-compiled
/// kernels — the paper's loop order, drop-in comparable with
/// [`wino_gemm::batched_gemm`].
pub fn jit_batched_gemm(
    u: &BlockedMatrices,
    v: &BlockedMatrices,
    x: &mut BlockedMatrices,
    pair: &JitKernelPair,
) {
    assert_eq!(u.t_count(), v.t_count());
    assert_eq!(u.t_count(), x.t_count());
    assert_eq!(u.cols(), v.rows());
    assert_eq!(u.rows(), x.rows());
    assert_eq!(v.cols(), x.cols());
    assert_eq!(u.rb(), pair.k0.n_blk());
    assert_eq!(u.cb(), pair.k0.c_blk());
    assert_eq!(v.cb(), pair.k0.cp_blk());
    assert_eq!(v.rows() % v.rb(), 0);

    let k_blocks = v.rows() / v.rb();
    let x_ptr = x.as_mut_ptr();
    for t in 0..u.t_count() {
        for j in 0..v.col_blocks() {
            for k in 0..k_blocks {
                let kern = if k == 0 { &pair.k0 } else { &pair.k1 };
                for i in 0..u.row_blocks() {
                    // SAFETY: block offsets are in bounds; buffers are
                    // disjoint allocations.
                    unsafe {
                        kern.call(
                            u.as_ptr().add(u.block_offset(i, k, t)),
                            v.as_ptr().add(v.block_offset(k, j, t)),
                            x_ptr.add(x.block_offset(i, j, t)),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_gemm::microkernel_reference;
    use wino_simd::AlignedVec;

    fn have_avx512() -> bool {
        if wino_simd::cpu_has_avx512f() {
            true
        } else {
            eprintln!("skipping JIT test: no AVX-512F on this CPU");
            false
        }
    }

    fn filled(n: usize, seed: u32) -> AlignedVec {
        let mut v = AlignedVec::zeroed(n);
        let mut s = seed.wrapping_mul(0x9E3779B9).wrapping_add(12345);
        for x in v.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = ((s >> 10) as f32 / (1 << 22) as f32) - 1.0;
        }
        v
    }

    fn check(n_blk: usize, c_blk: usize, cp_blk: usize, beta: bool) {
        let u = filled(n_blk * c_blk, 1);
        let v = filled(c_blk * cp_blk, 2);
        let x0 = filled(n_blk * cp_blk, 3);
        let mut x_jit = x0.clone();
        let mut x_ref: Vec<f32> = x0.as_slice().to_vec();

        let kern = JitKernel::compile(n_blk, c_blk, cp_blk, beta).unwrap();
        // SAFETY: buffers are sized to the compiled block shape; AVX-512
        // availability was checked by the caller.
        unsafe { kern.call(u.as_ptr(), v.as_ptr(), x_jit.as_mut_ptr()) };
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, beta);
        for i in 0..n_blk * cp_blk {
            assert!(
                (x_jit[i] - x_ref[i]).abs() <= 1e-4 * x_ref[i].abs().max(1.0),
                "n_blk={n_blk} c_blk={c_blk} cp_blk={cp_blk} beta={beta} elem {i}: {} vs {}",
                x_jit[i],
                x_ref[i]
            );
        }
    }

    #[test]
    fn all_n_blk_values_match_reference() {
        if !have_avx512() {
            return;
        }
        for n_blk in 1..=MAX_N_BLK {
            check(n_blk, 32, 32, false);
        }
    }

    #[test]
    fn beta_accumulates() {
        if !have_avx512() {
            return;
        }
        for n_blk in [1, 8, 16, 29, 30] {
            check(n_blk, 48, 32, true);
        }
    }

    #[test]
    fn paper_blocking_sizes() {
        if !have_avx512() {
            return;
        }
        check(8, 128, 128, false);
        check(8, 128, 128, true);
        check(14, 128, 128, true);
        check(30, 64, 64, false);
        check(6, 512, 32, true);
    }

    #[test]
    fn odd_reduction_lengths() {
        if !have_avx512() {
            return;
        }
        // c_blk is not constrained to multiples of 16 at the kernel level.
        check(4, 1, 16, false);
        check(4, 3, 16, true);
        check(7, 33, 48, false);
    }

    #[test]
    fn multiple_column_groups() {
        if !have_avx512() {
            return;
        }
        check(5, 16, 64, false);
        check(5, 16, 128, true);
    }

    #[test]
    fn jit_gemm_matches_rust_gemm() {
        if !have_avx512() {
            return;
        }
        let (t, rows, c, cp, nb, cb, cpb) = (3, 37, 64, 64, 7, 32, 32);
        let mut u = BlockedMatrices::new(t, rows, c, nb, cb);
        let mut v = BlockedMatrices::new(t, c, cp, cb, cpb);
        for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
            *f = ((i * 31) % 17) as f32 * 0.1 - 0.8;
        }
        for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
            *f = ((i * 13) % 23) as f32 * 0.1 - 1.1;
        }
        let mut x_jit = BlockedMatrices::new(t, rows, cp, nb, cpb);
        let mut x_rust = BlockedMatrices::new(t, rows, cp, nb, cpb);
        let pair = JitKernelPair::compile(nb, cb, cpb).unwrap();
        jit_batched_gemm(&u, &v, &mut x_jit, &pair);
        wino_gemm::batched_gemm(&u, &v, &mut x_rust);
        for i in 0..x_jit.as_slice().len() {
            let (a, b) = (x_jit.as_slice()[i], x_rust.as_slice()[i]);
            assert!((a - b).abs() <= 1e-4 * b.abs().max(1.0), "elem {i}: {a} vs {b}");
        }
    }

    #[test]
    fn scatter_kernel_matches_reference() {
        if !have_avx512() {
            return;
        }
        for (n_blk, c_blk, cp_blk, beta) in
            [(3usize, 16usize, 32usize, false), (8, 48, 64, true), (1, 5, 16, false)]
        {
            let u = filled(n_blk * c_blk, 11);
            let v = filled(c_blk * cp_blk, 12);
            let x0 = filled(n_blk * cp_blk, 13);
            let mut x_ref: Vec<f32> = x0.as_slice().to_vec();
            microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, beta);

            // Destination arena: rows 256 floats apart, groups 64 apart.
            let group_stride = 64usize;
            let mut arena = AlignedVec::zeroed(n_blk * 256 + (cp_blk / 16) * group_stride);
            let base = arena.as_mut_ptr();
            // SAFETY: row offsets stay within the arena sized just above.
            let row_ptrs: Vec<*mut f32> = (0..n_blk).map(|j| unsafe { base.add(j * 256) }).collect();

            let kern = JitKernel::compile_with_output(
                n_blk,
                c_blk,
                cp_blk,
                beta,
                JitOutput::Scatter { group_stride },
            )
            .unwrap();
            // SAFETY: buffers match the compiled block shape; row pointers
            // are aligned arena slots with room for every column group.
            unsafe { kern.call_scatter(u.as_ptr(), v.as_ptr(), x0.as_ptr(), row_ptrs.as_ptr()) };
            wino_simd::sfence();

            for j in 0..n_blk {
                for q in 0..cp_blk / 16 {
                    for lane in 0..16 {
                        let got = arena[j * 256 + q * group_stride + lane];
                        let want = x_ref[j * cp_blk + q * 16 + lane];
                        assert!(
                            (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                            "n_blk={n_blk} beta={beta} row {j} group {q} lane {lane}: {got} vs {want}"
                        );
                    }
                }
            }
            // β = 1 reads X but never writes it.
            assert_eq!(x0.as_slice().len(), n_blk * cp_blk);
        }
    }

    #[test]
    fn scatter_kernel_agrees_with_rust_scatter_microkernel() {
        if !have_avx512() {
            return;
        }
        let (n_blk, c_blk, cp_blk) = (4usize, 32usize, 32usize);
        let u = filled(n_blk * c_blk, 21);
        let v = filled(c_blk * cp_blk, 22);
        let x = AlignedVec::zeroed(n_blk * cp_blk);
        let group_stride = 48usize;

        let run = |jit: bool| -> Vec<f32> {
            let mut arena = AlignedVec::zeroed(4096);
            let base = arena.as_mut_ptr();
            // SAFETY: row offsets stay within the 4096-float arena.
            let row_ptrs: Vec<*mut f32> =
                (0..n_blk).map(|j| unsafe { base.add(j * 512) }).collect();
            if jit {
                let kern = JitKernel::compile_with_output(
                    n_blk,
                    c_blk,
                    cp_blk,
                    false,
                    JitOutput::Scatter { group_stride },
                )
                .unwrap();
                // SAFETY: buffers match the compiled block shape; row
                // pointers are aligned arena slots.
                unsafe { kern.call_scatter(u.as_ptr(), v.as_ptr(), x.as_ptr(), row_ptrs.as_ptr()) };
            } else {
                let args = wino_gemm::MicroArgs {
                    u: u.as_ptr(),
                    v: v.as_ptr(),
                    x: x.as_ptr() as *mut f32,
                    c_blk,
                    cp_blk,
                    beta: false,
                    next_u: std::ptr::null(),
                    next_x: std::ptr::null(),
                    output: wino_gemm::Output::Scatter {
                        row_ptrs: row_ptrs.as_ptr(),
                        group_stride,
                        streaming: true,
                    },
                };
                // SAFETY: same buffers and contract as the JIT branch; x
                // is only read (beta = false, scatter output).
                unsafe { wino_gemm::microkernel(n_blk, &args) };
            }
            wino_simd::sfence();
            arena.as_slice().to_vec()
        };
        // The two kernels schedule their FMAs differently, so results may
        // legitimately differ in the last bit — compare to 1e-5 relative,
        // not bitwise.
        let (jit, rust) = (run(true), run(false));
        assert_eq!(jit.len(), rust.len());
        for (i, (a, b)) in jit.iter().zip(&rust).enumerate() {
            assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0), "index {i}: {a} vs {b}");
        }
    }

    #[test]
    fn code_size_is_reported_and_plausible() {
        if !have_avx512() {
            return;
        }
        let k = JitKernel::compile(8, 32, 32, false).unwrap();
        // ~ qn·(c_blk·(n_blk+1) FMAs/loads + overhead) instructions at
        // ~7-10 bytes each.
        assert!(k.code_bytes() > 1000, "{}", k.code_bytes());
        assert!(k.code_bytes() < 100_000);
        assert_eq!(k.n_blk(), 8);
        assert!(!k.beta());
    }

    #[test]
    fn bad_params_rejected() {
        if !have_avx512() {
            return;
        }
        assert!(matches!(JitKernel::compile(0, 16, 16, false), Err(JitError::BadParams(_))));
        assert!(matches!(JitKernel::compile(31, 16, 16, false), Err(JitError::BadParams(_))));
        assert!(matches!(JitKernel::compile(8, 16, 15, false), Err(JitError::BadParams(_))));
        assert!(matches!(JitKernel::compile(8, 0, 16, false), Err(JitError::BadParams(_))));
    }
}
