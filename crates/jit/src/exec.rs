//! Executable memory for runtime-generated code.
//!
//! The paper's artifact JIT-compiles assembly into a shared library and
//! loads it; the minimal in-process equivalent is an anonymous `mmap`
//! that is filled while writable and then flipped to read+execute
//! (W^X discipline — the page is never writable and executable at once).

use std::ffi::{c_int, c_void};
use std::io;

// Minimal raw bindings to the C runtime's mapping calls. Rust's std links
// against libc on every supported unix target, so declaring the symbols
// directly avoids an external `libc` crate dependency (this workspace must
// build with no registry access).
mod sys {
    use super::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const PROT_WRITE: c_int = 2;
    pub const PROT_EXEC: c_int = 4;
    pub const MAP_PRIVATE: c_int = 0x02;
    #[cfg(target_os = "linux")]
    pub const MAP_ANONYMOUS: c_int = 0x20;
    #[cfg(not(target_os = "linux"))]
    pub const MAP_ANONYMOUS: c_int = 0x1000; // BSD/macOS MAP_ANON

    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn mprotect(addr: *mut c_void, len: usize, prot: c_int) -> c_int;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

/// A page-aligned, read+execute mapping containing generated code.
pub struct ExecBuffer {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the mapping is immutable (RX) after construction.
unsafe impl Send for ExecBuffer {}
// SAFETY: shared references only ever read/execute the immutable pages.
unsafe impl Sync for ExecBuffer {}

impl ExecBuffer {
    /// Copy `code` into fresh executable memory.
    pub fn from_code(code: &[u8]) -> io::Result<ExecBuffer> {
        assert!(!code.is_empty(), "empty code buffer");
        let page = 4096usize;
        let len = code.len().div_ceil(page) * page;
        // SAFETY: anonymous private mapping; we check the result.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ | sys::PROT_WRITE,
                sys::MAP_PRIVATE | sys::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if ptr == sys::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: mapping is len bytes, code fits.
        unsafe {
            std::ptr::copy_nonoverlapping(code.as_ptr(), ptr as *mut u8, code.len());
        }
        // SAFETY: flip to RX; on failure unmap and report.
        let rc = unsafe { sys::mprotect(ptr, len, sys::PROT_READ | sys::PROT_EXEC) };
        if rc != 0 {
            let err = io::Error::last_os_error();
            // SAFETY: we own the mapping.
            unsafe { sys::munmap(ptr, len) };
            return Err(err);
        }
        Ok(ExecBuffer { ptr: ptr as *mut u8, len })
    }

    /// Entry point of the generated code.
    pub fn entry(&self) -> *const u8 {
        self.ptr
    }

    /// Bytes mapped (page-rounded).
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Drop for ExecBuffer {
    fn drop(&mut self) {
        // SAFETY: mapping created in from_code with this length.
        unsafe { sys::munmap(self.ptr as *mut c_void, self.len) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn executes_trivial_function() {
        // mov eax, 42; ret
        let code = [0xb8, 0x2a, 0x00, 0x00, 0x00, 0xc3];
        let buf = ExecBuffer::from_code(&code).unwrap();
        // SAFETY: entry() points at valid sysv64 code matching this type.
        let f: extern "sysv64" fn() -> i32 = unsafe { std::mem::transmute(buf.entry()) };
        assert_eq!(f(), 42);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn executes_argument_passing() {
        // lea eax, [rdi + rsi]; ret  => 8d 04 37 c3
        let code = [0x8d, 0x04, 0x37, 0xc3];
        let buf = ExecBuffer::from_code(&code).unwrap();
        // SAFETY: entry() points at valid sysv64 code matching this type.
        let f: extern "sysv64" fn(i32, i32) -> i32 = unsafe { std::mem::transmute(buf.entry()) };
        assert_eq!(f(20, 22), 42);
        assert_eq!(f(-1, 1), 0);
    }

    #[test]
    fn page_rounding() {
        let buf = ExecBuffer::from_code(&[0xc3]).unwrap();
        assert_eq!(buf.len() % 4096, 0);
        assert!(!buf.is_empty());
        assert_eq!(buf.entry() as usize % 4096, 0);
    }
}
