//! # wino-jit
//!
//! The paper's runtime code generator (§4.3.1), for real: an x86-64
//! encoder ([`encode`]) emits fully unrolled AVX-512 micro-kernels —
//! broadcast FMAs, look-ahead vector loads, interleaved prefetch — into
//! executable pages ([`exec`]), one function per
//! `(n_blk, C_blk, C'_blk, β)` ([`kernel`]).
//!
//! This reproduces the *mechanism* of the paper's JIT (generate assembly
//! per block shape at instantiation time, load, call), where `wino-gemm`
//! reproduces its *effect* via const-generic monomorphisation. The two
//! are differentially tested against each other and benchmarked side by
//! side in the Fig. 6 harness.
//!
//! Requires AVX-512F at runtime (checked; compilation returns
//! [`kernel::JitError::Avx512Unavailable`] otherwise) and Linux `mmap`
//! (the `libc` dependency — see DESIGN.md's dependency justification).

pub mod avx2;
pub mod encode;
pub mod exec;
pub mod kernel;

pub use avx2::{Avx2Kernel, MAX_N_BLK_AVX2};
pub use exec::ExecBuffer;
pub use kernel::{jit_batched_gemm, JitError, JitKernel, JitKernelPair, JitOutput};
