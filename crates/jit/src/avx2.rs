//! AVX2 (VEX-encoded) micro-kernel generation — the paper's §6 claim
//! made concrete: "The current implementation is AVX512 specific. It can
//! be easily extended to support the AVX2 instruction set, by providing
//! specific matrix multiplication routines; the rest of the code can be
//! fully reused."
//!
//! The data layout is unchanged (16-lane rows), so each logical row is a
//! pair of `ymm` halves. AVX2 has no embedded broadcast, so the scalar
//! `Û[j,k]` is broadcast into a register first (`vbroadcastss`), then two
//! register-form FMAs accumulate the halves. With 16 architectural `ymm`
//! registers the register budget is `2·n_blk + 3` (two `V̂` halves + one
//! broadcast), limiting `n_blk ≤ 6` — the AVX2 analogue of the paper's
//! `n_blk ≤ 30` bound on AVX-512.

use crate::encode::Gpr;
use crate::exec::ExecBuffer;
use crate::kernel::JitError;

/// Maximum register rows on AVX2: 16 ymm = 2·n_blk halves + 2 V̂ halves
/// + 1 broadcast.
pub const MAX_N_BLK_AVX2: usize = 6;

/// Minimal VEX (3-byte form) emitter for the AVX2 kernel's repertoire.
#[derive(Default)]
struct VexAsm {
    code: Vec<u8>,
}

impl VexAsm {
    /// Emit `C4 [R̄ X̄ B̄ m-mmmm] [W v̄v̄v̄v̄ L pp] opcode modrm disp32?`.
    #[allow(clippy::too_many_arguments)] // mirrors the encoding fields
    fn vex(&mut self, map: u8, pp: u8, opcode: u8, reg: u8, vvvv: u8, rm_reg: Option<u8>, mem: Option<(Gpr, i32)>) {
        debug_assert!(reg < 16 && vvvv < 16);
        let (xbar, bbar, rm) = match (rm_reg, mem) {
            (Some(r), None) => (1u8, (!(r >> 3)) & 1, r & 7),
            (None, Some((base, _))) => {
                let b = base as u8;
                debug_assert!(b & 7 != 4);
                (1u8, (!(b >> 3)) & 1, b & 7)
            }
            _ => unreachable!("exactly one of rm_reg/mem"),
        };
        let rbar = (!(reg >> 3)) & 1;
        self.code.push(0xC4);
        self.code.push((rbar << 7) | (xbar << 6) | (bbar << 5) | map);
        // W = 0, L = 1 (256-bit), vvvv inverted.
        self.code.push((((!vvvv) & 0xF) << 3) | 0b100 | pp);
        self.code.push(opcode);
        match (rm_reg, mem) {
            (Some(_), None) => self.code.push(0b11_000_000 | ((reg & 7) << 3) | rm),
            (None, Some((_, disp))) => {
                self.code.push(0b10_000_000 | ((reg & 7) << 3) | rm);
                self.code.extend_from_slice(&disp.to_le_bytes());
            }
            _ => unreachable!(),
        }
    }

    /// `vmovups ymm, [base + disp]`.
    fn load(&mut self, ymm: u8, base: Gpr, disp: i32) {
        self.vex(0b00001, 0b00, 0x10, ymm, 0, None, Some((base, disp)));
    }

    /// `vmovups [base + disp], ymm`.
    fn store(&mut self, base: Gpr, disp: i32, ymm: u8) {
        self.vex(0b00001, 0b00, 0x11, ymm, 0, None, Some((base, disp)));
    }

    /// `vbroadcastss ymm, dword [base + disp]` (AVX2: 0F38 18).
    fn bcast(&mut self, ymm: u8, base: Gpr, disp: i32) {
        self.vex(0b00010, 0b01, 0x18, ymm, 0, None, Some((base, disp)));
    }

    /// `vfmadd231ps ymm1, ymm2, ymm3` — `ymm1 += ymm2 · ymm3`.
    fn fma(&mut self, dst: u8, a: u8, b: u8) {
        self.vex(0b00010, 0b01, 0xB8, dst, a, Some(b), None);
    }

    /// `vxorps ymm, ymm, ymm`.
    fn zero(&mut self, ymm: u8) {
        self.vex(0b00001, 0b00, 0x57, ymm, ymm, Some(ymm), None);
    }

    /// `vzeroupper` (avoid AVX↔SSE transition stalls in the caller).
    fn vzeroupper(&mut self) {
        self.code.extend_from_slice(&[0xC5, 0xF8, 0x77]);
    }

    fn ret(&mut self) {
        self.code.push(0xC3);
    }
}

/// A compiled AVX2 block-output micro-kernel (`X̂ = β·X̂ + Û·V̂`), same
/// calling contract as the AVX-512 [`crate::JitKernel`] in block mode.
pub struct Avx2Kernel {
    buf: ExecBuffer,
    n_blk: usize,
    c_blk: usize,
    cp_blk: usize,
    beta: bool,
    code_bytes: usize,
}

impl Avx2Kernel {
    /// Emit and map the kernel. Requires AVX2+FMA at runtime.
    pub fn compile(n_blk: usize, c_blk: usize, cp_blk: usize, beta: bool) -> Result<Avx2Kernel, JitError> {
        if !wino_simd::cpu_has_avx2_fma() {
            return Err(JitError::Avx512Unavailable); // reported as ISA-unavailable
        }
        if n_blk == 0 || n_blk > MAX_N_BLK_AVX2 {
            return Err(JitError::BadParams("n_blk out of range for AVX2"));
        }
        if cp_blk == 0 || !cp_blk.is_multiple_of(16) {
            return Err(JitError::BadParams("cp_blk not a positive multiple of 16"));
        }
        if c_blk == 0 {
            return Err(JitError::BadParams("c_blk = 0"));
        }

        // Register map: acc j-lo = ymm(2j), acc j-hi = ymm(2j+1),
        // V̂ halves = ymm12/ymm13, broadcast = ymm14.
        let (v_lo, v_hi, bc) = (12u8, 13u8, 14u8);
        let mut a = VexAsm::default();
        let qn = cp_blk / 16;
        for q in 0..qn {
            let xq = (q * 16 * 4) as i32;
            let vq = (q * 16 * 4) as i32;
            for j in 0..n_blk {
                let (lo, hi) = ((2 * j) as u8, (2 * j + 1) as u8);
                if beta {
                    a.load(lo, Gpr::Rdx, xq + (j * cp_blk * 4) as i32);
                    a.load(hi, Gpr::Rdx, xq + (j * cp_blk * 4 + 32) as i32);
                } else {
                    a.zero(lo);
                    a.zero(hi);
                }
            }
            for k in 0..c_blk {
                a.load(v_lo, Gpr::Rsi, vq + (k * cp_blk * 4) as i32);
                a.load(v_hi, Gpr::Rsi, vq + (k * cp_blk * 4 + 32) as i32);
                for j in 0..n_blk {
                    a.bcast(bc, Gpr::Rdi, ((j * c_blk + k) * 4) as i32);
                    a.fma((2 * j) as u8, bc, v_lo);
                    a.fma((2 * j + 1) as u8, bc, v_hi);
                }
            }
            for j in 0..n_blk {
                a.store(Gpr::Rdx, xq + (j * cp_blk * 4) as i32, (2 * j) as u8);
                a.store(Gpr::Rdx, xq + (j * cp_blk * 4 + 32) as i32, (2 * j + 1) as u8);
            }
        }
        a.vzeroupper();
        a.ret();
        let code_bytes = a.code.len();
        let buf = ExecBuffer::from_code(&a.code).map_err(JitError::Os)?;
        Ok(Avx2Kernel { buf, n_blk, c_blk, cp_blk, beta, code_bytes })
    }

    pub fn n_blk(&self) -> usize {
        self.n_blk
    }

    pub fn code_bytes(&self) -> usize {
        self.code_bytes
    }

    /// Invoke the kernel (same contract as [`crate::JitKernel::call`]).
    ///
    /// # Safety
    /// See [`crate::JitKernel::call`].
    #[inline]
    pub unsafe fn call(&self, u: *const f32, v: *const f32, x: *mut f32) {
        let f: extern "sysv64" fn(*const f32, *const f32, *mut f32) =
            std::mem::transmute(self.buf.entry());
        f(u, v, x);
    }
}

impl std::fmt::Debug for Avx2Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Avx2Kernel(n_blk={}, c_blk={}, cp_blk={}, beta={}, {}B)",
            self.n_blk, self.c_blk, self.cp_blk, self.beta, self.code_bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_gemm::microkernel_reference;
    use wino_simd::AlignedVec;

    fn have_avx2() -> bool {
        if wino_simd::cpu_has_avx2_fma() {
            true
        } else {
            eprintln!("skipping AVX2 JIT test: no AVX2+FMA");
            false
        }
    }

    fn filled(n: usize, seed: u32) -> AlignedVec {
        let mut v = AlignedVec::zeroed(n);
        let mut s = seed.wrapping_mul(0x85EBCA6B).wrapping_add(3);
        for x in v.iter_mut() {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            *x = ((s >> 9) as f32 / (1 << 23) as f32) - 1.0;
        }
        v
    }

    fn check(n_blk: usize, c_blk: usize, cp_blk: usize, beta: bool) {
        let u = filled(n_blk * c_blk, 1);
        let v = filled(c_blk * cp_blk, 2);
        let x0 = filled(n_blk * cp_blk, 3);
        let mut x_jit = x0.clone();
        let mut x_ref: Vec<f32> = x0.as_slice().to_vec();
        let kern = Avx2Kernel::compile(n_blk, c_blk, cp_blk, beta).unwrap();
        // SAFETY: buffers are sized to the compiled block shape; AVX2
        // availability was checked by the caller.
        unsafe { kern.call(u.as_ptr(), v.as_ptr(), x_jit.as_mut_ptr()) };
        microkernel_reference(n_blk, &u, &v, &mut x_ref, c_blk, cp_blk, beta);
        for i in 0..n_blk * cp_blk {
            assert!(
                (x_jit[i] - x_ref[i]).abs() <= 1e-4 * x_ref[i].abs().max(1.0),
                "n_blk={n_blk} c_blk={c_blk} cp_blk={cp_blk} beta={beta} elem {i}: {} vs {}",
                x_jit[i],
                x_ref[i]
            );
        }
    }

    #[test]
    fn all_avx2_n_blk_values_match_reference() {
        if !have_avx2() {
            return;
        }
        for n_blk in 1..=MAX_N_BLK_AVX2 {
            check(n_blk, 32, 32, false);
            check(n_blk, 32, 32, true);
        }
    }

    #[test]
    fn avx2_paper_sized_blocks() {
        if !have_avx2() {
            return;
        }
        check(6, 128, 128, false);
        check(6, 128, 128, true);
        check(4, 64, 48, true);
        check(1, 1, 16, false);
        check(3, 7, 32, true);
    }

    #[test]
    fn avx2_rejects_oversized_n_blk() {
        if !have_avx2() {
            return;
        }
        assert!(matches!(
            Avx2Kernel::compile(7, 16, 16, false),
            Err(JitError::BadParams(_))
        ));
    }

    #[test]
    fn avx2_agrees_with_avx512_jit() {
        if !have_avx2() || !wino_simd::cpu_has_avx512f() {
            return;
        }
        let (n_blk, c_blk, cp_blk) = (5usize, 24usize, 48usize);
        let u = filled(n_blk * c_blk, 7);
        let v = filled(c_blk * cp_blk, 8);
        let mut x_a2 = AlignedVec::zeroed(n_blk * cp_blk);
        let mut x_a5 = AlignedVec::zeroed(n_blk * cp_blk);
        let k2 = Avx2Kernel::compile(n_blk, c_blk, cp_blk, false).unwrap();
        let k5 = crate::JitKernel::compile(n_blk, c_blk, cp_blk, false).unwrap();
        // SAFETY: buffers are sized to the compiled block shape; both ISA
        // extensions were verified above.
        unsafe {
            k2.call(u.as_ptr(), v.as_ptr(), x_a2.as_mut_ptr());
            k5.call(u.as_ptr(), v.as_ptr(), x_a5.as_mut_ptr());
        }
        // Identical FMA order → bitwise identical results.
        assert_eq!(x_a2.as_slice(), x_a5.as_slice());
    }
}
