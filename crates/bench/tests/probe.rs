//! Integration tests for the observability pipeline at the bench level:
//! report math against hand-computed FLOP/byte counts, determinism of
//! instrumented runs, and the disabled-build no-op guarantee.
//!
//! Every test runs in both feature configurations; span-dependent
//! assertions gate on the runtime [`wino_probe::ENABLED`] const so
//! `cargo test` passes with and without `--features probe`.

use wino_bench::perf::{direct_work_model, im2col_work_model, probe_direct, probe_winograd};
use wino_conv::ConvOptions;
use wino_probe::{fold, MachineModel, SpanCategory, SpanEvent, StageReport, COORDINATOR};
use wino_sched::{Executor, SerialExecutor, StaticExecutor};
use wino_tensor::ConvShape;
use wino_workloads::{Layer, Network};

/// A VGG-interior-style 2-D layer: 64→64 channels, 56×56 image, 3×3
/// kernel, pad 1 (out 56×56). Small enough to hand-compute exactly.
fn vgg_shape() -> ConvShape {
    ConvShape::new(1, 64, 64, &[56, 56], &[3, 3], &[1, 1]).unwrap()
}

/// A C3D-style 3-D layer: 64→64 channels, 8×28×28 volume, 3×3×3 kernel,
/// pad 1 (out 8×28×28).
fn c3d_shape() -> ConvShape {
    ConvShape::new(1, 64, 64, &[8, 28, 28], &[3, 3, 3], &[1, 1, 1]).unwrap()
}

fn small_layer() -> Layer {
    Layer {
        network: Network::Vgg,
        label: "probe-test",
        shape: ConvShape::new(1, 16, 16, &[12, 12], &[3, 3], &[1, 1]).unwrap(),
    }
}

#[test]
fn direct_report_math_matches_hand_computed_vgg() {
    let shape = vgg_shape();
    // Hand-computed: out = 56·56 = 3136 positions, 64 batch·in-channel
    // MACs·9 taps each… direct_flops = 2 · B·C·C'·∏out·∏r.
    let flops: u128 = 2 * 64 * 64 * 3136 * 9;
    // Ideal-cache bytes: input 64·56·56, kernels 64·64·9, output 64·3136
    // f32 elements, each moved once.
    let bytes: u128 = 4 * (64 * 3136 + 64 * 64 * 9 + 64 * 3136);
    let wm = direct_work_model(&shape);
    let w = wm.get(SpanCategory::DirectKernel).unwrap();
    assert_eq!(w.flops, flops);
    assert_eq!(w.bytes, bytes);

    // Fold one synthetic 2 ms coordinator span: GFLOP/s and AI follow.
    let events = [SpanEvent {
        category: SpanCategory::DirectKernel,
        thread: COORDINATOR,
        start_ns: 0,
        end_ns: 2_000_000,
    }];
    let machine = MachineModel { peak_gflops: 1e6, mem_bw_gbps: 1e6, threads: 1 };
    let report = fold(&events, &wm, &machine);
    let row = &report.stages[0];
    let expect_gflops = flops as f64 / 2e-3 / 1e9;
    assert!((row.gflops.unwrap() - expect_gflops).abs() < 1e-6);
    assert!((row.arith_intensity.unwrap() - flops as f64 / bytes as f64).abs() < 1e-12);
    assert_eq!(row.bytes, Some(bytes));
}

#[test]
fn im2col_report_math_matches_hand_computed_c3d() {
    let shape = c3d_shape();
    // rows = B·∏out = 8·28·28 = 6272; inner = C·∏r = 64·27 = 1728.
    let (rows, inner, cp) = (6272u128, 1728u128, 64u128);
    let wm = im2col_work_model(&shape);
    let g = wm.get(SpanCategory::ElementwiseGemm).unwrap();
    assert_eq!(g.flops, 2 * rows * inner * cp);
    assert_eq!(g.bytes, 4 * (rows * inner + inner * cp + rows * cp));
    let l = wm.get(SpanCategory::Im2colLower).unwrap();
    assert_eq!(l.flops, 0);
    // input + lowered A + kernels (read + lowered) + product + output.
    let in_elems = 64u128 * 8 * 28 * 28;
    let out_elems = 64u128 * 6272;
    assert_eq!(l.bytes, 4 * (in_elems + rows * inner + 2 * inner * cp + rows * cp + out_elems));
}

/// Span counts and categories of one instrumented pass, as a
/// deterministic fingerprint: (category name, spans) per stage row.
fn fingerprint(report: &StageReport) -> Vec<(&'static str, usize)> {
    report.stages.iter().map(|s| (s.category.name(), s.spans)).collect()
}

#[test]
fn instrumented_runs_are_deterministic() {
    if !wino_probe::ENABLED {
        return;
    }
    let layer = small_layer();
    let machine = MachineModel::assumed();
    for exec in [
        Box::new(SerialExecutor) as Box<dyn Executor>,
        Box::new(StaticExecutor::new(2)) as Box<dyn Executor>,
    ] {
        let a = probe_winograd(&layer, &[4, 4], ConvOptions::default(), exec.as_ref(), &machine)
            .expect("plan accepted and events recorded");
        let b = probe_winograd(&layer, &[4, 4], ConvOptions::default(), exec.as_ref(), &machine)
            .expect("plan accepted and events recorded");
        assert_eq!(fingerprint(&a), fingerprint(&b), "executor {}", exec.name());
        assert_eq!(a.barrier.fork_joins, b.barrier.fork_joins);
    }
}

#[test]
fn winograd_report_covers_all_pipeline_stages() {
    if !wino_probe::ENABLED {
        return;
    }
    let layer = small_layer();
    let report = probe_winograd(
        &layer,
        &[4, 4],
        ConvOptions::default(),
        &SerialExecutor,
        &MachineModel::assumed(),
    )
    .expect("plan accepted and events recorded");
    let names: Vec<&str> = report.stages.iter().map(|s| s.category.name()).collect();
    for want in ["input-transform", "kernel-transform", "elementwise-gemm", "output-transform"] {
        assert!(names.contains(&want), "missing stage {want} in {names:?}");
    }
    assert!(report.total_wall_ms > 0.0);
    // The work model covers every pipeline stage, so each carries
    // GFLOP/s + intensity (the schema's with_work requirement).
    for s in report.stages.iter().filter(|s| s.category.is_stage()) {
        assert!(s.gflops.is_some() && s.arith_intensity.is_some(), "{}", s.category.name());
    }
}

#[test]
fn disabled_probe_is_a_noop_at_conv_level() {
    if wino_probe::ENABLED {
        return;
    }
    // Uninstrumented builds: the probed runners execute the convolution
    // but fold nothing — the API stays linkable and returns None.
    let layer = small_layer();
    let machine = MachineModel::assumed();
    assert!(probe_direct(&layer, &SerialExecutor, &machine).is_none());
    assert!(probe_winograd(&layer, &[4, 4], ConvOptions::default(), &SerialExecutor, &machine)
        .is_none());
    // And a ProbedExecutor wrapper records no events at all.
    let mut probed = wino_sched::ProbedExecutor::new(SerialExecutor);
    probed.run_grid(&[8], &|_, _| {}).unwrap();
    assert!(probed.take_events().is_empty());
}
