//! Transform-codelet throughput: vectorised `Bᵀ`/`Aᵀ` tile transforms per
//! second, with and without the Fig. 2 pairing optimisation.
//!
//! Plain `harness = false` benchmark: no registry dependencies, timing via
//! `wino_workloads::time_best`. Run with `cargo bench --bench transforms`.

use wino_conv::vecprog::transform_all_dims;
use wino_simd::S;
use wino_transforms::{FmrPlan, MatrixProgram, PairNode, PairedProgram};
use wino_workloads::time_best;

const REPS: usize = 20;
const TILES_PER_REP: usize = 2_000;

fn unpaired(p: &PairedProgram, dense: &wino_transforms::F32Matrix) -> PairedProgram {
    let mp = MatrixProgram::compile(dense);
    PairedProgram {
        n_out: p.n_out,
        n_in: p.n_in,
        nodes: mp
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| PairNode::Direct { out: i, row: r.clone() })
            .collect(),
    }
}

fn main() {
    println!("bench,fmr,best_ms,melem_per_s");
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3)] {
        let plan = FmrPlan::new(m, r);
        let alpha = plan.alpha();
        let vol = alpha * alpha;
        let input: Vec<f32> = (0..vol * S).map(|i| (i % 97) as f32 * 0.01).collect();
        let elems = (vol * S * TILES_PER_REP) as f64;

        let mut buf_a = input.clone();
        let mut buf_b = vec![0.0f32; vol * S];
        let t = time_best(REPS, || {
            for _ in 0..TILES_PER_REP {
                buf_a.copy_from_slice(&input);
                let mut dims = [alpha, alpha];
                transform_all_dims(&[&plan.bt, &plan.bt], &mut buf_a, &mut buf_b, &mut dims);
            }
        });
        println!("bt_paired,F({m}.{r}),{:.3},{:.1}", t.best_ms, elems / t.best_ms / 1e3);

        let bt_dense = plan.transform.bt.to_f32();
        let bt_unpaired = unpaired(&plan.bt, &bt_dense);
        let t = time_best(REPS, || {
            for _ in 0..TILES_PER_REP {
                buf_a.copy_from_slice(&input);
                let mut dims = [alpha, alpha];
                transform_all_dims(&[&bt_unpaired, &bt_unpaired], &mut buf_a, &mut buf_b, &mut dims);
            }
        });
        println!("bt_unpaired,F({m}.{r}),{:.3},{:.1}", t.best_ms, elems / t.best_ms / 1e3);
        std::hint::black_box(buf_b.first());
    }
}
