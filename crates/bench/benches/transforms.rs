//! Transform-codelet throughput: vectorised `Bᵀ`/`Aᵀ` tile transforms per
//! second, with and without the Fig. 2 pairing optimisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wino_conv::vecprog::transform_all_dims;
use wino_simd::S;
use wino_transforms::{FmrPlan, MatrixProgram, PairNode, PairedProgram};

fn unpaired(p: &PairedProgram, dense: &wino_transforms::F32Matrix) -> PairedProgram {
    let mp = MatrixProgram::compile(dense);
    PairedProgram {
        n_out: p.n_out,
        n_in: p.n_in,
        nodes: mp
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| PairNode::Direct { out: i, row: r.clone() })
            .collect(),
    }
}

fn bench_transforms(c: &mut Criterion) {
    let mut group = c.benchmark_group("tile_transform");
    group.sample_size(20);
    for (m, r) in [(2usize, 3usize), (4, 3), (6, 3)] {
        let plan = FmrPlan::new(m, r);
        let alpha = plan.alpha();
        let vol = alpha * alpha;
        group.throughput(Throughput::Elements((vol * S) as u64));
        let input: Vec<f32> = (0..vol * S).map(|i| (i % 97) as f32 * 0.01).collect();

        group.bench_with_input(BenchmarkId::new("bt_paired", format!("F({m},{r})")), &(), |b, _| {
            let mut buf_a = input.clone();
            let mut buf_b = vec![0.0f32; vol * S];
            b.iter(|| {
                buf_a.copy_from_slice(&input);
                let mut dims = [alpha, alpha];
                transform_all_dims(&[&plan.bt, &plan.bt], &mut buf_a, &mut buf_b, &mut dims)
            })
        });

        let bt_dense = plan.transform.bt.to_f32();
        let bt_unpaired = unpaired(&plan.bt, &bt_dense);
        group.bench_with_input(
            BenchmarkId::new("bt_unpaired", format!("F({m},{r})")),
            &(),
            |b, _| {
                let mut buf_a = input.clone();
                let mut buf_b = vec![0.0f32; vol * S];
                b.iter(|| {
                    buf_a.copy_from_slice(&input);
                    let mut dims = [alpha, alpha];
                    transform_all_dims(
                        &[&bt_unpaired, &bt_unpaired],
                        &mut buf_a,
                        &mut buf_b,
                        &mut dims,
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_transforms);
criterion_main!(benches);
