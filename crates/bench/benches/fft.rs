//! FFT substrate benchmarks: 1-D/3-D transform throughput (sanity check
//! that the FFT baseline's cost in Fig. 5 comes from the algorithm, not a
//! pathological implementation).
//!
//! Plain `harness = false` benchmark: no registry dependencies, timing via
//! `wino_workloads::time_best`. Run with `cargo bench --bench fft`.

use wino_fft::{C32, Fft1d, FftNd};
use wino_workloads::time_best;

const REPS: usize = 20;

fn main() {
    println!("bench,n,best_ms,melem_per_s");
    for n in [256usize, 1024, 4096] {
        let plan = Fft1d::new(n);
        let mut data: Vec<C32> =
            (0..n).map(|i| C32::new((i % 17) as f32, (i % 5) as f32)).collect();
        let t = time_best(REPS, || plan.forward(&mut data));
        println!("fft1d,{n},{:.4},{:.1}", t.best_ms, n as f64 / t.best_ms / 1e3);
        std::hint::black_box(data.first());
    }
    let dims = [16usize, 32, 32];
    let plan = FftNd::new(&dims);
    let vol = plan.volume();
    let mut data: Vec<C32> = (0..vol).map(|i| C32::new((i % 13) as f32, 0.0)).collect();
    let t = time_best(REPS, || plan.forward(&mut data));
    println!("fft3d_16x32x32,{vol},{:.4},{:.1}", t.best_ms, vol as f64 / t.best_ms / 1e3);
    std::hint::black_box(data.first());
}
