//! FFT substrate benchmarks: 1-D/3-D transform throughput (sanity check
//! that the FFT baseline's cost in Fig. 5 comes from the algorithm, not a
//! pathological implementation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wino_fft::{C32, Fft1d, FftNd};

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft");
    group.sample_size(20);
    for n in [256usize, 1024, 4096] {
        group.throughput(Throughput::Elements(n as u64));
        let plan = Fft1d::new(n);
        let mut data: Vec<C32> =
            (0..n).map(|i| C32::new((i % 17) as f32, (i % 5) as f32)).collect();
        group.bench_with_input(BenchmarkId::new("fft1d", n), &(), |b, _| {
            b.iter(|| plan.forward(&mut data))
        });
    }
    let dims = [16usize, 32, 32];
    let plan = FftNd::new(&dims);
    let vol = plan.volume();
    group.throughput(Throughput::Elements(vol as u64));
    let mut data: Vec<C32> = (0..vol).map(|i| C32::new((i % 13) as f32, 0.0)).collect();
    group.bench_function("fft3d_16x32x32", |b| b.iter(|| plan.forward(&mut data)));
    group.finish();
}

criterion_group!(benches, bench_fft);
criterion_main!(benches);
