//! End-to-end layer benchmarks (Fig. 5's statistical companion) on two
//! representative scaled layers: VGG 3.2 (2-D) and C3D C3b (3-D).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wino_baseline::direct_conv;
use wino_bench::layer_data;
use wino_conv::{ConvOptions, Scratch, WinogradLayer};
use wino_sched::SerialExecutor;
use wino_tensor::BlockedImage;
use wino_workloads::scaled_catalog;

fn bench_layers(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_layer");
    group.sample_size(10);
    for label in ["VGG 3.2", "C3D C3b"] {
        let layer = scaled_catalog().into_iter().find(|l| l.id() == label).unwrap();
        let (input, kernels) = layer_data(&layer, 9);
        let m = vec![4usize; layer.rank()];

        let plan = WinogradLayer::new(layer.shape.clone(), &m, ConvOptions::default()).unwrap();
        let mut scratch = Scratch::new(&plan, 1);
        let mut out = plan.new_output().unwrap();
        group.bench_with_input(BenchmarkId::new("winograd_f4", label), &(), |b, _| {
            b.iter(|| plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor))
        });

        let tk = plan.prepare_kernels(&kernels, &mut scratch, &SerialExecutor);
        group.bench_with_input(BenchmarkId::new("winograd_f4_fx", label), &(), |b, _| {
            b.iter(|| plan.forward_fx(&input, &tk, &mut out, &mut scratch, &SerialExecutor))
        });

        let mut dout = BlockedImage::zeros(
            layer.shape.batch,
            layer.shape.out_channels,
            &layer.shape.out_dims(),
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("direct", label), &(), |b, _| {
            b.iter(|| {
                direct_conv(&input, &kernels, &layer.shape.padding, &mut dout, &SerialExecutor)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
