//! End-to-end layer benchmarks (Fig. 5's statistical companion) on two
//! representative scaled layers: VGG 3.2 (2-D) and C3D C3b (3-D).
//!
//! Plain `harness = false` benchmark: no registry dependencies, timing via
//! `wino_workloads::time_best`. Run with `cargo bench --bench conv_layers`.

use wino_baseline::direct_conv;
use wino_bench::layer_data;
use wino_conv::{ConvOptions, Scratch, WinogradLayer};
use wino_sched::SerialExecutor;
use wino_tensor::BlockedImage;
use wino_workloads::{scaled_catalog, time_best};

const REPS: usize = 5;

fn main() {
    println!("bench,layer,best_ms,mean_ms");
    for label in ["VGG 3.2", "C3D C3b"] {
        let layer = scaled_catalog().into_iter().find(|l| l.id() == label).unwrap();
        let (input, kernels) = layer_data(&layer, 9);
        let m = vec![4usize; layer.rank()];

        let plan = WinogradLayer::new(layer.shape.clone(), &m, ConvOptions::default()).unwrap();
        let mut scratch = Scratch::new(&plan, 1);
        let mut out = plan.new_output().unwrap();
        let t = time_best(REPS, || {
            plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor)
                .expect("bench forward failed");
        });
        println!("winograd_f4,{label},{:.3},{:.3}", t.best_ms, t.mean_ms);

        let tk = plan
            .prepare_kernels(&kernels, &mut scratch, &SerialExecutor)
            .expect("bench prepare_kernels failed");
        let t = time_best(REPS, || {
            plan.forward_fx(&input, &tk, &mut out, &mut scratch, &SerialExecutor)
                .expect("bench forward_fx failed");
        });
        println!("winograd_f4_fx,{label},{:.3},{:.3}", t.best_ms, t.mean_ms);

        let mut dout = BlockedImage::zeros(
            layer.shape.batch,
            layer.shape.out_channels,
            &layer.shape.out_dims(),
        )
        .unwrap();
        let t = time_best(REPS, || {
            direct_conv(&input, &kernels, &layer.shape.padding, &mut dout, &SerialExecutor)
                .expect("bench direct_conv failed");
        });
        println!("direct,{label},{:.3},{:.3}", t.best_ms, t.mean_ms);
        std::hint::black_box((out.as_slice().first(), dout.as_slice().first()));
    }
}
