//! Criterion micro-benchmarks for the batched GEMM engines (Fig. 6's
//! statistical companion): JIT vs monomorphised vs generic on
//! paper-relevant `V̂` shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wino_gemm::{batched_gemm, batched_gemm_generic};
use wino_jit::JitKernelPair;
use wino_tensor::BlockedMatrices;

fn setup(
    t: usize,
    rows: usize,
    cb: usize,
    cpb: usize,
    nb: usize,
) -> (BlockedMatrices, BlockedMatrices, BlockedMatrices) {
    let mut u = BlockedMatrices::new(t, rows, cb, nb, cb);
    let mut v = BlockedMatrices::new(t, cb, cpb, cb, cpb);
    let x = BlockedMatrices::new(t, rows, cpb, nb, cpb);
    for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
        *f = (i % 13) as f32 * 0.1 - 0.6;
    }
    for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
        *f = (i % 7) as f32 * 0.1 - 0.3;
    }
    (u, v, x)
}

fn bench_gemm(c: &mut Criterion) {
    let mut group = c.benchmark_group("batched_gemm");
    group.sample_size(10);
    let (t, rows, nb) = (4usize, 1024usize, 8usize);
    for &(cb, cpb) in &[(32usize, 32usize), (64, 64), (128, 128)] {
        let flops = 2 * t * rows * cb * cpb;
        group.throughput(Throughput::Elements(flops as u64));
        let (u, v, mut x) = setup(t, rows, cb, cpb, nb);
        group.bench_with_input(BenchmarkId::new("mono", format!("{cb}x{cpb}")), &(), |b, _| {
            b.iter(|| batched_gemm(&u, &v, &mut x))
        });
        group.bench_with_input(BenchmarkId::new("generic", format!("{cb}x{cpb}")), &(), |b, _| {
            b.iter(|| batched_gemm_generic(&u, &v, &mut x))
        });
        if wino_simd::cpu_has_avx512f() {
            let pair = JitKernelPair::compile(nb, cb, cpb).unwrap();
            group.bench_with_input(BenchmarkId::new("jit", format!("{cb}x{cpb}")), &(), |b, _| {
                b.iter(|| wino_jit::jit_batched_gemm(&u, &v, &mut x, &pair))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_gemm);
criterion_main!(benches);
