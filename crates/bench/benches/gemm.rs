//! Micro-benchmarks for the batched GEMM engines (Fig. 6's statistical
//! companion): JIT vs monomorphised vs generic on paper-relevant `V̂`
//! shapes.
//!
//! Plain `harness = false` benchmark: no registry dependencies, timing via
//! `wino_workloads::time_best`. Run with `cargo bench --bench gemm`.

use wino_gemm::{batched_gemm, batched_gemm_generic};
use wino_jit::JitKernelPair;
use wino_tensor::BlockedMatrices;
use wino_workloads::time_best;

const REPS: usize = 5;

fn setup(
    t: usize,
    rows: usize,
    cb: usize,
    cpb: usize,
    nb: usize,
) -> (BlockedMatrices, BlockedMatrices, BlockedMatrices) {
    let mut u = BlockedMatrices::new(t, rows, cb, nb, cb);
    let mut v = BlockedMatrices::new(t, cb, cpb, cb, cpb);
    let x = BlockedMatrices::new(t, rows, cpb, nb, cpb);
    for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
        *f = (i % 13) as f32 * 0.1 - 0.6;
    }
    for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
        *f = (i % 7) as f32 * 0.1 - 0.3;
    }
    (u, v, x)
}

fn main() {
    println!("engine,shape,best_ms,gflops");
    let (t, rows, nb) = (4usize, 1024usize, 8usize);
    for &(cb, cpb) in &[(32usize, 32usize), (64, 64), (128, 128)] {
        let flops = (2 * t * rows * cb * cpb) as f64;
        let (u, v, mut x) = setup(t, rows, cb, cpb, nb);
        let tm = time_best(REPS, || batched_gemm(&u, &v, &mut x));
        println!("mono,{cb}x{cpb},{:.3},{:.1}", tm.best_ms, flops / tm.best_ms / 1e6);
        let tg = time_best(REPS, || batched_gemm_generic(&u, &v, &mut x));
        println!("generic,{cb}x{cpb},{:.3},{:.1}", tg.best_ms, flops / tg.best_ms / 1e6);
        if wino_simd::cpu_has_avx512f() {
            let pair = JitKernelPair::compile(nb, cb, cpb).unwrap();
            let tj = time_best(REPS, || wino_jit::jit_batched_gemm(&u, &v, &mut x, &pair));
            println!("jit,{cb}x{cpb},{:.3},{:.1}", tj.best_ms, flops / tj.best_ms / 1e6);
        }
        std::hint::black_box(x.as_mut_slice().first());
    }
}
