//! Fork–join synchronisation cost (§4.5): the custom spin barrier and
//! static pool against `std::sync::Barrier` and rayon's fork–join, on an
//! empty task — the pure synchronisation overhead the paper's custom
//! primitive is designed to minimise.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wino_sched::{Executor, SpinBarrier, StaticExecutor, ThreadPool};

const THREADS: usize = 4;

fn bench_barrier(c: &mut Criterion) {
    let mut group = c.benchmark_group("fork_join");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Single-thread barrier crossing: the raw primitive's fast path.
    let solo = SpinBarrier::new(1);
    group.bench_function("spin_barrier_uncontended", |b| b.iter(|| solo.wait()));

    let pool = ThreadPool::new(THREADS);
    group.bench_function(BenchmarkId::new("static_pool_forkjoin", THREADS), |b| {
        b.iter(|| pool.run(|_tid| std::hint::black_box(())))
    });

    let exec = StaticExecutor::new(THREADS);
    group.bench_function(BenchmarkId::new("static_grid_64_tasks", THREADS), |b| {
        b.iter(|| {
            exec.run_grid(&[64], &|_, i| {
                std::hint::black_box(i);
            })
        })
    });

    group.bench_function(BenchmarkId::new("rayon_forkjoin_64_tasks", THREADS), |b| {
        use rayon::prelude::*;
        b.iter(|| (0..64usize).into_par_iter().for_each(|i| { std::hint::black_box(i); }))
    });

    // Drop the spin pools before benchmarking the blocking std barrier:
    // their busy-wait workers would starve it on oversubscribed machines.
    drop(pool);
    drop(exec);

    // Library-primitive comparison, two participants (main + 1 worker).
    // The worker performs *exactly* `iters` rounds (communicated up
    // front), so there is no shutdown handshake to race on — a blocking
    // barrier paired with a free-running worker loop can deadlock when
    // the worker observes the stop flag between rounds while the main
    // thread is already committed to one more wait.
    group.bench_function("std_barrier_round_2", |b| {
        b.iter_custom(|iters| {
            let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
            let worker = {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        barrier.wait();
                    }
                })
            };
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                barrier.wait();
            }
            let dt = t0.elapsed();
            worker.join().unwrap();
            dt
        })
    });

    // The custom spin barrier in the same two-participant shape.
    group.bench_function("spin_barrier_round_2", |b| {
        b.iter_custom(|iters| {
            let barrier = std::sync::Arc::new(SpinBarrier::new(2));
            let worker = {
                let barrier = barrier.clone();
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        barrier.wait();
                    }
                })
            };
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                barrier.wait();
            }
            let dt = t0.elapsed();
            worker.join().unwrap();
            dt
        })
    });

    group.finish();
}

criterion_group!(benches, bench_barrier);
criterion_main!(benches);
