//! Fork–join synchronisation cost (§4.5): the custom spin barrier and
//! static pool against `std::sync::Barrier` and dynamic fork–join, on an
//! empty task — the pure synchronisation overhead the paper's custom
//! primitive is designed to minimise.
//!
//! Plain `harness = false` benchmark: no registry dependencies. Run with
//! `cargo bench --bench barrier`.

use wino_sched::{DynamicExecutor, Executor, SpinBarrier, StaticExecutor, ThreadPool};

const THREADS: usize = 4;
const ROUNDS: usize = 20_000;

fn time_per_round<F: FnMut()>(rounds: usize, mut f: F) -> f64 {
    let t0 = std::time::Instant::now();
    for _ in 0..rounds {
        f();
    }
    t0.elapsed().as_secs_f64() * 1e9 / rounds as f64
}

fn main() {
    println!("bench,threads,ns_per_round");

    // Single-thread barrier crossing: the raw primitive's fast path.
    let solo = SpinBarrier::new(1);
    let ns = time_per_round(ROUNDS, || {
        solo.wait();
    });
    println!("spin_barrier_uncontended,1,{ns:.1}");

    let pool = ThreadPool::new(THREADS);
    let ns = time_per_round(ROUNDS, || {
        pool.run(|_tid| std::hint::black_box(())).expect("pool fork-join failed");
    });
    println!("static_pool_forkjoin,{THREADS},{ns:.1}");

    let exec = StaticExecutor::new(THREADS);
    let ns = time_per_round(ROUNDS, || {
        exec.run_grid(&[64], &|_, i| {
            std::hint::black_box(i);
        })
        .expect("static grid failed");
    });
    println!("static_grid_64_tasks,{THREADS},{ns:.1}");

    let dyn_exec = DynamicExecutor::new(THREADS);
    let ns = time_per_round(ROUNDS / 10, || {
        dyn_exec
            .run_grid(&[64], &|_, i| {
                std::hint::black_box(i);
            })
            .expect("dynamic grid failed");
    });
    println!("dynamic_grid_64_tasks,{THREADS},{ns:.1}");

    // Drop the spin pools before benchmarking the blocking std barrier:
    // their busy-wait workers would starve it on oversubscribed machines.
    drop(pool);
    drop(exec);

    // Library-primitive comparison, two participants (main + 1 worker).
    // The worker performs *exactly* `ROUNDS` rounds (communicated up
    // front), so there is no shutdown handshake to race on — a blocking
    // barrier paired with a free-running worker loop can deadlock when
    // the worker observes the stop flag between rounds while the main
    // thread is already committed to one more wait.
    {
        let barrier = std::sync::Arc::new(std::sync::Barrier::new(2));
        let worker = {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                }
            })
        };
        let ns = time_per_round(ROUNDS, || {
            barrier.wait();
        });
        worker.join().unwrap();
        println!("std_barrier_round,2,{ns:.1}");
    }

    // The custom spin barrier in the same two-participant shape.
    {
        let barrier = std::sync::Arc::new(SpinBarrier::new(2));
        let worker = {
            let barrier = barrier.clone();
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    barrier.wait();
                }
            })
        };
        let ns = time_per_round(ROUNDS, || {
            barrier.wait();
        });
        worker.join().unwrap();
        println!("spin_barrier_round,2,{ns:.1}");
    }
}
