//! Strong/weak-scaling sweep support: per-thread-count executors built
//! from the detected topology, speedup/efficiency accounting, the
//! least-squares Amdahl fit, and assembly of the schema-v4 `scaling`
//! document (`docs/bench-schema.md`, `src/bin/scaling.rs`).
//!
//! Two sweep modes (the classic pair — see `docs/scaling.md`):
//!
//! * **strong**: the problem is fixed and the thread count grows.
//!   `speedup(n) = T(1)/T(n)`, `efficiency(n) = speedup(n)/n`.
//! * **weak**: the problem grows with the threads (batch `n·b₀` on `n`
//!   threads), so per-thread work is constant. `efficiency(n) =
//!   T(1)/T(n)` — ideal weak scaling holds the wall time flat — and the
//!   reported `speedup` is the scaled speedup `n·T(1)/T(n)`.

use wino_probe::{Json, MachineModel};
use wino_sched::{
    render_cpulist, Executor, SerialExecutor, ShardedPool, StaticExecutor, Topology,
};

/// One measured point of a scaling sweep (`scaling.points[i]` in the
/// schema-v4 report).
#[derive(Clone, Debug)]
pub struct ScalingPoint {
    pub layer: String,
    /// `"strong"` or `"weak"` ([`wino_probe::SCALING_MODES`]).
    pub mode: &'static str,
    pub threads: usize,
    /// Batch size of the (possibly grown) problem at this point.
    pub batch: usize,
    /// Executor kind the point ran under (`serial`/`static`/`sharded`).
    pub executor: &'static str,
    pub best_ms: f64,
    pub mean_ms: f64,
    pub speedup: f64,
    pub efficiency: f64,
    /// Worst/mean fork–join arrival skew (µs) of one probed pass; absent
    /// when instrumentation is compiled out.
    pub max_skew_us: Option<f64>,
    pub mean_skew_us: Option<f64>,
}

impl ScalingPoint {
    /// The point as a schema-v4 `scaling.points[]` element.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("layer".into(), Json::Str(self.layer.clone())),
            ("mode".into(), Json::Str(self.mode.into())),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("batch".into(), Json::Num(self.batch as f64)),
            ("executor".into(), Json::Str(self.executor.into())),
            ("best_ms".into(), Json::Num(self.best_ms)),
            ("mean_ms".into(), Json::Num(self.mean_ms)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("efficiency".into(), Json::Num(self.efficiency)),
        ];
        if let Some(s) = self.max_skew_us {
            fields.push(("max_skew_us".into(), Json::Num(s)));
        }
        if let Some(s) = self.mean_skew_us {
            fields.push(("mean_skew_us".into(), Json::Num(s)));
        }
        Json::Obj(fields)
    }
}

/// Build the executor a sweep point with `n` threads runs under, shaped
/// by the host topology. `n = 1` is the serial executor (the scaling
/// baseline must pay no fork–join cost it does not need); on a
/// single-domain machine — or when `n` does not reach past the first
/// domain, or oversubscribes the topology — a flat [`StaticExecutor`];
/// otherwise a [`ShardedPool`] over the first `n` CPUs in domain order,
/// preserving the domain boundaries between them. Returns the executor
/// plus its schema `executor` label.
pub fn executor_for(topo: &Topology, n: usize) -> (Box<dyn Executor>, &'static str) {
    if n <= 1 {
        return (Box::new(SerialExecutor), "serial");
    }
    let mut groups: Vec<&[usize]> = Vec::new();
    let mut left = n;
    for d in topo.domains() {
        if left == 0 {
            break;
        }
        let take = d.cpus.len().min(left);
        groups.push(&d.cpus[..take]);
        left -= take;
    }
    if left > 0 || groups.len() <= 1 {
        // Oversubscribed (more threads than the topology has CPUs) or
        // confined to one domain: sharding buys nothing.
        return (Box::new(StaticExecutor::new(n)), "static");
    }
    let spec: Vec<String> = groups.iter().map(|g| render_cpulist(g)).collect();
    let topo = Topology::from_spec(&spec.join(";"))
        .expect("cpulists rendered from a valid topology re-parse");
    (Box::new(ShardedPool::new(&topo)), "sharded")
}

/// Least-squares Amdahl fit over strong-scaling `(threads, best_ms)`
/// points: with `T(n) = T(1)·(s + (1−s)/n)`, the normalised residual
/// `T(n)/T(1) − 1/n = s·(1 − 1/n)` is linear in `s`, so
/// `s* = Σ yᵢxᵢ / Σ xᵢ²` with `x = 1 − 1/n`, `y = T(n)/T(1) − 1/n`,
/// clamped to `[0, 1]` (measurement noise can push the raw estimate
/// slightly outside). `None` without a 1-thread baseline or a second
/// distinct thread count — one point fits anything.
pub fn fit_serial_fraction(points: &[(usize, f64)]) -> Option<f64> {
    let t1 = points
        .iter()
        .filter(|(n, _)| *n == 1)
        .map(|&(_, t)| t)
        .fold(f64::INFINITY, f64::min);
    if !t1.is_finite() || t1 <= 0.0 {
        return None;
    }
    let (mut num, mut den) = (0.0f64, 0.0f64);
    for &(n, t) in points.iter().filter(|(n, _)| *n > 1) {
        let x = 1.0 - 1.0 / n as f64;
        let y = t / t1 - 1.0 / n as f64;
        num += y * x;
        den += x * x;
    }
    if den == 0.0 {
        return None;
    }
    Some((num / den).clamp(0.0, 1.0))
}

/// Assemble a complete schema-v4 scaling document: the standard header
/// ([`crate::perf::perf_document`]'s machine block), the topology the
/// sweep saw, every point, and the per-layer Amdahl fits.
#[allow(clippy::too_many_arguments)]
pub fn scaling_document(
    generated_by: &str,
    date: &str,
    machine: &MachineModel,
    topo: &Topology,
    host_threads: usize,
    efficiency_floor: f64,
    points: &[ScalingPoint],
    fits: &[(String, f64)],
) -> Json {
    let topology = Json::Obj(vec![
        ("domains".into(), Json::Num(topo.domains().len() as f64)),
        ("cpus".into(), Json::Num(topo.total_cpus() as f64)),
        ("smt".into(), Json::Num(topo.smt_per_core() as f64)),
        ("source".into(), Json::Str(topo.source().name().into())),
        ("spec".into(), Json::Str(topo.to_spec())),
    ]);
    let scaling = Json::Obj(vec![
        ("host_threads".into(), Json::Num(host_threads as f64)),
        ("efficiency_floor".into(), Json::Num(efficiency_floor)),
        ("skew_budget_us".into(), Json::Num(wino_probe::SMOKE_SKEW_BUDGET_US)),
        ("topology".into(), topology),
        ("points".into(), Json::Arr(points.iter().map(ScalingPoint::to_json).collect())),
        (
            "fits".into(),
            Json::Arr(
                fits.iter()
                    .map(|(layer, s)| {
                        Json::Obj(vec![
                            ("layer".into(), Json::Str(layer.clone())),
                            ("serial_fraction".into(), Json::Num(*s)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(wino_probe::SCHEMA_VERSION as f64)),
        ("generated_by".into(), Json::Str(generated_by.into())),
        ("date".into(), Json::Str(date.into())),
        (
            "machine".into(),
            Json::Obj(vec![
                ("peak_gflops".into(), Json::Num(machine.peak_gflops)),
                ("mem_bw_gbps".into(), Json::Num(machine.mem_bw_gbps)),
                ("threads".into(), Json::Num(machine.threads as f64)),
                ("simd".into(), Json::Str(wino_simd::backend_name().into())),
            ]),
        ),
        ("scaling".into(), scaling),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_fit_recovers_known_fractions() {
        // Synthetic T(n) = T1·(s + (1−s)/n) must fit back exactly.
        for s in [0.0, 0.1, 0.25, 1.0] {
            let t1 = 8.0;
            let pts: Vec<(usize, f64)> =
                [1usize, 2, 4, 8].iter().map(|&n| (n, t1 * (s + (1.0 - s) / n as f64))).collect();
            let got = fit_serial_fraction(&pts).unwrap();
            assert!((got - s).abs() < 1e-12, "s={s} got={got}");
        }
    }

    #[test]
    fn amdahl_fit_needs_baseline_and_second_point() {
        assert_eq!(fit_serial_fraction(&[]), None);
        assert_eq!(fit_serial_fraction(&[(1, 5.0)]), None);
        assert_eq!(fit_serial_fraction(&[(2, 5.0), (4, 3.0)]), None); // no T(1)
        assert!(fit_serial_fraction(&[(1, 5.0), (2, 5.0)]).is_some());
    }

    #[test]
    fn amdahl_fit_clamps_superlinear_noise() {
        // Better-than-linear measurements (cache effects) → clamp at 0.
        let pts = [(1, 8.0), (2, 3.5), (4, 1.6)];
        assert_eq!(fit_serial_fraction(&pts), Some(0.0));
    }

    #[test]
    fn executor_choice_tracks_topology_shape() {
        let flat = Topology::flat(8);
        assert_eq!(executor_for(&flat, 1).1, "serial");
        assert_eq!(executor_for(&flat, 4).1, "static");

        let two = Topology::from_spec("2x4").unwrap();
        // Within the first domain: flat. Past it: sharded. Beyond the
        // machine: flat again (oversubscribed).
        assert_eq!(executor_for(&two, 3).1, "static");
        let (exec, kind) = executor_for(&two, 6);
        assert_eq!(kind, "sharded");
        assert_eq!(exec.threads(), 6);
        assert_eq!(executor_for(&two, 9).1, "static");
    }

    #[test]
    fn sharded_point_executor_covers_a_grid() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let topo = Topology::from_spec("2x2").unwrap();
        let (exec, kind) = executor_for(&topo, 4);
        assert_eq!(kind, "sharded");
        let hits = AtomicUsize::new(0);
        exec.run_grid(&[6, 5], &|_s, _i| {
            // ORDERING: pure counter; the run_grid join orders it.
            hits.fetch_add(1, Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn scaling_document_passes_its_own_schema() {
        let machine = MachineModel { peak_gflops: 50.0, mem_bw_gbps: 12.0, threads: 4 };
        let topo = Topology::from_spec("2x2").unwrap();
        let points = vec![
            ScalingPoint {
                layer: "VGG 3.2".into(),
                mode: "strong",
                threads: 1,
                batch: 2,
                executor: "serial",
                best_ms: 4.0,
                mean_ms: 4.1,
                speedup: 1.0,
                efficiency: 1.0,
                max_skew_us: Some(0.0),
                mean_skew_us: Some(0.0),
            },
            ScalingPoint {
                layer: "VGG 3.2".into(),
                mode: "weak",
                threads: 4,
                batch: 8,
                executor: "sharded",
                best_ms: 4.4,
                mean_ms: 4.6,
                speedup: 3.6,
                efficiency: 0.91,
                max_skew_us: None,
                mean_skew_us: None,
            },
        ];
        let fits = vec![("VGG 3.2".to_string(), 0.12)];
        let doc = scaling_document(
            "unit-test",
            "2026-08-09",
            &machine,
            &topo,
            4,
            0.6,
            &points,
            &fits,
        );
        let reparsed = wino_probe::parse_json(&doc.render_pretty()).unwrap();
        wino_probe::validate_schema(&reparsed).unwrap();
    }
}
