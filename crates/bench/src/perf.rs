//! Perf-report support: machine calibration, baseline work models,
//! probed (instrumented) runs, and `BENCH_*.json` document assembly.
//!
//! The flow (`src/bin/perf.rs`, `scripts/bench.sh`):
//!
//! 1. [`calibrate`] measures attainable GEMM GFLOP/s and memory
//!    bandwidth with microbenchmarks — the [`MachineModel`] behind every
//!    roofline number in a report (a *software* roofline; no datasheet
//!    values).
//! 2. The timed runners in the crate root produce [`Measurement`]s from
//!    uninstrumented executors, exactly as the figure binaries do.
//! 3. [`probe_winograd`] / [`probe_direct`] / [`probe_im2col`] repeat one
//!    pass under a [`wino_sched::ProbedExecutor`] and fold the recorded
//!    spans with the per-stage work model into a
//!    [`wino_probe::StageReport`].
//! 4. [`layer_entry`] + [`perf_document`] assemble the versioned JSON
//!    validated by [`wino_probe::validate_schema`] and documented in
//!    `docs/bench-schema.md`.

use std::time::{SystemTime, UNIX_EPOCH};

use wino_baseline::{direct_conv, im2col_conv, im2col_conv_geo};
use wino_conv::{
    plan_dispatch, Activation, ConvOptions, ExecutionReport, FallbackPolicy, LayerSpec, Network,
    Scratch, WinogradLayer,
};
use wino_probe::{
    fold, Json, MachineModel, SpanCategory, StageReport, StageWork, WorkModel, SCHEMA_VERSION,
};
use wino_sched::{Executor, ProbedExecutor};
use wino_tensor::{BlockedImage, BlockedMatrices, ConvShape};
use wino_workloads::{time_best, Layer};

use crate::{geo_layer_data, layer_data, Measurement};

/// Today's UTC date as `YYYY-MM-DD` (no external time crates: civil date
/// from the days-since-epoch count, Gregorian calendar).
pub fn today_utc() -> String {
    let secs =
        SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_secs() as i64).unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

struct MutPtr(*mut f32);
// SAFETY: calibration tasks write disjoint slots of the sums buffer.
unsafe impl Sync for MutPtr {}
// SAFETY: the pointer targets a caller-owned buffer that outlives the
// fork–join moving this handle between threads.
unsafe impl Send for MutPtr {}
impl MutPtr {
    // A method (not direct field access) so closures capture the Sync
    // wrapper rather than the raw pointer field.
    fn get(&self) -> *mut f32 {
        self.0
    }
}

/// Microbenchmark the machine: attainable all-core GEMM GFLOP/s (the
/// monomorphised block-panel kernel on an in-cache problem) and
/// read bandwidth from DRAM (a 64 MiB parallel reduction). Both use the
/// supplied executor, so the model matches the thread count of the runs
/// it will be folded against.
pub fn calibrate(exec: &dyn Executor) -> MachineModel {
    // Peak: t × (rows·c · c·cp) batched GEMM, multi-block in every
    // dimension, sized to live in cache (~1.3 MB of panels).
    let (t, rows, c, cp) = (8usize, 512usize, 128usize, 128usize);
    let mut u = BlockedMatrices::new(t, rows, c, 8, 64);
    let mut v = BlockedMatrices::new(t, c, cp, 64, 64);
    let mut x = BlockedMatrices::new(t, rows, cp, 8, 64);
    for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
        *f = (i % 29) as f32 * 0.03 - 0.4;
    }
    for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
        *f = (i % 23) as f32 * 0.05 - 0.5;
    }
    let timing = time_best(3, || {
        wino_gemm::batched_gemm_parallel(&u, &v, &mut x, exec).expect("calibration gemm failed");
    });
    std::hint::black_box(x.as_slice().first());
    let peak_gflops = 2.0 * (t * rows * c * cp) as f64 / (timing.best_ms * 1e-3) / 1e9;

    // Bandwidth: sum a buffer far larger than any cache, split into
    // many more chunks than threads so static partitioning stays even.
    let words = 16usize << 20; // 64 MiB of f32
    let src = vec![1.0f32; words];
    let tasks = exec.threads().max(1) * 8;
    let chunk = words.div_ceil(tasks);
    let mut sums = vec![0.0f32; tasks];
    let ptr = MutPtr(sums.as_mut_ptr());
    let timing = time_best(3, || {
        exec.run_grid(&[tasks], &|_slot, i| {
            let lo = (i * chunk).min(words);
            let hi = ((i + 1) * chunk).min(words);
            // Eight independent accumulators so the loads, not the
            // f32-add dependency chain, limit throughput.
            let mut acc = [0.0f32; 8];
            let mut j = lo;
            while j + 8 <= hi {
                for (k, a) in acc.iter_mut().enumerate() {
                    *a += src[j + k];
                }
                j += 8;
            }
            let mut s: f32 = acc.iter().sum();
            while j < hi {
                s += src[j];
                j += 1;
            }
            // SAFETY: each task writes only its own slot `i`.
            unsafe { *ptr.get().add(i) = s };
        })
        .expect("calibration bandwidth pass failed");
    });
    std::hint::black_box(sums.first());
    let mem_bw_gbps = (words * 4) as f64 / (timing.best_ms * 1e-3) / 1e9;

    MachineModel { peak_gflops, mem_bw_gbps, threads: exec.threads() }
}

/// Work model of the vectorised direct baseline: all FLOPs in the single
/// `direct-kernel` stage; ideal-cache bytes = input + kernels + output,
/// each moved once.
pub fn direct_work_model(shape: &ConvShape) -> WorkModel {
    let in_elems = shape.batch * shape.in_channels * prod(&shape.image_dims);
    let ker_elems = shape.in_channels * shape.out_channels * prod(&shape.kernel_dims);
    let out_elems = shape.batch * shape.out_channels * prod(&shape.out_dims());
    let mut wm = WorkModel::new();
    wm.set(
        SpanCategory::DirectKernel,
        StageWork {
            flops: shape.direct_flops(),
            bytes: 4 * (in_elems + ker_elems + out_elems) as u128,
        },
    );
    wm
}

/// Work model of the im2col baseline. The GEMM stage carries the
/// arithmetic (`2 · rows · inner · C'`, rows = B·∏out, inner = C·∏r);
/// `im2col-lower` is pure data movement — lowering the input and kernels
/// on the way in, scattering the product on the way out.
pub fn im2col_work_model(shape: &ConvShape) -> WorkModel {
    let out_vol = prod(&shape.out_dims());
    let rows = shape.batch * out_vol;
    let inner = shape.in_channels * prod(&shape.kernel_dims);
    let cp = shape.out_channels;
    let in_elems = shape.batch * shape.in_channels * prod(&shape.image_dims);
    let ker_elems = inner * cp;
    let out_elems = shape.batch * cp * out_vol;
    let mut wm = WorkModel::new();
    wm.set(
        SpanCategory::Im2colLower,
        StageWork {
            flops: 0,
            bytes: 4 * (in_elems + rows * inner + ker_elems * 2 + rows * cp + out_elems) as u128,
        },
    );
    wm.set(
        SpanCategory::ElementwiseGemm,
        StageWork {
            flops: 2 * (rows * inner * cp) as u128,
            bytes: 4 * (rows * inner + inner * cp + rows * cp) as u128,
        },
    );
    wm
}

fn prod(dims: &[usize]) -> usize {
    dims.iter().product()
}

/// One instrumented Winograd pass, folded against the plan's own
/// [`WinogradLayer::work_model`]. `None` if the plan is rejected, the
/// forward fails, or probing is compiled out (no events to fold).
pub fn probe_winograd(
    layer: &Layer,
    m: &[usize],
    opts: ConvOptions,
    exec: &dyn Executor,
    machine: &MachineModel,
) -> Option<StageReport> {
    let plan = WinogradLayer::new(layer.shape.clone(), m, opts).ok()?;
    let (input, kernels) = layer_data(layer, 42);
    let mut output = plan.new_output().ok()?;
    let mut probed = ProbedExecutor::new(exec);
    let mut scratch = Scratch::new(&plan, probed.threads());
    plan.forward(&input, &kernels, &mut output, &mut scratch, &probed).ok()?;
    std::hint::black_box(output.as_slice().first());
    let events = probed.take_events();
    if events.is_empty() {
        return None;
    }
    Some(fold(&events, &plan.work_model(), machine))
}

/// One instrumented direct-convolution pass, folded against
/// [`direct_work_model`]. `None` when probing is compiled out.
pub fn probe_direct(layer: &Layer, exec: &dyn Executor, machine: &MachineModel) -> Option<StageReport> {
    let (input, kernels) = layer_data(layer, 42);
    let mut output =
        BlockedImage::zeros(layer.shape.batch, layer.shape.out_channels, &layer.shape.out_dims())
            .expect("catalogue output is allocatable");
    let mut probed = ProbedExecutor::new(exec);
    direct_conv(&input, &kernels, &layer.shape.padding, &mut output, &probed)
        .expect("probed direct_conv failed");
    std::hint::black_box(output.as_slice().first());
    let events = probed.take_events();
    if events.is_empty() {
        return None;
    }
    Some(fold(&events, &direct_work_model(&layer.shape), machine))
}

/// One instrumented im2col pass, folded against [`im2col_work_model`].
/// `None` when probing is compiled out.
pub fn probe_im2col(layer: &Layer, exec: &dyn Executor, machine: &MachineModel) -> Option<StageReport> {
    let (input, kernels) = layer_data(layer, 42);
    let mut output =
        BlockedImage::zeros(layer.shape.batch, layer.shape.out_channels, &layer.shape.out_dims())
            .expect("catalogue output is allocatable");
    let mut probed = ProbedExecutor::new(exec);
    im2col_conv(&input, &kernels, &layer.shape.padding, &mut output, &probed)
        .expect("probed im2col_conv failed");
    std::hint::black_box(output.as_slice().first());
    let events = probed.take_events();
    if events.is_empty() {
        return None;
    }
    Some(fold(&events, &im2col_work_model(&layer.shape), machine))
}

/// One instrumented pass through the dispatch layer's routed engine
/// (polyphase / grouped Winograd or the designed im2col fallback),
/// folded against [`wino_conv::DispatchPlan::work_model`]. `None` if the
/// layer is unrepresentable under `opts`' geometry or probing is
/// compiled out.
pub fn probe_dispatch(
    layer: &Layer,
    m: &[usize],
    opts: ConvOptions,
    exec: &dyn Executor,
    machine: &MachineModel,
) -> Option<StageReport> {
    let (dp, _) = plan_dispatch(&layer.shape, m, opts, &FallbackPolicy::default()).ok()?;
    let (input, kernels) = geo_layer_data(layer, dp.geo.groups, 42);
    let mut output = dp.new_output().ok()?;
    let mut probed = ProbedExecutor::new(exec);
    dp.forward(&input, &kernels, &mut output, &probed).ok()?;
    std::hint::black_box(output.as_slice().first());
    let events = probed.take_events();
    if events.is_empty() {
        return None;
    }
    Some(fold(&events, &dp.work_model(), machine))
}

/// One instrumented geometry-aware im2col pass, folded against the same
/// geometry's [`wino_conv::DispatchPlan::im2col_work_model`] — the
/// baseline side of every dispatch comparison row. `None` when probing
/// is compiled out.
pub fn probe_im2col_geo(
    layer: &Layer,
    opts: ConvOptions,
    exec: &dyn Executor,
    machine: &MachineModel,
) -> Option<StageReport> {
    // The dispatch plan is only borrowed for its geometry-normalised
    // shape/out-dims/work-model bookkeeping; the timed engine below is
    // the plain im2col baseline, whatever route the plan would take.
    let (dp, _) =
        plan_dispatch(&layer.shape, &vec![2; layer.rank()], opts, &FallbackPolicy::default())
            .ok()?;
    let (input, kernels) = geo_layer_data(layer, dp.geo.groups, 42);
    let mut output = dp.new_output().ok()?;
    let mut probed = ProbedExecutor::new(exec);
    im2col_conv_geo(&input, &kernels, &layer.shape.padding, &dp.geo, &mut output, &probed).ok()?;
    std::hint::black_box(output.as_slice().first());
    let events = probed.take_events();
    if events.is_empty() {
        return None;
    }
    Some(fold(&events, &dp.im2col_work_model(), machine))
}

/// One uninstrumented pass through the `Network` execution path to learn
/// what the degradation machinery actually did for this layer — the
/// [`ExecutionReport`] behind the row's schema-v3 `execution` object.
/// `None` if no plan exists even under the default fallback policy.
pub fn probe_execution(
    layer: &Layer,
    m: &[usize],
    opts: ConvOptions,
    exec: &dyn Executor,
) -> Option<ExecutionReport> {
    let s = &layer.shape;
    let spec = LayerSpec {
        out_channels: s.out_channels,
        kernel: s.kernel_dims.clone(),
        padding: s.padding.clone(),
        m: m.to_vec(),
        activation: Activation::None,
    };
    let policy = FallbackPolicy::default();
    let mut net = Network::with_policy(
        s.batch,
        s.in_channels,
        &s.image_dims,
        std::slice::from_ref(&spec),
        opts,
        exec.threads(),
        &policy,
    )
    .ok()?;
    let (input, kernels) = layer_data(layer, 42);
    let (_, reports) = net.run_net(&input, std::slice::from_ref(&kernels), exec, &policy).ok()?;
    reports.into_iter().next()
}

/// The schema-v3 `execution` object of one report row: which backend
/// produced the output and (when degraded) why.
pub fn execution_json(report: &ExecutionReport) -> Json {
    let mut fields = vec![("backend".into(), Json::Str(report.backend.name().to_string()))];
    if let Some(f) = &report.fallback {
        fields.push(("fallback".into(), Json::Str(f.code().to_string())));
    }
    Json::Obj(fields)
}

/// Schema-v2 accuracy columns of one report row. Both fields are
/// optional in the schema; `Accuracy::default()` emits neither (e.g.
/// when the oracle pass failed).
#[derive(Clone, Copy, Debug, Default)]
pub struct Accuracy {
    /// Measured max relative error vs the f64 oracle
    /// ([`crate::max_rel_error`]).
    pub max_rel_error: Option<f64>,
    /// The plan's a-priori bound ([`WinogradLayer::predicted_bound`]);
    /// only Winograd rows have one.
    pub predicted_bound: Option<f64>,
}

/// One `layers[]` element of the perf-report schema: the timed
/// measurement plus the folded stage breakdown of an instrumented pass,
/// the (schema v2) measured-vs-predicted accuracy columns and the
/// (schema v3) execution provenance.
pub fn layer_entry(
    meas: &Measurement,
    report: &StageReport,
    accuracy: Accuracy,
    execution: Option<&ExecutionReport>,
) -> Json {
    let mut fields = vec![
        ("layer".into(), Json::Str(meas.layer.clone())),
        ("impl".into(), Json::Str(meas.implementation.clone())),
        ("best_ms".into(), Json::Num(meas.timing.best_ms)),
        ("mean_ms".into(), Json::Num(meas.timing.mean_ms)),
        ("effective_gflops".into(), Json::Num(meas.gflops)),
        ("reps".into(), Json::Num(meas.timing.reps as f64)),
    ];
    if let Some(e) = accuracy.max_rel_error {
        fields.push(("max_rel_error".into(), Json::Num(e)));
    }
    if let Some(b) = accuracy.predicted_bound {
        fields.push(("predicted_bound".into(), Json::Num(b)));
    }
    if let Some(e) = execution {
        fields.push(("execution".into(), execution_json(e)));
    }
    fields.extend([
        ("total_stage_wall_ms".into(), Json::Num(report.total_wall_ms)),
        ("stages".into(), report.stages_json()),
        ("barrier".into(), report.barrier_json()),
    ]);
    Json::Obj(fields)
}

/// The schema-v5 top-level `memory` object: the analytic footprint model
/// next to the observed allocator tallies, so a report reader can judge
/// the model against what the process actually did. `budget_bytes` is
/// the configured admission ceiling, when one was set.
pub fn memory_json(modeled_bytes: usize, budget_bytes: Option<usize>) -> Json {
    use wino_probe::Counter;
    let mut fields = vec![
        ("modeled_bytes".into(), Json::Num(modeled_bytes as f64)),
        ("alloc_bytes_peak".into(), Json::Num(Counter::AllocBytesPeak.get() as f64)),
        ("alloc_calls".into(), Json::Num(Counter::AllocCalls.get() as f64)),
        ("demotions".into(), Json::Num(Counter::MemoryDemotions.get() as f64)),
        ("rescues".into(), Json::Num(Counter::MemoryRescues.get() as f64)),
    ];
    if let Some(b) = budget_bytes {
        fields.push(("budget_bytes".into(), Json::Num(b as f64)));
    }
    #[cfg(feature = "fault-inject")]
    fields.push((
        "injected_failures".into(),
        Json::Num(wino_simd::fault::injected_failures() as f64),
    ));
    Json::Obj(fields)
}

/// Assemble a complete schema-version-[`SCHEMA_VERSION`] document.
pub fn perf_document(
    generated_by: &str,
    date: &str,
    machine: &MachineModel,
    layers: Vec<Json>,
) -> Json {
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
        ("generated_by".into(), Json::Str(generated_by.to_string())),
        ("date".into(), Json::Str(date.to_string())),
        (
            "machine".into(),
            Json::Obj(vec![
                ("peak_gflops".into(), Json::Num(machine.peak_gflops)),
                ("mem_bw_gbps".into(), Json::Num(machine.mem_bw_gbps)),
                ("threads".into(), Json::Num(machine.threads as f64)),
                ("simd".into(), Json::Str(wino_simd::backend_name().to_string())),
            ]),
        ),
        ("layers".into(), Json::Arr(layers)),
        (
            // Sentinel tallies across the whole run (v2). All zero in a
            // plain timing run — the timed passes never enable sampling —
            // but a probed run with sentinels on lands its evidence here.
            "counters".into(),
            Json::Obj(
                wino_probe::Counter::ALL
                    .iter()
                    .map(|c| (c.name().to_string(), Json::Num(c.get() as f64)))
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_formula_matches_known_days() {
        // 2026-08-07 is 20_672 days after 1970-01-01; spot-check the
        // civil-from-days math via a fixed divisor rather than the clock.
        let fmt = |days: i64| {
            let z = days + 719_468;
            let era = z.div_euclid(146_097);
            let doe = z.rem_euclid(146_097);
            let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
            let y = yoe + era * 400;
            let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
            let mp = (5 * doy + 2) / 153;
            let d = doy - (153 * mp + 2) / 5 + 1;
            let m = if mp < 10 { mp + 3 } else { mp - 9 };
            let y = if m <= 2 { y + 1 } else { y };
            format!("{y:04}-{m:02}-{d:02}")
        };
        assert_eq!(fmt(0), "1970-01-01");
        assert_eq!(fmt(19_723), "2024-01-01"); // leap year start
        assert_eq!(fmt(20_672), "2026-08-07");
        // And the live function at least has the right shape.
        let today = today_utc();
        assert_eq!(today.len(), 10);
        assert_eq!(today.as_bytes()[4], b'-');
        assert_eq!(today.as_bytes()[7], b'-');
    }

    #[test]
    fn direct_work_model_formulas() {
        // 1×16×16, 10×10 image, 3×3 kernel, pad 0 → out 8×8.
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[0, 0]).unwrap();
        let wm = direct_work_model(&s);
        let w = wm.get(SpanCategory::DirectKernel).unwrap();
        // direct flops = 2·16·16·64·9.
        assert_eq!(w.flops, 2 * 16 * 16 * 64 * 9);
        // bytes = 4·(1600 + 2304 + 1024) input/kernels/output f32s.
        assert_eq!(w.bytes, 4 * (16 * 100 + 16 * 16 * 9 + 16 * 64));
    }

    #[test]
    fn im2col_work_model_gemm_stage() {
        let s = ConvShape::new(1, 16, 16, &[10, 10], &[3, 3], &[0, 0]).unwrap();
        let wm = im2col_work_model(&s);
        let g = wm.get(SpanCategory::ElementwiseGemm).unwrap();
        // rows = 64, inner = 16·9 = 144, cp = 16.
        assert_eq!(g.flops, 2 * 64 * 144 * 16);
        assert_eq!(g.bytes, 4 * (64 * 144 + 144 * 16 + 64 * 16));
        let l = wm.get(SpanCategory::Im2colLower).unwrap();
        assert_eq!(l.flops, 0);
        assert!(l.bytes > 0);
    }

    #[test]
    fn perf_document_validates_with_stub_layer() {
        let machine = MachineModel { peak_gflops: 50.0, mem_bw_gbps: 12.0, threads: 2 };
        let stage = Json::Obj(vec![
            ("stage".into(), Json::Str("direct-kernel".into())),
            ("wall_ms".into(), Json::Num(1.0)),
            ("cpu_ms".into(), Json::Num(0.0)),
            ("spans".into(), Json::Num(1.0)),
            ("gflops".into(), Json::Num(10.0)),
            ("arith_intensity".into(), Json::Num(2.0)),
        ]);
        let layer = Json::Obj(vec![
            ("layer".into(), Json::Str("VGG 3.2".into())),
            ("impl".into(), Json::Str("direct".into())),
            ("best_ms".into(), Json::Num(1.0)),
            ("mean_ms".into(), Json::Num(1.1)),
            ("effective_gflops".into(), Json::Num(9.0)),
            ("reps".into(), Json::Num(3.0)),
            (
                "execution".into(),
                execution_json(&ExecutionReport {
                    layer: 0,
                    backend: wino_conv::LayerBackend::Im2col,
                    fallback: None,
                }),
            ),
            ("stages".into(), Json::Arr(vec![stage])),
            (
                "barrier".into(),
                Json::Obj(vec![
                    ("fork_joins".into(), Json::Num(1.0)),
                    ("max_skew_us".into(), Json::Num(0.0)),
                    ("mean_skew_us".into(), Json::Num(0.0)),
                    ("total_wait_ms".into(), Json::Num(0.0)),
                ]),
            ),
        ]);
        let doc = perf_document("unit-test", "2026-08-07", &machine, vec![layer]);
        let reparsed = wino_probe::parse_json(&doc.render_pretty()).unwrap();
        wino_probe::validate_schema(&reparsed).unwrap();
    }

    #[test]
    fn calibration_is_positive_and_finite() {
        let m = calibrate(&wino_sched::SerialExecutor);
        assert!(m.peak_gflops.is_finite() && m.peak_gflops > 0.0);
        assert!(m.mem_bw_gbps.is_finite() && m.mem_bw_gbps > 0.0);
        assert_eq!(m.threads, 1);
    }
}
