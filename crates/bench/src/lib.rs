//! # wino-bench
//!
//! Shared plumbing for the benchmark binaries that regenerate the paper's
//! tables and figures (see `EXPERIMENTS.md` for the index):
//!
//! * timed runners ([`run_winograd`], [`run_direct`], [`run_im2col`],
//!   [`run_fft`]) producing [`Measurement`] rows with the Fig. 5
//!   direct-FLOPs effective-GFLOP/s normaliser,
//! * the [`perf`] module: machine calibration, per-stage work models and
//!   instrumented runs behind the `probe` feature, and the versioned
//!   `BENCH_*.json` document assembly (`docs/bench-schema.md`),
//! * a tiny flag parser ([`Args`]) and executor factory
//!   ([`make_executor`]) shared by every binary.
//!
//! ```
//! use wino_bench::Measurement;
//! use wino_workloads::Timing;
//!
//! let m = Measurement {
//!     layer: "VGG 3.2".into(),
//!     implementation: "direct".into(),
//!     timing: Timing { best_ms: 1.0, mean_ms: 1.5, reps: 3 },
//!     gflops: 42.0,
//! };
//! assert_eq!(Measurement::csv_header(), "layer,impl,best_ms,mean_ms,effective_gflops");
//! assert_eq!(m.to_csv(), "VGG 3.2,direct,1.000,1.500,42.00");
//! ```

pub mod perf;
pub mod scaling;

use wino_baseline::{direct_conv, im2col_conv, im2col_conv_geo};
use wino_conv::{plan_dispatch, ConvOptions, FallbackPolicy, Scratch, WinogradLayer};
use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvGeometry, ConvShape, SimpleImage};
use wino_workloads::{effective_gflops, time_best, uniform_input, xavier_kernels, Layer, Timing};

/// One measured row of a Fig. 5-style report.
#[derive(Clone, Debug)]
pub struct Measurement {
    pub layer: String,
    pub implementation: String,
    pub timing: Timing,
    pub gflops: f64,
}

impl Measurement {
    pub fn csv_header() -> &'static str {
        "layer,impl,best_ms,mean_ms,effective_gflops"
    }

    /// The [`Measurement::csv_header`] columns as formatted cells.
    pub fn csv_cells(&self) -> Vec<String> {
        vec![
            self.layer.clone(),
            self.implementation.clone(),
            format!("{:.3}", self.timing.best_ms),
            format!("{:.3}", self.timing.mean_ms),
            format!("{:.2}", self.gflops),
        ]
    }

    pub fn to_csv(&self) -> String {
        self.csv_cells().join(",")
    }
}

/// Row sink shared by the figure binaries: CSV on stdout by default, or
/// (with `--json`) a buffered array of objects — one per row, keyed by
/// column name — printed by [`Rows::finish`]. Cells that parse as
/// numbers become JSON numbers; empty cells become `null`.
pub struct Rows {
    columns: &'static [&'static str],
    json: bool,
    buf: Vec<wino_probe::Json>,
}

impl Rows {
    pub fn new(json: bool, columns: &'static [&'static str]) -> Rows {
        if !json {
            println!("{}", columns.join(","));
        }
        Rows { columns, json, buf: Vec::new() }
    }

    /// Emit one row of preformatted cells (must match the column count).
    pub fn push(&mut self, values: &[String]) {
        use wino_probe::Json;
        assert_eq!(values.len(), self.columns.len(), "row width != column count");
        if self.json {
            let fields = self
                .columns
                .iter()
                .zip(values)
                .map(|(c, v)| {
                    let cell = if v.is_empty() {
                        Json::Null
                    } else {
                        v.parse::<f64>().map(Json::Num).unwrap_or_else(|_| Json::Str(v.clone()))
                    };
                    ((*c).to_string(), cell)
                })
                .collect();
            self.buf.push(Json::Obj(fields));
        } else {
            println!("{}", values.join(","));
        }
    }

    /// Print the buffered JSON array (no-op in CSV mode).
    pub fn finish(self) {
        if self.json {
            print!("{}", wino_probe::Json::Arr(self.buf).render_pretty());
        }
    }
}

fn measurement(layer: &Layer, name: String, shape: &ConvShape, timing: Timing) -> Measurement {
    Measurement {
        layer: layer.id(),
        implementation: name,
        gflops: effective_gflops(shape, timing.best_ms),
        timing,
    }
}

/// Deterministic blocked input/kernels for a layer.
pub fn layer_data(layer: &Layer, seed: u64) -> (BlockedImage, BlockedKernels) {
    let img = uniform_input(&layer.shape, seed);
    let ker = xavier_kernels(&layer.shape, seed ^ 0xabcd);
    (
        BlockedImage::from_simple(&img).expect("catalogue layers are blockable"),
        BlockedKernels::from_simple(&ker).expect("catalogue kernels are blockable"),
    )
}

/// f64 ground truth for a layer's deterministic bench data (the same
/// seed-42 input/kernels every `run_*` runner times). One `direct_f64`
/// pass per layer — compute it once and reuse it across implementations.
pub fn layer_truth(layer: &Layer) -> SimpleImage {
    let img = uniform_input(&layer.shape, 42);
    let ker = xavier_kernels(&layer.shape, 42 ^ 0xabcd);
    wino_baseline::direct_f64(&img, &ker, &layer.shape.padding)
}

/// Max relative output error against a [`layer_truth`] oracle:
/// `max|got − truth| / max(‖truth‖∞, 1)` — the same normalisation the
/// runtime accuracy sentinels use, so report numbers are directly
/// comparable to `predicted_bound`.
pub fn max_rel_error(out: &BlockedImage, truth: &SimpleImage) -> f64 {
    let (max_abs, _) = wino_baseline::element_errors(&out.to_simple(), truth);
    let inf = truth.data.iter().fold(0.0f64, |a, &v| a.max((v as f64).abs()));
    max_abs / inf.max(1.0)
}

/// One untimed Winograd forward on the bench data, returning the output
/// plus the plan's a-priori error bound. `None` if the plan is rejected.
pub fn winograd_output(
    layer: &Layer,
    m: &[usize],
    opts: ConvOptions,
    exec: &dyn Executor,
) -> Option<(BlockedImage, f64)> {
    let plan = WinogradLayer::new(layer.shape.clone(), m, opts).ok()?;
    let (input, kernels) = layer_data(layer, 42);
    let mut output = plan.new_output().ok()?;
    let mut scratch = Scratch::new(&plan, exec.threads());
    plan.forward(&input, &kernels, &mut output, &mut scratch, exec).ok()?;
    let bound = plan.predicted_bound();
    Some((output, bound))
}

/// One untimed direct-convolution forward on the bench data.
pub fn direct_output(layer: &Layer, exec: &dyn Executor) -> BlockedImage {
    let (input, kernels) = layer_data(layer, 42);
    let mut output =
        BlockedImage::zeros(layer.shape.batch, layer.shape.out_channels, &layer.shape.out_dims())
            .unwrap();
    direct_conv(&input, &kernels, &layer.shape.padding, &mut output, exec)
        .expect("accuracy direct_conv failed");
    output
}

/// One untimed im2col forward on the bench data.
pub fn im2col_output(layer: &Layer, exec: &dyn Executor) -> BlockedImage {
    let (input, kernels) = layer_data(layer, 42);
    let mut output =
        BlockedImage::zeros(layer.shape.batch, layer.shape.out_channels, &layer.shape.out_dims())
            .unwrap();
    im2col_conv(&input, &kernels, &layer.shape.padding, &mut output, exec)
        .expect("accuracy im2col_conv failed");
    output
}

/// Row-name suffix encoding a non-identity geometry (`" s2x2"`,
/// `" d2x2"`, `" g4"`); empty for the identity, so geometry rows never
/// collide with the plain runners' labels.
fn geo_suffix(geo: &ConvGeometry) -> String {
    let join =
        |v: &[usize]| v.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x");
    let mut s = String::new();
    if geo.stride.iter().any(|&x| x != 1) {
        s.push_str(&format!(" s{}", join(&geo.stride)));
    }
    if geo.dilation.iter().any(|&x| x != 1) {
        s.push_str(&format!(" d{}", join(&geo.dilation)));
    }
    if geo.groups > 1 {
        s.push_str(&format!(" g{}", geo.groups));
    }
    s
}

/// Effective GFLOP/s under a geometry: the *geometry's* direct-conv FLOP
/// count (strided layers do `1/∏s` of the dense work, grouped `1/G`)
/// over the best time — the identity-geometry [`effective_gflops`]
/// normaliser would overstate strided rows 4×.
fn geo_gflops(direct_flops: u128, ms: f64) -> f64 {
    direct_flops as f64 / (ms * 1e-3) / 1e9
}

/// Deterministic blocked input/kernels for a layer under the grouped
/// kernel convention: `kernels.in_channels == C / groups` (identical to
/// [`layer_data`] when `groups == 1`).
pub fn geo_layer_data(layer: &Layer, groups: usize, seed: u64) -> (BlockedImage, BlockedKernels) {
    let s = &layer.shape;
    let img = uniform_input(s, seed);
    let gshape = ConvShape::new(
        s.batch,
        s.in_channels / groups.max(1),
        s.out_channels,
        &s.image_dims,
        &s.kernel_dims,
        &s.padding,
    )
    .expect("per-group shape of a catalogue layer is valid");
    let ker = xavier_kernels(&gshape, seed ^ 0xabcd);
    (
        BlockedImage::from_simple(&img).expect("catalogue layers are blockable"),
        BlockedKernels::from_simple(&ker).expect("catalogue kernels are blockable"),
    )
}

/// f64 ground truth for [`geo_layer_data`]'s seed-42 bench data under
/// the geometry carried by `opts` — the oracle behind every geometry
/// row's `max_rel_error` column.
pub fn geo_layer_truth(layer: &Layer, opts: ConvOptions) -> SimpleImage {
    let s = &layer.shape;
    let geo = opts.geometry(s.rank());
    let img = uniform_input(s, 42);
    let gshape = ConvShape::new(
        s.batch,
        s.in_channels / geo.groups,
        s.out_channels,
        &s.image_dims,
        &s.kernel_dims,
        &s.padding,
    )
    .expect("per-group shape of a catalogue layer is valid");
    let ker = xavier_kernels(&gshape, 42 ^ 0xabcd);
    wino_baseline::direct_f64_geo(&img, &ker, &s.padding, &geo)
}

/// One untimed dispatched forward on the geometry bench data. `None` if
/// the layer is unrepresentable under `opts` or the route fails.
pub fn dispatch_output(
    layer: &Layer,
    m: &[usize],
    opts: ConvOptions,
    exec: &dyn Executor,
) -> Option<BlockedImage> {
    let (dp, _) = plan_dispatch(&layer.shape, m, opts, &FallbackPolicy::default()).ok()?;
    let (input, kernels) = geo_layer_data(layer, dp.geo.groups, 42);
    let mut output = dp.new_output().ok()?;
    dp.forward(&input, &kernels, &mut output, exec).ok()?;
    Some(output)
}

/// Time the dispatch layer's routed engine (polyphase / grouped Winograd
/// or the designed im2col fallback) for one tile choice under the
/// geometry carried by `opts`. The row is labelled by the route's
/// reported backend plus the geometry suffix (`"winograd-poly F(4x4)
/// s2x2"`); GFLOP/s use the geometry's own direct-FLOP normaliser.
/// `None` if the layer is unrepresentable under `opts`.
pub fn run_dispatch(
    layer: &Layer,
    m: &[usize],
    opts: ConvOptions,
    exec: &dyn Executor,
    reps: usize,
) -> Option<Measurement> {
    let (dp, _) = plan_dispatch(&layer.shape, m, opts, &FallbackPolicy::default()).ok()?;
    let (input, kernels) = geo_layer_data(layer, dp.geo.groups, 42);
    let mut output = dp.new_output().ok()?;
    let m_str: Vec<String> = m.iter().map(|x| x.to_string()).collect();
    let name = format!("{} F({}){}", dp.backend().name(), m_str.join("x"), geo_suffix(&dp.geo));
    let timing = time_best(reps, || {
        dp.forward(&input, &kernels, &mut output, exec).expect("benchmark dispatch forward failed");
    });
    std::hint::black_box(output.as_slice().first());
    let gflops = geo_gflops(dp.direct_flops(), timing.best_ms);
    Some(Measurement { layer: layer.id(), implementation: name, timing, gflops })
}

/// One untimed geometry-aware im2col forward on the geometry bench data.
pub fn im2col_geo_output(layer: &Layer, opts: ConvOptions, exec: &dyn Executor) -> Option<BlockedImage> {
    let s = &layer.shape;
    let geo = opts.geometry(s.rank());
    let (input, kernels) = geo_layer_data(layer, geo.groups, 42);
    let mut output =
        BlockedImage::zeros(s.batch, s.out_channels, &geo.out_dims(s).ok()?).ok()?;
    im2col_conv_geo(&input, &kernels, &s.padding, &geo, &mut output, exec).ok()?;
    Some(output)
}

/// Time the geometry-aware im2col + GEMM baseline — the universal
/// fallback every dispatch route is judged against. `None` if the layer
/// is unrepresentable under `opts`.
pub fn run_im2col_geo(
    layer: &Layer,
    opts: ConvOptions,
    exec: &dyn Executor,
    reps: usize,
) -> Option<Measurement> {
    let s = &layer.shape;
    let geo = opts.geometry(s.rank());
    geo.validate(s).ok()?;
    let (input, kernels) = geo_layer_data(layer, geo.groups, 42);
    let mut output =
        BlockedImage::zeros(s.batch, s.out_channels, &geo.out_dims(s).ok()?).ok()?;
    let timing = time_best(reps, || {
        im2col_conv_geo(&input, &kernels, &s.padding, &geo, &mut output, exec)
            .expect("benchmark im2col_conv_geo failed");
    });
    std::hint::black_box(output.as_slice().first());
    let gflops = geo_gflops(2 * geo.direct_macs(s).ok()?, timing.best_ms);
    Some(Measurement {
        layer: layer.id(),
        implementation: format!("im2col-gemm{}", geo_suffix(&geo)),
        timing,
        gflops,
    })
}

/// Time our Winograd implementation for one tile choice. Returns `None`
/// if the plan is rejected (e.g. tile too large for the layer).
pub fn run_winograd(
    layer: &Layer,
    m: &[usize],
    fx: bool,
    opts: ConvOptions,
    exec: &dyn Executor,
    reps: usize,
) -> Option<Measurement> {
    let plan = WinogradLayer::new(layer.shape.clone(), m, opts).ok()?;
    let (input, kernels) = layer_data(layer, 42);
    let mut output = plan.new_output().ok()?;
    let mut scratch = Scratch::new(&plan, exec.threads());
    let m_str: Vec<String> = m.iter().map(|x| x.to_string()).collect();
    // Non-default schedules are part of the row identity — a pipelined
    // and a fused-scatter run of the same tile must not collapse into
    // one label.
    let sched = match opts.schedule {
        wino_conv::Schedule::FusedScatter => String::new(),
        s => format!(" [{}]", s.name()),
    };
    let name = if fx {
        format!("winograd-fx F({}){sched}", m_str.join("x"))
    } else {
        format!("winograd F({}){sched}", m_str.join("x"))
    };
    let timing = if fx {
        let tk = plan.prepare_kernels(&kernels, &mut scratch, exec).ok()?;
        time_best(reps, || {
            plan.forward_fx(&input, &tk, &mut output, &mut scratch, exec)
                .expect("benchmark forward failed");
        })
    } else {
        time_best(reps, || {
            plan.forward(&input, &kernels, &mut output, &mut scratch, exec)
                .expect("benchmark forward failed");
        })
    };
    std::hint::black_box(output.as_slice().first());
    Some(measurement(layer, name, &layer.shape, timing))
}

/// Time the vectorised direct-convolution baseline.
pub fn run_direct(layer: &Layer, exec: &dyn Executor, reps: usize) -> Measurement {
    let (input, kernels) = layer_data(layer, 42);
    let mut output =
        BlockedImage::zeros(layer.shape.batch, layer.shape.out_channels, &layer.shape.out_dims())
            .unwrap();
    let timing = time_best(reps, || {
        direct_conv(&input, &kernels, &layer.shape.padding, &mut output, exec)
            .expect("benchmark direct_conv failed");
    });
    std::hint::black_box(output.as_slice().first());
    measurement(layer, "direct".into(), &layer.shape, timing)
}

/// Time the im2col + GEMM baseline.
pub fn run_im2col(layer: &Layer, exec: &dyn Executor, reps: usize) -> Measurement {
    let (input, kernels) = layer_data(layer, 42);
    let mut output =
        BlockedImage::zeros(layer.shape.batch, layer.shape.out_channels, &layer.shape.out_dims())
            .unwrap();
    let timing = time_best(reps, || {
        im2col_conv(&input, &kernels, &layer.shape.padding, &mut output, exec)
            .expect("benchmark im2col_conv failed");
    });
    std::hint::black_box(output.as_slice().first());
    measurement(layer, "im2col-gemm".into(), &layer.shape, timing)
}

/// Time the FFT baseline (operates on interchange tensors).
pub fn run_fft(layer: &Layer, exec: &dyn Executor, reps: usize) -> Measurement {
    let img = uniform_input(&layer.shape, 42);
    let ker = xavier_kernels(&layer.shape, 42 ^ 0xabcd);
    let timing = time_best(reps, || {
        let out = wino_fft::fft_conv(&img, &ker, &layer.shape.padding, exec)
            .expect("benchmark fft_conv failed");
        std::hint::black_box(out.data.first().copied());
    });
    measurement(layer, "fft".into(), &layer.shape, timing)
}

/// Minimal flag parser: `--key value` pairs plus bare flags.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    pub fn from_env() -> Args {
        Args { raw: std::env::args().skip(1).collect() }
    }

    pub fn flag(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == name)
    }

    pub fn value(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(|s| s.as_str())
    }

    pub fn usize_or(&self, name: &str, default: usize) -> usize {
        self.value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    pub fn positional(&self) -> Vec<&str> {
        let mut out = Vec::new();
        let mut skip = false;
        for (i, a) in self.raw.iter().enumerate() {
            if skip {
                skip = false;
                continue;
            }
            if let Some(stripped) = a.strip_prefix("--") {
                // Known value-taking flags consume the next token.
                if ["threads", "reps", "net", "image", "out", "date", "rows", "t", "validate"]
                    .contains(&stripped)
                {
                    skip = true;
                }
                let _ = i;
                continue;
            }
            out.push(a.as_str());
        }
        out
    }
}

/// Build the requested executor (`--threads N`, default: the detected
/// topology's CPU count via [`wino_sched::configured_threads`], which
/// honours the `WINO_THREADS` override; `1` gives the serial executor).
pub fn make_executor(args: &Args) -> Box<dyn Executor> {
    let threads = args.usize_or("--threads", wino_sched::configured_threads());
    if threads <= 1 {
        Box::new(wino_sched::SerialExecutor)
    } else {
        Box::new(wino_sched::StaticExecutor::new(threads))
    }
}
