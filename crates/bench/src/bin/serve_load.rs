//! Open-loop load generator for the serving layer — the overload gate's
//! evidence, emitted as a schema-v3 `BENCH_serve.json` document.
//!
//! Open-loop means arrivals follow a fixed schedule regardless of
//! completions (the standard way to expose coordinated omission): the
//! generator fires `--requests` single-image requests at `--load` times
//! the measured sustainable rate, each with a `--deadline-ms` deadline,
//! and tallies the typed outcome of every one. Nothing is allowed to
//! disappear: every request either completes or carries a
//! `ServeError`.
//!
//! ```text
//! cargo run -p wino-bench --release --bin serve_load -- \
//!     [--requests N] [--threads N] [--deadline-ms D] [--load F] \
//!     [--queue N] [--max-batch N] [--watchdog-ms W] [--out FILE] \
//!     [--date YYYY-MM-DD] [--soak]
//! ```
//!
//! `--soak` (requires the `fault-inject` feature) arms worker panics,
//! barrier stalls and stage poisoning on a fixed cadence through the
//! first half of the run, then drives a fault-free recovery tail and
//! asserts: no escaped panic, all shed/failed requests carry typed
//! errors, the breaker tripped and recovered to `full`, the pool was
//! rebuilt, and the admitted p99 stayed within the deadline.

use std::time::{Duration, Instant};

use wino_bench::perf::{calibrate, memory_json, today_utc};
use wino_bench::{make_executor, Args};
use wino_conv::{ConvOptions, FallbackPolicy, LayerSpec, Network};
use wino_probe::{parse_json, validate_schema, Counter, Json, MachineModel, SCHEMA_VERSION};
use wino_serve::{
    BreakerConfig, DegradeLevel, ModelSpec, ServeError, ServeOptions, ServeStats, Server,
    ServiceModel, Ticket,
};
use wino_tensor::{BlockedImage, BlockedKernels, SimpleKernels};

/// The served workload: two 3×3 "same" layers on 16-channel 12×12
/// images — small enough that a 10k-request soak finishes in seconds,
/// real enough to exercise every pipeline stage.
fn model_spec(watchdog_ms: Option<u64>) -> ModelSpec {
    let mut spec = ModelSpec::new(
        16,
        vec![12, 12],
        vec![LayerSpec::same(16, 2, 3, 2), LayerSpec::same(16, 2, 3, 2)],
    );
    if let Some(ms) = watchdog_ms {
        spec.opts.watchdog = Some(Duration::from_millis(ms));
    }
    spec
}

fn model_kernels(spec: &ModelSpec) -> Vec<BlockedKernels> {
    spec.shapes(1)
        .expect("workload geometry is valid")
        .iter()
        .map(|s| {
            let k = SimpleKernels::from_fn(s.out_channels, s.in_channels, &s.kernel_dims, |co, ci, xy| {
                ((co * 7 + ci * 3 + xy.iter().sum::<usize>()) % 13) as f32 * 0.05 - 0.3
            });
            BlockedKernels::from_simple(&k).expect("workload kernels are blockable")
        })
        .collect()
}

fn request_image(i: usize) -> BlockedImage {
    let mut img = BlockedImage::zeros(1, 16, &[12, 12]).expect("request geometry is valid");
    for (j, v) in img.as_mut_slice().iter_mut().enumerate() {
        *v = (((i * 31 + j) % 19) as f32 - 9.0) * 0.07;
    }
    img
}

/// Measure the real batch-1 service time of the workload (the offered
/// load is scaled from *measured* capacity, so the overload factor stays
/// honest even where the roofline estimate is off).
fn measure_per_image_ms(spec: &ModelSpec, kernels: &[BlockedKernels], threads: usize) -> f64 {
    let policy = FallbackPolicy::default();
    let mut net = Network::with_policy(
        1,
        spec.in_channels,
        &spec.image_dims,
        &spec.layers,
        ConvOptions { watchdog: None, ..spec.opts },
        threads,
        &policy,
    )
    .expect("workload must plan");
    // Measure with the same executor shape the server will use — the
    // fork–join launch cost dominates at this layer size, so a serial
    // measurement would overstate sustainable throughput badly.
    let exec: Box<dyn wino_sched::Executor> = if threads <= 1 {
        Box::new(wino_sched::SerialExecutor)
    } else {
        Box::new(wino_sched::StaticExecutor::new(threads))
    };
    let input = request_image(0);
    // One warmup, then best-of-5.
    let mut best = f64::INFINITY;
    for _ in 0..6 {
        let t = Instant::now();
        let out = net.run_net(&input, kernels, exec.as_ref(), &policy).expect("warmup run failed");
        std::hint::black_box(out.0.as_slice().first());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best.max(1e-3)
}

/// Pace the open loop: wait until `at`, sleeping coarsely and spinning
/// the final stretch (sleep granularity is far above sub-ms
/// inter-arrival gaps).
fn pace_until(at: Instant) {
    loop {
        let now = Instant::now();
        if now >= at {
            return;
        }
        let left = at - now;
        if left > Duration::from_micros(500) {
            std::thread::sleep(left - Duration::from_micros(300));
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(feature = "fault-inject")]
fn arm_fault(round: usize, threads: usize, stall: Duration) {
    use wino_sched::fault;
    match round % 3 {
        0 => fault::arm_panic(1 % threads.max(1), fault::When::Next),
        1 => fault::arm_stall(1 % threads.max(1), fault::When::Next, stall),
        _ => fault::arm_poison_stage(2),
    }
}

#[derive(Default)]
struct Tally {
    completed: u64,
    completed_in_deadline: u64,
    failed: u64,
    shed_overload: u64,
    shed_deadline: u64,
    shed_predicted: u64,
    shed_memory: u64,
    shut_down: u64,
    latencies_ms: Vec<f64>,
    backends: std::collections::BTreeMap<&'static str, u64>,
    fallbacks: std::collections::BTreeMap<&'static str, u64>,
}

impl Tally {
    fn record_rejection(&mut self, e: &ServeError) {
        match e {
            ServeError::Overloaded { .. } => self.shed_overload += 1,
            ServeError::DeadlineExceeded { .. } => self.shed_deadline += 1,
            ServeError::PredictedMiss { .. } => self.shed_predicted += 1,
            ServeError::MemoryPressure { .. } => self.shed_memory += 1,
            ServeError::ShutDown => self.shut_down += 1,
            ServeError::Failed(_) => self.failed += 1,
        }
    }

    fn record_response(&mut self, resp: wino_serve::ServeResponse) {
        match &resp.output {
            Ok(_) => {
                self.completed += 1;
                if resp.report.deadline_met {
                    self.completed_in_deadline += 1;
                }
                self.latencies_ms.push(resp.report.total_ms);
                for l in &resp.report.layers {
                    *self.backends.entry(l.backend.name()).or_default() += 1;
                    if let Some(f) = &l.fallback {
                        *self.fallbacks.entry(f.code()).or_default() += 1;
                    }
                }
            }
            Err(e) => self.record_rejection(e),
        }
    }

    fn percentile(&self, p: f64) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        let mut v = self.latencies_ms.clone();
        v.sort_by(f64::total_cmp);
        let idx = ((v.len() as f64 - 1.0) * p).round() as usize;
        v[idx.min(v.len() - 1)]
    }

    fn mean(&self) -> f64 {
        if self.latencies_ms.is_empty() {
            return 0.0;
        }
        self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64
    }
}

#[allow(clippy::too_many_arguments)] // report assembly: each argument is one measured quantity
fn serve_document(
    date: &str,
    machine: &MachineModel,
    stats: &ServeStats,
    tally: &Tally,
    offered_rps: f64,
    sustainable_rps: f64,
    duration_s: f64,
    deadline_ms: f64,
    max_batch: usize,
    modeled_bytes: usize,
    memory_ceiling: Option<usize>,
) -> Json {
    let shed =
        stats.shed_overload + stats.shed_deadline + stats.shed_predicted + stats.shed_memory;
    let mut serve = vec![
        ("requests".into(), Json::Num(stats.submitted as f64)),
        ("admitted".into(), Json::Num(stats.admitted as f64)),
        ("completed".into(), Json::Num(stats.completed as f64)),
        ("failed".into(), Json::Num(stats.failed as f64)),
        ("shed_overload".into(), Json::Num(stats.shed_overload as f64)),
        ("shed_deadline".into(), Json::Num(stats.shed_deadline as f64)),
        ("shed_predicted".into(), Json::Num(stats.shed_predicted as f64)),
        ("shed_memory".into(), Json::Num(stats.shed_memory as f64)),
        ("p50_ms".into(), Json::Num(tally.percentile(0.50))),
        ("p95_ms".into(), Json::Num(tally.percentile(0.95))),
        ("p99_ms".into(), Json::Num(tally.percentile(0.99))),
        ("mean_ms".into(), Json::Num(tally.mean())),
        (
            "goodput_rps".into(),
            Json::Num(if duration_s > 0.0 {
                tally.completed_in_deadline as f64 / duration_s
            } else {
                0.0
            }),
        ),
        (
            "shed_rate".into(),
            Json::Num(if stats.submitted > 0 { shed as f64 / stats.submitted as f64 } else { 0.0 }),
        ),
        ("breaker_trips".into(), Json::Num(stats.breaker_trips as f64)),
        ("pool_rebuilds".into(), Json::Num(stats.pool_rebuilds as f64)),
        ("offered_rps".into(), Json::Num(offered_rps)),
        ("sustainable_rps".into(), Json::Num(sustainable_rps)),
        ("duration_s".into(), Json::Num(duration_s)),
        ("deadline_ms".into(), Json::Num(deadline_ms)),
        ("max_batch".into(), Json::Num(max_batch as f64)),
        (
            "backends".into(),
            Json::Obj(
                tally.backends.iter().map(|(k, v)| (k.to_string(), Json::Num(*v as f64))).collect(),
            ),
        ),
        (
            "fallbacks".into(),
            Json::Obj(
                tally
                    .fallbacks
                    .iter()
                    .map(|(k, v)| (k.to_string(), Json::Num(*v as f64)))
                    .collect(),
            ),
        ),
    ];
    if let Some(c) = memory_ceiling {
        serve.push(("memory_ceiling_bytes".into(), Json::Num(c as f64)));
    }
    Json::Obj(vec![
        ("schema_version".into(), Json::Num(SCHEMA_VERSION as f64)),
        ("generated_by".into(), Json::Str("wino-bench serve_load".into())),
        ("date".into(), Json::Str(date.to_string())),
        (
            "machine".into(),
            Json::Obj(vec![
                ("peak_gflops".into(), Json::Num(machine.peak_gflops)),
                ("mem_bw_gbps".into(), Json::Num(machine.mem_bw_gbps)),
                ("threads".into(), Json::Num(machine.threads as f64)),
                ("simd".into(), Json::Str(wino_simd::backend_name().to_string())),
            ]),
        ),
        ("serve".into(), Json::Obj(serve)),
        ("memory".into(), memory_json(modeled_bytes, memory_ceiling)),
        (
            "counters".into(),
            Json::Obj(
                Counter::ALL.iter().map(|c| (c.name().to_string(), Json::Num(c.get() as f64))).collect(),
            ),
        ),
    ])
}

fn main() {
    let args = Args::from_env();
    let soak = args.flag("--soak");
    if soak && !cfg!(feature = "fault-inject") {
        eprintln!(
            "error: --soak needs the injection hooks.\nRebuild with: cargo run -p wino-bench \
             --release --features fault-inject --bin serve_load -- --soak"
        );
        std::process::exit(2);
    }
    let requests = args.usize_or("--requests", if soak { 10_000 } else { 2_000 });
    // The soak's deadline budgets for a full queue drain *plus* an
    // injected stall riding the queue wait of everyone behind it.
    let deadline_ms = args.usize_or("--deadline-ms", if soak { 1000 } else { 500 }) as f64;
    let load_factor: f64 =
        args.value("--load").and_then(|v| v.parse().ok()).filter(|f: &f64| *f > 0.0).unwrap_or(2.0);
    let queue_capacity = args.usize_or("--queue", 64);
    let watchdog_ms = args.usize_or("--watchdog-ms", 150) as u64;
    // Byte-budget admission: 0 (the default) leaves admission off.
    let memory_ceiling_mib = args.usize_or("--memory-ceiling-mib", 0);
    let memory_ceiling = (memory_ceiling_mib > 0).then_some(memory_ceiling_mib << 20);
    // Pool faults need a pool: the soak forces at least two workers.
    let requested_threads = make_executor(&args).threads();
    let threads = if soak { requested_threads.max(2) } else { requested_threads };

    if soak {
        // Injected worker panics are caught by the pool and surface as
        // typed errors; keep their backtraces out of the gate log so a
        // *real* panic stays visible. Anything not marked as injected
        // still prints through the default hook.
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.starts_with("injected fault"));
            if !injected {
                default_hook(info);
            }
        }));
    }

    let spec = model_spec(soak.then_some(watchdog_ms));
    let kernels = model_kernels(&spec);

    eprintln!("# calibrating machine model ({threads} threads)…");
    let cal_exec = make_executor(&args);
    let machine = calibrate(cal_exec.as_ref());
    drop(cal_exec);
    let roofline = ServiceModel::from_roofline(&machine, &spec, 0.5).expect("workload geometry");
    let per_image_ms = measure_per_image_ms(&spec, &kernels, threads);
    // Admission oracle: the calibrated roofline, floored by the measured
    // service time — at this layer size fork–join launch overhead (which
    // no roofline sees) dominates, and an optimistic oracle admits
    // requests that then time out in the queue.
    let admission = ServiceModel {
        per_image_ms: roofline.per_image_ms.max(per_image_ms),
        batch_overhead_ms: roofline.batch_overhead_ms,
    };
    let sustainable_rps = 1e3 / per_image_ms;
    let offered_rps = load_factor * sustainable_rps;
    eprintln!(
        "# per-image {per_image_ms:.3} ms measured ({:.3} ms roofline), sustainable ≈ \
         {sustainable_rps:.0} rps, offering {offered_rps:.0} rps",
        roofline.per_image_ms
    );

    let opts = ServeOptions {
        queue_capacity,
        max_batch: args.usize_or("--max-batch", 0),
        threads,
        service: Some(admission),
        // The injector arms one fault at a time and the in-batch retry
        // clears it, so consecutive-failure streaks never form: the soak
        // trips on every failure to exercise the full ladder walk.
        breaker: BreakerConfig {
            trip_threshold: if soak { 1 } else { 2 },
            recovery_threshold: if soak { 8 } else { 16 },
            ..Default::default()
        },
        memory_ceiling,
        ..Default::default()
    };
    let fp_spec = spec.clone();
    let server = Server::start(spec, kernels, opts).expect("server must start");
    let max_batch = server.max_batch();
    // The analytic footprint of the largest batch the server will build —
    // `check.sh` parses this line to size its address-space rlimit.
    let modeled_bytes = Network::with_policy(
        max_batch.max(1),
        fp_spec.in_channels,
        &fp_spec.image_dims,
        &fp_spec.layers,
        ConvOptions { watchdog: None, ..fp_spec.opts },
        threads,
        &FallbackPolicy::default(),
    )
    .map(|net| net.footprint(threads).total())
    .unwrap_or(0);
    eprintln!("# modeled_footprint_bytes {modeled_bytes}");
    eprintln!("# queue {queue_capacity}, max batch {max_batch}, deadline {deadline_ms} ms");

    let interval = Duration::from_secs_f64(1.0 / offered_rps);
    let deadline = Duration::from_secs_f64(deadline_ms / 1e3);
    let mut tally = Tally::default();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(requests);
    let fault_every = (requests / 20).clamp(1, 500);
    let start = Instant::now();
    for i in 0..requests {
        pace_until(start + interval * i as u32);
        #[cfg(feature = "fault-inject")]
        if soak && i < requests / 2 && i % fault_every == fault_every - 1 {
            arm_fault(i / fault_every, threads, Duration::from_millis(watchdog_ms * 3));
        }
        match server.submit(request_image(i), deadline) {
            Ok(t) => tickets.push(t),
            Err(e) => tally.record_rejection(&e),
        }
    }
    #[cfg(feature = "fault-inject")]
    if soak {
        wino_sched::fault::reset();
    }
    let _ = fault_every; // used only under fault-inject

    // Recovery tail: gentle, fault-free load so the breaker can climb
    // back to `full` before the run is judged.
    if soak {
        let tail = 40 * max_batch.max(1);
        let tail_interval = Duration::from_secs_f64(2.0 / sustainable_rps);
        let tail_start = Instant::now();
        for i in 0..tail {
            pace_until(tail_start + tail_interval * i as u32);
            match server.submit(request_image(i), deadline) {
                Ok(t) => tickets.push(t),
                Err(e) => tally.record_rejection(&e),
            }
        }
    }

    let admitted_count = tickets.len() as u64;
    for t in tickets {
        tally.record_response(t.wait());
    }
    let duration_s = start.elapsed().as_secs_f64();
    let level = server.level();
    let stats = server.shutdown();

    eprintln!(
        "# {} submitted / {} admitted / {} completed / {} failed; shed {} overload + {} deadline \
         + {} predicted + {} memory; {} breaker trips, {} recoveries, {} pool rebuilds; final \
         level {}",
        stats.submitted,
        stats.admitted,
        stats.completed,
        stats.failed,
        stats.shed_overload,
        stats.shed_deadline,
        stats.shed_predicted,
        stats.shed_memory,
        stats.breaker_trips,
        stats.breaker_recoveries,
        stats.pool_rebuilds,
        level.name()
    );
    eprintln!(
        "# latency p50 {:.2} / p95 {:.2} / p99 {:.2} ms (deadline {deadline_ms} ms)",
        tally.percentile(0.50),
        tally.percentile(0.95),
        tally.percentile(0.99)
    );

    let date = args.value("--date").map(str::to_string).unwrap_or_else(today_utc);
    let doc = serve_document(
        &date,
        &machine,
        &stats,
        &tally,
        offered_rps,
        sustainable_rps,
        duration_s,
        deadline_ms,
        max_batch,
        modeled_bytes,
        memory_ceiling,
    );
    let rendered = doc.render_pretty();
    let reparsed = parse_json(&rendered).expect("emitted JSON must re-parse");
    if let Err(errs) = validate_schema(&reparsed) {
        eprintln!("error: assembled report fails its own schema:");
        for e in &errs {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }
    match args.value("--out") {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write report");
            eprintln!("# wrote {path}");
        }
        None => print!("{rendered}"),
    }

    if soak {
        // The gate's contract. Reaching this point at all means no panic
        // escaped (an escaped panic kills the batcher; its drop guards
        // would then resolve everything as ShutDown, failing below).
        let mut failures: Vec<String> = Vec::new();
        // Conservation: every submitted request produced exactly one
        // tallied outcome — an output, or one of the typed errors. The
        // client-side tally must agree with the server's own books.
        let outcomes = tally.completed
            + tally.failed
            + tally.shed_overload
            + tally.shed_deadline
            + tally.shed_predicted
            + tally.shed_memory
            + tally.shut_down;
        if outcomes != stats.submitted {
            failures.push(format!(
                "{} outcomes for {} submitted requests: something was dropped or double-counted",
                outcomes, stats.submitted
            ));
        }
        for (what, client, server_side) in [
            ("completed", tally.completed, stats.completed),
            ("failed", tally.failed, stats.failed),
            ("shed_overload", tally.shed_overload, stats.shed_overload),
            ("shed_deadline", tally.shed_deadline, stats.shed_deadline),
            ("shed_predicted", tally.shed_predicted, stats.shed_predicted),
            ("shed_memory", tally.shed_memory, stats.shed_memory),
        ] {
            if client != server_side {
                failures.push(format!("{what}: client saw {client}, server tallied {server_side}"));
            }
        }
        if stats.admitted != admitted_count {
            failures.push(format!(
                "ticket accounting broken: {} tickets vs {} admitted",
                admitted_count, stats.admitted
            ));
        }
        if tally.shut_down != 0 {
            failures.push(format!(
                "{} requests resolved as ShutDown mid-run (batcher died)",
                tally.shut_down
            ));
        }
        if stats.completed == 0 {
            failures.push("no request completed under fault injection".into());
        }
        if stats.breaker_trips == 0 {
            failures.push("fault injection never tripped the breaker".into());
        }
        if stats.breaker_recoveries == 0 || level != DegradeLevel::Full {
            failures.push(format!(
                "breaker did not recover (level {}, {} recoveries)",
                level.name(),
                stats.breaker_recoveries
            ));
        }
        if stats.pool_rebuilds == 0 {
            failures.push("stall injection never forced a pool rebuild".into());
        }
        let p99 = tally.percentile(0.99);
        if p99 > deadline_ms {
            failures.push(format!("completed p99 {p99:.2} ms exceeds the {deadline_ms} ms deadline"));
        }
        if failures.is_empty() {
            eprintln!("SOAK OK: {} requests, zero escaped panics, breaker recovered", stats.submitted);
        } else {
            eprintln!("SOAK FAILED:");
            for f in &failures {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    }
}
