//! Figure 5 harness: per-layer runtimes of every implementation.
//!
//! For each Table 2 layer, measures our Winograd implementation over the
//! `F(m, r)` sweep (training and inference-"FX" variants), the vectorised
//! direct convolution, the im2col + GEMM convolution, and (for 3-D layers,
//! as in the paper) the FFT convolution — printing one CSV row per
//! (layer, implementation) with best/mean milliseconds and effective
//! GFLOP/s, plus the speedup of the best Winograd variant over the best
//! non-Winograd baseline.
//!
//! ```text
//! cargo run -p wino-bench --release --bin fig5 -- [--full] [--threads N]
//!     [--reps N] [--net VGG|FusionNet|C3D|3DUNet] [--fft-all] [--pipelined]
//!     [--jit] [--list] [--json]
//! ```
//!
//! `--json` replaces the CSV with a JSON array of the same rows (one
//! object per row, keyed by column name).
//!
//! Defaults to the scaled catalogue (see `wino_workloads::scaled_catalog`);
//! `--full` uses the paper's exact layer sizes (needs ≥16 GB and a lot of
//! patience on few cores).

use wino_bench::{
    make_executor, run_direct, run_dispatch, run_fft, run_im2col, run_im2col_geo, run_winograd,
    Args, Measurement, Rows,
};
use wino_conv::ConvOptions;
use wino_workloads::{full_catalog, scaled_catalog, tile_sweep};

fn main() {
    let args = Args::from_env();
    let layers = if args.flag("--full") { full_catalog() } else { scaled_catalog() };
    let net_filter = args.value("--net").map(str::to_string);
    let reps = args.usize_or("--reps", 3);
    let exec = make_executor(&args);

    if args.flag("--list") {
        println!("network,layer,batch,C,C',image,kernel,padding,direct_gflop");
        for l in &layers {
            let s = &l.shape;
            println!(
                "{},{},{},{},{},{:?},{:?},{:?},{:.2}",
                l.network.name(),
                l.label,
                s.batch,
                s.in_channels,
                s.out_channels,
                s.image_dims,
                s.kernel_dims,
                s.padding,
                s.direct_flops() as f64 / 1e9
            );
        }
        return;
    }

    eprintln!(
        "# fig5: {} layers, {} threads, {} reps, backend {}",
        layers.len(),
        exec.threads(),
        reps,
        wino_simd::backend_name()
    );
    let mut out = Rows::new(
        args.flag("--json"),
        &["layer", "impl", "best_ms", "mean_ms", "effective_gflops", "speedup_vs_best_baseline"],
    );

    for layer in &layers {
        if let Some(f) = &net_filter {
            if !layer.network.name().eq_ignore_ascii_case(f) {
                continue;
            }
        }
        let mut rows: Vec<Measurement> = Vec::new();

        // Baselines first (the speedup denominators).
        rows.push(run_direct(layer, exec.as_ref(), reps));
        rows.push(run_im2col(layer, exec.as_ref(), reps));
        if layer.rank() == 3 || args.flag("--fft-all") {
            rows.push(run_fft(layer, exec.as_ref(), reps));
        }
        let best_baseline = rows
            .iter()
            .map(|m| m.timing.best_ms)
            .fold(f64::INFINITY, f64::min);

        // Our implementation across the F(m, r) sweep.
        for m in tile_sweep(layer.rank()) {
            if let Some(meas) =
                run_winograd(layer, &m, false, ConvOptions::default(), exec.as_ref(), reps)
            {
                rows.push(meas);
            }
            if let Some(meas) =
                run_winograd(layer, &m, true, ConvOptions::default(), exec.as_ref(), reps)
            {
                rows.push(meas);
            }
        }

        // Optional: the superblock pipeline (stages 1–3 in one
        // fork–join) on F(4ᵈ).
        if args.flag("--pipelined") {
            let opts =
                ConvOptions { schedule: wino_conv::Schedule::Pipelined, ..Default::default() };
            let m = vec![4usize; layer.rank()];
            if let Some(meas) = run_winograd(layer, &m, false, opts, exec.as_ref(), reps) {
                rows.push(meas);
            }
        }

        // Optional: the machine-code (JIT) stage-2 backend on F(4ᵈ).
        if args.flag("--jit") && wino_simd::cpu_has_avx512f() {
            let opts = ConvOptions { stage2: wino_conv::Stage2Backend::Jit, ..Default::default() };
            let m = vec![4usize; layer.rank()];
            if let Some(mut meas) = run_winograd(layer, &m, false, opts, exec.as_ref(), reps) {
                meas.implementation = format!("{} [jit]", meas.implementation);
                rows.push(meas);
            }
        }

        for m in &rows {
            let speedup = if m.implementation.starts_with("winograd") {
                format!("{:.2}", best_baseline / m.timing.best_ms)
            } else {
                String::new()
            };
            let mut cells = m.csv_cells();
            cells.push(speedup);
            out.push(&cells);
        }

        // Dispatch-matrix rows: the same layer under stride 2 and under
        // groups 2, our routed engine vs the geometry-aware im2col
        // baseline. Each pair carries its own speedup denominator — a
        // strided layer does ~1/∏s of the dense work, so the identity
        // baselines above are not comparable.
        for opts in [
            ConvOptions::default().with_stride(&vec![2; layer.rank()]),
            ConvOptions::default().with_groups(2),
        ] {
            let Some(base) = run_im2col_geo(layer, opts, exec.as_ref(), reps) else {
                continue;
            };
            let denom = base.timing.best_ms;
            let mut geo_rows = vec![base];
            let m = vec![4usize; layer.rank()];
            if let Some(meas) = run_dispatch(layer, &m, opts, exec.as_ref(), reps) {
                geo_rows.push(meas);
            }
            for m in &geo_rows {
                let speedup = if m.implementation.starts_with("winograd") {
                    format!("{:.2}", denom / m.timing.best_ms)
                } else {
                    String::new()
                };
                let mut cells = m.csv_cells();
                cells.push(speedup);
                out.push(&cells);
            }
        }
    }
    out.finish();
}
