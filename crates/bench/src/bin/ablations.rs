//! Ablation harness for the individual optimisation claims the paper
//! makes outside its numbered figures:
//!
//! * `streaming-stores` — non-temporal vs regular stores in the transform
//!   stages (§4.2.1 / conclusions: "~25 % on the transform stages").
//! * `fused-scatter`    — the full schedule axis: operation ⑥ inside the
//!   GEMM vs a separate copy pass (§4.3.1: ">20 % overall"), plus the
//!   superblock pipeline that fuses all three stages into one fork–join.
//! * `blocking-model`   — Eq. 11 compute-to-memory ratios vs measured
//!   throughput across `(C_blk, C'_blk)` (§4.3.2).
//! * `scheduling`       — static GCD partition + spin barrier vs rayon
//!   work stealing vs serial (§4.5).
//! * `budden-net`       — throughput (MVox/s) on the Budden et al. 4×4
//!   sample network (§5.1), Winograd vs direct.
//!
//! ```text
//! cargo run -p wino-bench --release --bin ablations -- <subcommand> [--threads N] [--reps N] [--json]
//! ```
//!
//! `--json` replaces each subcommand's CSV with a JSON array of the same
//! rows.

use wino_bench::{layer_data, make_executor, run_direct, run_winograd, Args, Rows};
use wino_conv::{stage1, ConvOptions, Scratch, WinogradLayer};
use wino_gemm::{batched_gemm, candidate_shapes, BlockShape};
use wino_sched::{DynamicExecutor, Executor, SerialExecutor, StaticExecutor};
use wino_tensor::BlockedMatrices;
use wino_workloads::{budden_sample_net, mvox_per_sec, scaled_catalog, time_best, Layer};

fn pick_layer(label: &str) -> Layer {
    scaled_catalog()
        .into_iter()
        .find(|l| l.id() == label)
        .expect("layer in scaled catalogue")
}

fn streaming_stores(exec: &dyn Executor, reps: usize, json: bool) {
    let mut out = Rows::new(json, &["layer", "streaming", "transform_ms", "full_ms"]);
    for label in ["VGG 3.2", "C3D C3b"] {
        let layer = pick_layer(label);
        for streaming in [true, false] {
            let opts = ConvOptions { streaming_stores: streaming, ..Default::default() };
            let plan = WinogradLayer::new(layer.shape.clone(), vec![4; layer.rank()].as_slice(), opts)
                .unwrap();
            let (input, kernels) = layer_data(&layer, 1);
            let mut scratch = Scratch::new(&plan, exec.threads());
            let t_transform = time_best(reps, || {
                stage1::transform_inputs(&plan, &input, &mut scratch, exec)
                    .expect("stage-1 transform failed");
            });
            let mut output = plan.new_output().unwrap();
            let t_full = time_best(reps, || {
                plan.forward(&input, &kernels, &mut output, &mut scratch, exec)
                    .expect("forward failed");
            });
            out.push(&[
                label.to_string(),
                streaming.to_string(),
                format!("{:.3}", t_transform.best_ms),
                format!("{:.3}", t_full.best_ms),
            ]);
        }
    }
    out.finish();
}

fn schedules(exec: &dyn Executor, reps: usize, json: bool) {
    let mut out = Rows::new(json, &["layer", "schedule", "full_ms"]);
    for label in ["VGG 3.2", "VGG 4.2", "C3D C3b"] {
        let layer = pick_layer(label);
        for schedule in wino_conv::Schedule::ALL {
            let opts = ConvOptions { schedule, ..Default::default() };
            let m = vec![4; layer.rank()];
            let meas = run_winograd(&layer, &m, false, opts, exec, reps).unwrap();
            out.push(&[
                label.to_string(),
                schedule.name().to_string(),
                format!("{:.3}", meas.timing.best_ms),
            ]);
        }
    }
    out.finish();
}

fn blocking_model(reps: usize, json: bool) {
    // Serial on purpose: the model is per-core.
    let mut out = Rows::new(json, &["n_blk", "c_blk", "cp_blk", "eq11_ratio_beta1", "gflops"]);
    let (t, rows, c, cp) = (8usize, 1024usize, 512usize, 512usize);
    let mut shapes: Vec<BlockShape> = candidate_shapes(c, cp, rows)
        .into_iter()
        .filter(|s| s.n_blk == 8)
        .collect();
    shapes.sort_by(|a, b| {
        a.compute_to_memory_ratio(true)
            .partial_cmp(&b.compute_to_memory_ratio(true))
            .unwrap()
    });
    shapes.dedup_by_key(|s| (s.c_blk, s.cp_blk));
    for s in shapes {
        let mut u = BlockedMatrices::new(t, rows, c, s.n_blk, s.c_blk);
        let mut v = BlockedMatrices::new(t, c, cp, s.c_blk, s.cp_blk);
        let mut x = BlockedMatrices::new(t, rows, cp, s.n_blk, s.cp_blk);
        for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
            *f = (i % 31) as f32 * 0.01;
        }
        for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
            *f = (i % 17) as f32 * 0.01;
        }
        let timing = time_best(reps, || batched_gemm(&u, &v, &mut x));
        let gflops = 2.0 * (t * rows * c * cp) as f64 / (timing.best_ms * 1e-3) / 1e9;
        out.push(&[
            s.n_blk.to_string(),
            s.c_blk.to_string(),
            s.cp_blk.to_string(),
            format!("{:.2}", s.compute_to_memory_ratio(true)),
            format!("{gflops:.2}"),
        ]);
    }
    out.finish();
}

fn scheduling(threads: usize, reps: usize, json: bool) {
    let mut out = Rows::new(json, &["layer", "executor", "threads", "full_ms"]);
    let layer = pick_layer("VGG 3.2");
    let m = vec![4usize; 2];
    let execs: Vec<(Box<dyn Executor>, &str)> = vec![
        (Box::new(SerialExecutor), "serial"),
        (Box::new(StaticExecutor::new(threads)), "static"),
        (Box::new(DynamicExecutor::new(threads)), "dynamic"),
    ];
    for (exec, name) in &execs {
        let meas =
            run_winograd(&layer, &m, false, ConvOptions::default(), exec.as_ref(), reps).unwrap();
        out.push(&[
            layer.id(),
            (*name).to_string(),
            exec.threads().to_string(),
            format!("{:.3}", meas.timing.best_ms),
        ]);
    }
    out.finish();
}

fn budden_net(exec: &dyn Executor, reps: usize, image: usize, json: bool) {
    let mut out = Rows::new(json, &["layer", "impl", "best_ms", "mvox_per_s"]);
    for layer in budden_sample_net(image) {
        // 4×4 kernels: F(3×3, 4×4) gives α = 6 tiles.
        let meas = run_winograd(&layer, &[3, 3], false, ConvOptions::default(), exec, reps)
            .expect("4x4 kernels plan");
        out.push(&[
            layer.id(),
            "winograd F(3x3;4x4)".to_string(),
            format!("{:.3}", meas.timing.best_ms),
            format!("{:.1}", mvox_per_sec(&layer.shape, meas.timing.best_ms)),
        ]);
        let d = run_direct(&layer, exec, reps);
        out.push(&[
            layer.id(),
            "direct".to_string(),
            format!("{:.3}", d.timing.best_ms),
            format!("{:.1}", mvox_per_sec(&layer.shape, d.timing.best_ms)),
        ]);
    }
    out.finish();
}

fn main() {
    let args = Args::from_env();
    let reps = args.usize_or("--reps", 3);
    let exec = make_executor(&args);
    let sub = args.positional().first().map(|s| s.to_string()).unwrap_or_default();
    let json = args.flag("--json");
    match sub.as_str() {
        "streaming-stores" => streaming_stores(exec.as_ref(), reps, json),
        "fused-scatter" => schedules(exec.as_ref(), reps, json),
        "blocking-model" => blocking_model(reps, json),
        "scheduling" => {
            let threads = args.usize_or("--threads", wino_sched::configured_threads());
            scheduling(threads.max(2), reps, json)
        }
        "budden-net" => budden_net(exec.as_ref(), reps, args.usize_or("--image", 256), json),
        other => {
            eprintln!(
                "unknown subcommand {other:?}; expected one of: streaming-stores, \
                 fused-scatter, blocking-model, scheduling, budden-net"
            );
            std::process::exit(2);
        }
    }
}
