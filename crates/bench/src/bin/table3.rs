//! Table 3 harness: element errors of Winograd convolution for various
//! `F(m, r)`, against an extended-precision direct-convolution ground
//! truth.
//!
//! Reproduces the paper's protocol (§5.3): inputs uniform in
//! `[-0.1, 0.1]`; training errors with Xavier-initialised kernels,
//! inference errors with (pseudo-)pretrained kernels; `max` and `avg`
//! absolute element errors reported per `F(m, r)`, with f32 direct
//! convolution as the control column.
//!
//! ```text
//! cargo run -p wino-bench --release --bin table3 -- [--threads N] [--small] [--json]
//! ```
//!
//! `--json` replaces the formatted tables with one JSON array of rows
//! `{block, case, train_max, train_avg, infer_max, infer_avg}`.

use wino_baseline::{direct_conv, direct_f64, element_errors};
use wino_bench::{make_executor, Args, Rows};
use wino_conv::{ConvOptions, Scratch, WinogradLayer};
use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvShape, SimpleImage, SimpleKernels};
use wino_transforms::PointSchedule;
use wino_workloads::{pretrained_kernels, uniform_input, xavier_kernels};

struct Case {
    name: String,
    m: Option<Vec<usize>>, // None = direct f32 control
    points: PointSchedule,
}

fn winograd_out(
    shape: &ConvShape,
    m: &[usize],
    points: PointSchedule,
    img: &SimpleImage,
    ker: &SimpleKernels,
    exec: &dyn Executor,
) -> SimpleImage {
    let opts = ConvOptions { points, ..Default::default() };
    let layer = WinogradLayer::new(shape.clone(), m, opts)
        .expect("table3 plans must be valid");
    let input = BlockedImage::from_simple(img).unwrap();
    let kernels = BlockedKernels::from_simple(ker).unwrap();
    let mut out = layer.new_output().unwrap();
    let mut scratch = Scratch::new(&layer, exec.threads());
    layer.forward(&input, &kernels, &mut out, &mut scratch, exec).expect("table3 forward failed");
    out.to_simple()
}

fn direct_out(shape: &ConvShape, img: &SimpleImage, ker: &SimpleKernels, exec: &dyn Executor) -> SimpleImage {
    let input = BlockedImage::from_simple(img).unwrap();
    let kernels = BlockedKernels::from_simple(ker).unwrap();
    let mut out = BlockedImage::zeros(shape.batch, shape.out_channels, &shape.out_dims()).unwrap();
    direct_conv(&input, &kernels, &shape.padding, &mut out, exec).expect("table3 direct_conv failed");
    out.to_simple()
}

fn run_block(
    title: &str,
    shape: &ConvShape,
    cases: &[Case],
    exec: &dyn Executor,
    sink: &mut Option<Rows>,
) {
    eprintln!("# computing ground truth for {title}…");
    let img = uniform_input(shape, 2024);
    let train_ker = xavier_kernels(shape, 7);
    let infer_ker = pretrained_kernels(shape, 7);
    let truth_train = direct_f64(&img, &train_ker, &shape.padding);
    let truth_infer = direct_f64(&img, &infer_ker, &shape.padding);

    let mut rows: Vec<(String, [f64; 4])> = Vec::new();
    for case in cases {
        let (out_train, out_infer) = match &case.m {
            None => (
                direct_out(shape, &img, &train_ker, exec),
                direct_out(shape, &img, &infer_ker, exec),
            ),
            Some(m) => (
                winograd_out(shape, m, case.points, &img, &train_ker, exec),
                winograd_out(shape, m, case.points, &img, &infer_ker, exec),
            ),
        };
        let (tmax, tavg) = element_errors(&out_train, &truth_train);
        let (imax, iavg) = element_errors(&out_infer, &truth_infer);
        rows.push((case.name.clone(), [tmax, tavg, imax, iavg]));
    }

    if let Some(out) = sink {
        for (name, e) in &rows {
            out.push(&[
                title.to_string(),
                name.clone(),
                format!("{:.2E}", e[0]),
                format!("{:.2E}", e[1]),
                format!("{:.2E}", e[2]),
                format!("{:.2E}", e[3]),
            ]);
        }
        return;
    }

    println!("\n== {title} ==");
    print!("{:<12}", "");
    for (name, _) in &rows {
        print!("{name:>14}");
    }
    println!();
    for (i, label) in ["Train max", "Train avg", "Infer max", "Infer avg"].iter().enumerate() {
        print!("{label:<12}");
        for (_, e) in &rows {
            print!("{:>14.2E}", e[i]);
        }
        println!();
    }
}

fn main() {
    let args = Args::from_env();
    let exec = make_executor(&args);
    // Error statistics are distribution properties — a mid-size layer is
    // representative; --small shrinks further for quick checks.
    let small = args.flag("--small");
    let (img2d, img3d) = if small { (28, [8, 14, 14]) } else { (56, [12, 28, 28]) };
    let mut sink = args.flag("--json").then(|| {
        Rows::new(true, &["block", "case", "train_max", "train_avg", "infer_max", "infer_avg"])
    });

    let mk = |name: &str, m: Vec<usize>, points| Case { name: name.into(), m: Some(m), points };
    let direct = || Case { name: "Direct".into(), m: None, points: PointSchedule::Mixed };

    let shape2d = ConvShape::new(1, 64, 64, &[img2d, img2d], &[3, 3], &[1, 1]).unwrap();
    let tiles2d: Vec<(&str, Vec<usize>)> = vec![
        ("F(2²,3²)", vec![2, 2]),
        ("F(4²,3²)", vec![4, 4]),
        ("F(6²,3²)", vec![6, 6]),
        ("F(6x8,3²)", vec![6, 8]),
        ("F(8²,3²)", vec![8, 8]),
    ];
    let mut cases2d = vec![direct()];
    cases2d.extend(tiles2d.iter().map(|(n, m)| mk(n, m.clone(), PointSchedule::Mixed)));
    run_block(
        "VGG-style 2D layer (Table 3, top) — Wincnn-style fractional points",
        &shape2d,
        &cases2d,
        exec.as_ref(),
        &mut sink,
    );
    let mut cases2di = vec![direct()];
    cases2di.extend(tiles2d.iter().map(|(n, m)| mk(n, m.clone(), PointSchedule::Integer)));
    run_block(
        "VGG-style 2D layer — integer-only interpolation points (conditioning ablation)",
        &shape2d,
        &cases2di,
        exec.as_ref(),
        &mut sink,
    );

    let shape3d = ConvShape::new(1, 64, 64, &img3d, &[3, 3, 3], &[1, 1, 1]).unwrap();
    let tiles3d: Vec<(&str, Vec<usize>)> = vec![
        ("F(2³,3³)", vec![2, 2, 2]),
        ("F(4³,3³)", vec![4, 4, 4]),
        ("F(4x6²,3³)", vec![4, 6, 6]),
        ("F(6³,3³)", vec![6, 6, 6]),
        ("F(8x6²,3³)", vec![8, 6, 6]),
    ];
    let mut cases3d = vec![direct()];
    cases3d.extend(tiles3d.iter().map(|(n, m)| mk(n, m.clone(), PointSchedule::Mixed)));
    run_block(
        "C3D-style 3D layer (Table 3, bottom) — Wincnn-style fractional points",
        &shape3d,
        &cases3d,
        exec.as_ref(),
        &mut sink,
    );
    let mut cases3di = vec![direct()];
    cases3di.extend(tiles3d.iter().map(|(n, m)| mk(n, m.clone(), PointSchedule::Integer)));
    run_block(
        "C3D-style 3D layer — integer-only interpolation points (conditioning ablation)",
        &shape3d,
        &cases3di,
        exec.as_ref(),
        &mut sink,
    );
    if let Some(out) = sink {
        out.finish();
    }
}
