//! Perf-report harness: the stage-breakdown evidence behind the paper's
//! §5 discussion, emitted as a schema-versioned `BENCH_*.json` document
//! (see `docs/bench-schema.md`).
//!
//! For each selected layer, three implementations are timed
//! (direct, im2col-GEMM, best-Winograd over the tile sweep) and then one
//! pass of each is re-run under a `ProbedExecutor`; the recorded spans
//! are folded with the per-stage work models into wall/CPU time,
//! GFLOP/s, arithmetic intensity and roofline estimates, plus
//! barrier-imbalance statistics. The machine model is calibrated at
//! startup with GEMM and bandwidth microbenchmarks.
//!
//! Requires the `probe` feature — an uninstrumented build cannot produce
//! stage rows and says so instead of emitting an invalid report:
//!
//! ```text
//! cargo run -p wino-bench --release --features probe --bin perf -- \
//!     [--smoke | --all] [--threads N] [--reps N] [--out FILE] [--date YYYY-MM-DD]
//! cargo run -p wino-bench --bin perf -- --validate FILE
//! ```

use wino_bench::perf::{
    calibrate, layer_entry, perf_document, probe_direct, probe_dispatch, probe_execution,
    probe_im2col, probe_im2col_geo, probe_winograd, today_utc, Accuracy,
};
use wino_bench::{
    direct_output, dispatch_output, geo_layer_truth, im2col_geo_output, im2col_output,
    layer_truth, make_executor, max_rel_error, run_direct, run_dispatch, run_im2col,
    run_im2col_geo, run_winograd, winograd_output, Args, Measurement,
};
use wino_conv::{plan_dispatch, ConvOptions, ExecutionReport, FallbackPolicy, LayerBackend};
use wino_probe::{parse_json, validate_schema, Json, StageReport, SCHEMA_VERSION};
use wino_sched::Executor;
use wino_workloads::{scaled_catalog, tile_sweep, Layer};

/// The pinned `--smoke` subset: one 2-D mid-net layer, one batch-1
/// segmentation layer, one 3-D spatiotemporal layer.
const SMOKE_LAYERS: [&str; 3] = ["VGG 3.2", "FusionNet 2.2", "C3D C3b"];

fn validate_file(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let doc = match parse_json(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {path}: {e}");
            std::process::exit(1);
        }
    };
    match validate_schema(&doc) {
        Ok(()) => {
            let n = doc.get("layers").and_then(Json::as_arr).map(<[Json]>::len).unwrap_or(0);
            println!("{path}: valid (schema_version {SCHEMA_VERSION}, {n} layer entries)");
            std::process::exit(0);
        }
        Err(errs) => {
            eprintln!("{path}: INVALID —");
            for e in &errs {
                eprintln!("  - {e}");
            }
            std::process::exit(1);
        }
    }
}

/// Best Winograd tile for a layer by measured time over the sweep.
fn best_winograd(layer: &Layer, exec: &dyn Executor, reps: usize) -> Option<(Vec<usize>, Measurement)> {
    let mut best: Option<(Vec<usize>, Measurement)> = None;
    for m in tile_sweep(layer.rank()) {
        let Some(meas) = run_winograd(layer, &m, false, ConvOptions::default(), exec, reps) else {
            continue;
        };
        if best.as_ref().is_none_or(|(_, b)| meas.timing.best_ms < b.timing.best_ms) {
            best = Some((m, meas));
        }
    }
    best
}

fn main() {
    let args = Args::from_env();
    if let Some(path) = args.value("--validate") {
        validate_file(path);
    }
    if !wino_probe::ENABLED {
        eprintln!(
            "error: this binary was built without instrumentation, so it cannot \
             collect stage breakdowns.\nRebuild with: cargo run -p wino-bench \
             --release --features probe --bin perf"
        );
        std::process::exit(2);
    }

    let reps = args.usize_or("--reps", 3);
    let exec = make_executor(&args);
    let all = args.flag("--all");
    let layers: Vec<Layer> = scaled_catalog()
        .into_iter()
        .filter(|l| all || SMOKE_LAYERS.contains(&l.id().as_str()))
        .collect();
    assert!(!layers.is_empty(), "layer selection is empty");

    eprintln!("# calibrating machine model ({} threads)…", exec.threads());
    let machine = calibrate(exec.as_ref());
    eprintln!(
        "# peak {:.1} GFLOP/s, bandwidth {:.1} GB/s",
        machine.peak_gflops, machine.mem_bw_gbps
    );

    let mut entries: Vec<Json> = Vec::new();
    let mut push = |meas: &Measurement,
                    report: Option<StageReport>,
                    accuracy: Accuracy,
                    execution: Option<ExecutionReport>| {
        let Some(report) = report else {
            eprintln!("warning: no events folded for {} / {}", meas.layer, meas.implementation);
            return;
        };
        eprintln!(
            "\n== {} / {} ({:.3} ms best{}) ==\n{}",
            meas.layer,
            meas.implementation,
            meas.timing.best_ms,
            accuracy
                .max_rel_error
                .map(|e| format!(", max rel err {e:.2e}"))
                .unwrap_or_default(),
            report.to_table()
        );
        entries.push(layer_entry(meas, &report, accuracy, execution.as_ref()));
    };

    for layer in &layers {
        eprintln!("# {} …", layer.id());
        // The f64 oracle is one direct pass per layer, shared by every
        // implementation's max_rel_error column.
        eprintln!("#   computing f64 ground truth…");
        let truth = layer_truth(layer);
        let err_of = |out: &wino_tensor::BlockedImage| Some(max_rel_error(out, &truth));

        let d = run_direct(layer, exec.as_ref(), reps);
        let d_acc = Accuracy {
            max_rel_error: err_of(&direct_output(layer, exec.as_ref())),
            predicted_bound: None,
        };
        // The direct baseline sits outside the degradation ladder — no
        // execution provenance to report.
        push(&d, probe_direct(layer, exec.as_ref(), &machine), d_acc, None);

        let i = run_im2col(layer, exec.as_ref(), reps);
        let i_acc = Accuracy {
            max_rel_error: err_of(&im2col_output(layer, exec.as_ref())),
            predicted_bound: None,
        };
        push(
            &i,
            probe_im2col(layer, exec.as_ref(), &machine),
            i_acc,
            Some(ExecutionReport { layer: 0, backend: LayerBackend::Im2col, fallback: None }),
        );

        // The best tile (by default-schedule time) is then measured under
        // every schedule — the unfused / fused-scatter / pipelined axis
        // of the tentpole comparison, one report row each.
        match best_winograd(layer, exec.as_ref(), reps) {
            Some((m, _)) => {
                for schedule in wino_conv::Schedule::ALL {
                    let opts = ConvOptions { schedule, ..Default::default() };
                    match run_winograd(layer, &m, false, opts, exec.as_ref(), reps) {
                        Some(meas) => {
                            let acc = winograd_output(layer, &m, opts, exec.as_ref())
                                .map(|(out, bound)| Accuracy {
                                    max_rel_error: err_of(&out),
                                    predicted_bound: Some(bound),
                                })
                                .unwrap_or_default();
                            push(
                                &meas,
                                probe_winograd(layer, &m, opts, exec.as_ref(), &machine),
                                acc,
                                probe_execution(layer, &m, opts, exec.as_ref()),
                            );
                        }
                        None => eprintln!(
                            "warning: schedule {} rejected for {}",
                            schedule.name(),
                            layer.id()
                        ),
                    }
                }
            }
            None => eprintln!("warning: no Winograd plan accepted for {}", layer.id()),
        }
    }

    // Dispatch-matrix scenario rows: the first 2-D layer of the
    // selection re-measured under a stride-2 and a grouped geometry —
    // the routed Winograd engine (polyphase / grouped) against the
    // geometry-aware im2col fallback it must beat. Each pair shares one
    // f64 oracle; execution provenance is the dispatcher's own
    // plan-time (backend, reason), which the net-report tests prove is
    // what `Network` would report.
    if let Some(layer) = layers.iter().find(|l| l.rank() == 2) {
        let scenarios = [
            ConvOptions::default().with_stride(&[2, 2]),
            ConvOptions::default().with_groups(2),
        ];
        for opts in scenarios {
            eprintln!("# {} geometry scenario …", layer.id());
            let truth = geo_layer_truth(layer, opts);
            let err_of = |out: &wino_tensor::BlockedImage| Some(max_rel_error(out, &truth));

            // Best tile by measured dispatch time over the sweep.
            let mut best: Option<(Vec<usize>, Measurement)> = None;
            for m in tile_sweep(2) {
                let Some(meas) = run_dispatch(layer, &m, opts, exec.as_ref(), reps) else {
                    continue;
                };
                if best.as_ref().is_none_or(|(_, b)| meas.timing.best_ms < b.timing.best_ms) {
                    best = Some((m, meas));
                }
            }
            match best {
                Some((m, meas)) => {
                    let acc = Accuracy {
                        max_rel_error: dispatch_output(layer, &m, opts, exec.as_ref())
                            .as_ref()
                            .and_then(&err_of),
                        predicted_bound: None,
                    };
                    let execution = plan_dispatch(
                        &layer.shape,
                        &m,
                        opts,
                        &FallbackPolicy::default(),
                    )
                    .ok()
                    .map(|(dp, fb)| ExecutionReport {
                        layer: 0,
                        backend: dp.backend(),
                        fallback: fb,
                    });
                    push(
                        &meas,
                        probe_dispatch(layer, &m, opts, exec.as_ref(), &machine),
                        acc,
                        execution,
                    );
                }
                None => eprintln!("warning: no dispatch plan accepted for {}", layer.id()),
            }

            if let Some(meas) = run_im2col_geo(layer, opts, exec.as_ref(), reps) {
                let acc = Accuracy {
                    max_rel_error: im2col_geo_output(layer, opts, exec.as_ref())
                        .as_ref()
                        .and_then(&err_of),
                    predicted_bound: None,
                };
                push(
                    &meas,
                    probe_im2col_geo(layer, opts, exec.as_ref(), &machine),
                    acc,
                    Some(ExecutionReport { layer: 0, backend: LayerBackend::Im2col, fallback: None }),
                );
            }
        }
    }

    let date = args.value("--date").map(str::to_string).unwrap_or_else(today_utc);
    let doc = perf_document("wino-bench perf", &date, &machine, entries);

    // Self-check before writing: an emitted report must round-trip
    // through the parser and pass its own schema validator.
    let rendered = doc.render_pretty();
    let reparsed = parse_json(&rendered).expect("emitted JSON must re-parse");
    if let Err(errs) = validate_schema(&reparsed) {
        eprintln!("error: assembled report fails its own schema:");
        for e in &errs {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }

    match args.value("--out") {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write report");
            eprintln!("# wrote {path} ({} layer entries)", doc.get("layers").and_then(Json::as_arr).map(<[Json]>::len).unwrap_or(0));
        }
        None => print!("{rendered}"),
    }
}
