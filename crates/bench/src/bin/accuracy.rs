//! Accuracy table: a-priori error bounds vs measured errors for every
//! practical `F(m, r)`.
//!
//! For each `m ∈ {2, 4, 6, 8}`, `r ∈ {3, 5}` and both interpolation-point
//! schedules, one synthetic layer is convolved and its measured max
//! relative error (against the f64 direct oracle) is printed next to the
//! exact-conditioning bound the planner and the runtime sentinels use
//! ([`wino_conv::WinogradLayer::predicted_bound`], built from
//! [`wino_transforms::Conditioning`]). Every row must satisfy
//! `measured ≤ predicted` — the binary exits non-zero otherwise, so the
//! table doubles as the accuracy gate in `scripts/check.sh`.
//!
//! ```text
//! cargo run -p wino-bench --release --bin accuracy -- [--threads N] [--json]
//! cargo run -p wino-bench --release --bin accuracy -- --sentinel-smoke
//! ```
//!
//! `--sentinel-smoke` instead runs the three pinned smoke layers through
//! budget-driven tile selection with runtime sentinels sampling, exiting
//! non-zero on any trip (see [`sentinel_smoke`]).
//!
//! Columns: `m, r, points, gamma, predicted_bound, measured_rel_err,
//! headroom` (headroom = predicted / measured; ≥ 1 when the bound holds).

use wino_baseline::{direct_f64, element_errors};
use wino_bench::{make_executor, Args, Rows};
use wino_conv::select::{select_tile, Purpose};
use wino_conv::{verify_sample, ConvOptions, Scratch, SentinelConfig, WinogradLayer};
use wino_sched::Executor;
use wino_tensor::{BlockedImage, BlockedKernels, ConvShape};
use wino_transforms::{Conditioning, PointSchedule};
use wino_workloads::{scaled_catalog, uniform_input, xavier_kernels};

/// Measured max relative error of one `F(m×m, r×r)` forward against the
/// f64 oracle, plus the plan's predicted bound.
fn measure(
    shape: &ConvShape,
    m: usize,
    points: PointSchedule,
    truth_max: f64,
    truth: &wino_tensor::SimpleImage,
    exec: &dyn Executor,
) -> (f64, f64) {
    let opts = ConvOptions { points, ..Default::default() };
    let plan = WinogradLayer::new(shape.clone(), &[m, m], opts).expect("accuracy plans are valid");
    let img = uniform_input(shape, 2024);
    let ker = xavier_kernels(shape, 7);
    let input = BlockedImage::from_simple(&img).unwrap();
    let kernels = BlockedKernels::from_simple(&ker).unwrap();
    let mut out = plan.new_output().unwrap();
    let mut scratch = Scratch::new(&plan, exec.threads());
    plan.forward(&input, &kernels, &mut out, &mut scratch, exec).expect("accuracy forward");
    let (max_abs, _) = element_errors(&out.to_simple(), truth);
    (max_abs / truth_max.max(1.0), plan.predicted_bound())
}

/// `--sentinel-smoke`: the end-to-end half of the CI accuracy gate. Each
/// pinned smoke layer (the same trio `scripts/bench.sh --smoke` times) is
/// planned through budget-driven tile selection ([`Purpose::Inference`],
/// so the cap comes from the exact conditioning, not a table), run once,
/// and a pinned-seed sample of its output tiles is re-verified against
/// the f64 oracle. A clean build must produce zero trips; any trip —
/// i.e. an error above the plan's a-priori bound — exits non-zero.
fn sentinel_smoke(exec: &dyn Executor) -> ! {
    const SMOKE_LAYERS: [&str; 3] = ["VGG 3.2", "FusionNet 2.2", "C3D C3b"];
    let cfg = SentinelConfig::sampled(8, 0xd1ff_2026);
    let mut failures = 0usize;
    for layer in scaled_catalog().into_iter().filter(|l| SMOKE_LAYERS.contains(&l.id().as_str()))
    {
        let shape = &layer.shape;
        let sel = select_tile(shape, ConvOptions::default(), Purpose::Inference, exec, 1)
            .expect("smoke layers must plan");
        let img = uniform_input(shape, 42);
        let ker = xavier_kernels(shape, 42 ^ 0xabcd);
        let input = BlockedImage::from_simple(&img).unwrap();
        let kernels = BlockedKernels::from_simple(&ker).unwrap();
        let mut out = sel.plan.new_output().unwrap();
        let mut scratch = Scratch::new(&sel.plan, exec.threads());
        sel.plan.forward(&input, &kernels, &mut out, &mut scratch, exec).expect("smoke forward");
        match verify_sample(&sel.plan, &input, &kernels, &out, &cfg, 0) {
            Ok(checked) => eprintln!(
                "# {}: budget-selected m = {:?}, {checked} sentinel tiles clean \
                 (bound {:.2e})",
                layer.id(),
                sel.m,
                sel.plan.predicted_bound()
            ),
            Err(e) => {
                failures += 1;
                eprintln!("SENTINEL TRIP on {}: {e}", layer.id());
            }
        }
    }
    if failures > 0 {
        eprintln!("error: {failures} sentinel trip(s) on a clean build");
        std::process::exit(1);
    }
    eprintln!("# sentinel smoke: all layers clean");
    std::process::exit(0);
}

fn main() {
    let args = Args::from_env();
    let exec = make_executor(&args);
    if args.flag("--sentinel-smoke") {
        sentinel_smoke(exec.as_ref());
    }
    let mut sink = Rows::new(
        args.flag("--json"),
        &["m", "r", "points", "gamma", "predicted_bound", "measured_rel_err", "headroom"],
    );

    let mut violations = 0usize;
    for r in [3usize, 5] {
        // "Same" padding keeps the output grid the image grid; C = 32 is
        // enough accumulation depth to exercise the channel reduction.
        let pad = r / 2;
        let shape = ConvShape::new(1, 32, 32, &[24, 24], &[r, r], &[pad, pad]).unwrap();
        eprintln!("# r = {r}: computing f64 ground truth…");
        let img = uniform_input(&shape, 2024);
        let ker = xavier_kernels(&shape, 7);
        let truth = direct_f64(&img, &ker, &shape.padding);
        let truth_max = truth.data.iter().fold(0.0f64, |a, &v| a.max((v as f64).abs()));

        for points in [PointSchedule::Mixed, PointSchedule::Integer] {
            for m in [2usize, 4, 6, 8] {
                let gamma = Conditioning::for_schedule(m, r, points).gamma;
                let (measured, predicted) =
                    measure(&shape, m, points, truth_max, &truth, exec.as_ref());
                if measured > predicted {
                    violations += 1;
                    eprintln!(
                        "VIOLATION: F({m}²,{r}²) {points:?}: measured {measured:.3e} \
                         exceeds predicted bound {predicted:.3e}"
                    );
                }
                sink.push(&[
                    m.to_string(),
                    r.to_string(),
                    format!("{points:?}").to_lowercase(),
                    format!("{gamma:.4e}"),
                    format!("{predicted:.4e}"),
                    format!("{measured:.4e}"),
                    format!("{:.1}", predicted / measured.max(f64::MIN_POSITIVE)),
                ]);
            }
        }
    }
    sink.finish();
    if violations > 0 {
        eprintln!("error: {violations} bound violation(s)");
        std::process::exit(1);
    }
    eprintln!("# all measured errors within their a-priori bounds");
}
