//! Strong/weak-scaling harness: the measured evidence behind
//! `docs/scaling.md` and the `--scaling-smoke` CI gate.
//!
//! For each smoke layer, one fixed Winograd plan is timed at every
//! thread count in a 1..=N sweep, twice: **strong** (fixed problem) and
//! **weak** (batch grows with the thread count). Each point's executor
//! is shaped by the detected topology (serial at 1, flat static within
//! one domain, a sharded pool across domains); with the `probe` feature
//! one extra instrumented pass per point records fork–join barrier skew.
//! Points, per-layer Amdahl serial-fraction fits, and the topology
//! provenance land in a schema-v4 `BENCH_scaling.json`.
//!
//! ```text
//! cargo run -p wino-bench --release --features probe --bin scaling -- \
//!     [--max-threads N] [--reps N] [--floor F] [--check] [--out FILE] [--date YYYY-MM-DD]
//! cargo run -p wino-bench --bin scaling -- --validate FILE
//! ```
//!
//! `--check` makes the run a gate: at the host thread count, at least
//! one smoke layer must reach parallel efficiency ≥ the floor (default
//! 0.6), and no gate point's probed barrier skew may exceed
//! [`wino_probe::SMOKE_SKEW_BUDGET_US`]. Exit 1 on violation.

use wino_bench::perf::{calibrate, today_utc};
use wino_bench::scaling::{executor_for, fit_serial_fraction, scaling_document, ScalingPoint};
use wino_bench::{make_executor, run_winograd, Args};
use wino_conv::ConvOptions;
use wino_probe::{
    fold, parse_json, validate_schema, Json, MachineModel, WorkModel, SCHEMA_VERSION,
    SMOKE_SKEW_BUDGET_US,
};
use wino_sched::{configured_threads, Executor, ProbedExecutor, Topology};
use wino_tensor::ConvShape;
use wino_workloads::{scaled_catalog, Layer};

/// The same pinned smoke subset as the perf harness: one 2-D mid-net
/// layer, one batch-1 segmentation layer, one 3-D spatiotemporal layer.
const SMOKE_LAYERS: [&str; 3] = ["VGG 3.2", "FusionNet 2.2", "C3D C3b"];

/// Default parallel-efficiency floor of the `--check` gate. See
/// `docs/scaling.md` for how the number was chosen.
const DEFAULT_FLOOR: f64 = 0.6;

fn validate_file(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(1);
    });
    let doc = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(1);
    });
    match validate_schema(&doc) {
        Ok(()) => {
            let n = doc
                .get("scaling")
                .and_then(|s| s.get("points"))
                .and_then(Json::as_arr)
                .map(<[Json]>::len)
                .unwrap_or(0);
            println!("{path}: valid (schema_version {SCHEMA_VERSION}, {n} scaling points)");
            std::process::exit(0);
        }
        Err(errs) => {
            eprintln!("{path}: INVALID —");
            for e in &errs {
                eprintln!("  - {e}");
            }
            std::process::exit(1);
        }
    }
}

/// The sweep's thread counts: 1, the powers of two up to `max`, and
/// `max` itself — the classic scaling-plot x-axis, deduplicated.
fn thread_counts(max: usize) -> Vec<usize> {
    let mut counts = vec![1];
    let mut n = 2;
    while n < max {
        counts.push(n);
        n *= 2;
    }
    if max > 1 {
        counts.push(max);
    }
    counts
}

/// One instrumented pass: (max_skew_us, mean_skew_us) across its
/// fork–joins. `None` when probing is compiled out (no events) or the
/// plan/forward fails. The fold uses an empty work model — only the
/// barrier statistics are read, no roofline is needed.
fn barrier_skew(layer: &Layer, m: &[usize], exec: &dyn Executor) -> Option<(f64, f64)> {
    let plan = wino_conv::WinogradLayer::new(layer.shape.clone(), m, ConvOptions::default()).ok()?;
    let (input, kernels) = wino_bench::layer_data(layer, 42);
    let mut output = plan.new_output().ok()?;
    let mut probed = ProbedExecutor::new(exec);
    let mut scratch = wino_conv::Scratch::new(&plan, probed.threads());
    plan.forward(&input, &kernels, &mut output, &mut scratch, &probed).ok()?;
    std::hint::black_box(output.as_slice().first());
    let events = probed.take_events();
    if events.is_empty() {
        return None;
    }
    let machine = MachineModel { peak_gflops: 1.0, mem_bw_gbps: 1.0, threads: exec.threads() };
    let report = fold(&events, &WorkModel::new(), &machine);
    Some((report.barrier.max_skew_us, report.barrier.mean_skew_us))
}

/// The layer with its batch grown to `factor ×` for a weak-scaling point.
fn grown(layer: &Layer, factor: usize) -> Layer {
    let s = &layer.shape;
    Layer {
        network: layer.network,
        label: layer.label,
        shape: ConvShape::new(
            s.batch * factor,
            s.in_channels,
            s.out_channels,
            &s.image_dims,
            &s.kernel_dims,
            &s.padding,
        )
        .expect("growing the batch keeps a valid shape"),
    }
}

fn main() {
    let args = Args::from_env();
    if let Some(path) = args.value("--validate") {
        validate_file(path);
    }

    let reps = args.usize_or("--reps", 3);
    let floor = args
        .value("--floor")
        .map(|v| v.parse::<f64>().expect("--floor takes a number"))
        .unwrap_or(DEFAULT_FLOOR);
    let check = args.flag("--check");
    let topo = Topology::detect();
    let host = configured_threads();
    let max = args.usize_or("--max-threads", host);
    let counts = thread_counts(max);

    let layers: Vec<Layer> = scaled_catalog()
        .into_iter()
        .filter(|l| SMOKE_LAYERS.contains(&l.id().as_str()))
        .collect();
    assert!(!layers.is_empty(), "smoke layer selection is empty");

    eprintln!(
        "# topology: {} domain(s), {} cpu(s), smt {}, source {} ({})",
        topo.domains().len(),
        topo.total_cpus(),
        topo.smt_per_core(),
        topo.source().name(),
        topo.to_spec(),
    );
    eprintln!("# sweep: threads {counts:?}, host threads {host}, reps {reps}");
    if !wino_probe::ENABLED {
        eprintln!("# probe feature off: points will carry no barrier-skew columns");
    }

    // The machine block reuses the perf harness's calibration, run on the
    // full-width executor so roofline context matches the widest points.
    eprintln!("# calibrating machine model…");
    let machine = calibrate(make_executor(&args).as_ref());

    let mut points: Vec<ScalingPoint> = Vec::new();
    let mut fits: Vec<(String, f64)> = Vec::new();

    for layer in &layers {
        // One fixed plan per layer — F(2) per dimension is accepted by
        // every catalogue shape, and scaling ratios only need the plan to
        // be *constant* across the sweep, not optimal.
        let m = vec![2usize; layer.rank()];
        let mut strong: Vec<(usize, f64)> = Vec::new();

        for &n in &counts {
            let (exec, kind) = executor_for(&topo, n);

            // Strong: fixed problem.
            let Some(meas) = run_winograd(layer, &m, false, ConvOptions::default(), exec.as_ref(), reps)
            else {
                eprintln!("warning: plan rejected for {} — layer skipped", layer.id());
                break;
            };
            strong.push((n, meas.timing.best_ms));
            let t1 = strong[0].1;
            let speedup = t1 / meas.timing.best_ms;
            let skew = barrier_skew(layer, &m, exec.as_ref());
            eprintln!(
                "# {} strong n={n} [{kind}]: {:.3} ms (speedup {speedup:.2}, eff {:.2})",
                layer.id(),
                meas.timing.best_ms,
                speedup / n as f64,
            );
            points.push(ScalingPoint {
                layer: layer.id(),
                mode: "strong",
                threads: n,
                batch: layer.shape.batch,
                executor: kind,
                best_ms: meas.timing.best_ms,
                mean_ms: meas.timing.mean_ms,
                speedup,
                efficiency: speedup / n as f64,
                max_skew_us: skew.map(|s| s.0),
                mean_skew_us: skew.map(|s| s.1),
            });

            // Weak: batch grows n× so per-thread work is constant.
            let big = grown(layer, n);
            let Some(meas) = run_winograd(&big, &m, false, ConvOptions::default(), exec.as_ref(), reps)
            else {
                eprintln!("warning: weak-scaled plan rejected for {} at n={n}", layer.id());
                continue;
            };
            let t1w = points
                .iter()
                .find(|p| p.layer == layer.id() && p.mode == "weak" && p.threads == 1)
                .map_or(meas.timing.best_ms, |p| p.best_ms);
            let efficiency = t1w / meas.timing.best_ms;
            eprintln!(
                "# {} weak n={n} batch={} [{kind}]: {:.3} ms (eff {efficiency:.2})",
                layer.id(),
                big.shape.batch,
                meas.timing.best_ms,
            );
            points.push(ScalingPoint {
                layer: layer.id(),
                mode: "weak",
                threads: n,
                batch: big.shape.batch,
                executor: kind,
                best_ms: meas.timing.best_ms,
                mean_ms: meas.timing.mean_ms,
                speedup: efficiency * n as f64,
                efficiency,
                max_skew_us: None,
                mean_skew_us: None,
            });
        }

        if let Some(s) = fit_serial_fraction(&strong) {
            eprintln!("# {} Amdahl serial fraction: {s:.4}", layer.id());
            fits.push((layer.id(), s));
        }
    }
    assert!(!points.is_empty(), "sweep produced no points");

    let date = args.value("--date").map(str::to_string).unwrap_or_else(today_utc);
    let doc =
        scaling_document("wino-bench scaling", &date, &machine, &topo, host, floor, &points, &fits);

    // Self-check before writing, exactly like the perf harness.
    let rendered = doc.render_pretty();
    let reparsed = parse_json(&rendered).expect("emitted JSON must re-parse");
    if let Err(errs) = validate_schema(&reparsed) {
        eprintln!("error: assembled report fails its own schema:");
        for e in &errs {
            eprintln!("  - {e}");
        }
        std::process::exit(1);
    }

    match args.value("--out") {
        Some(path) => {
            std::fs::write(path, &rendered).expect("write report");
            eprintln!("# wrote {path} ({} points)", points.len());
        }
        None => print!("{rendered}"),
    }

    if check {
        // The gate looks at the strong points at the host's own thread
        // count: that is the configuration users actually run.
        let gate: Vec<&ScalingPoint> =
            points.iter().filter(|p| p.mode == "strong" && p.threads == host).collect();
        assert!(!gate.is_empty(), "no strong point at host thread count {host}");
        let best_eff = gate.iter().map(|p| p.efficiency).fold(0.0f64, f64::max);
        let worst_skew = gate.iter().filter_map(|p| p.max_skew_us).fold(0.0f64, f64::max);
        let mut failed = false;
        if best_eff < floor {
            eprintln!(
                "GATE FAIL: best parallel efficiency {best_eff:.3} at {host} thread(s) \
                 is below the floor {floor}"
            );
            failed = true;
        }
        if worst_skew > SMOKE_SKEW_BUDGET_US {
            eprintln!(
                "GATE FAIL: barrier skew {worst_skew:.0} µs at {host} thread(s) exceeds \
                 the {SMOKE_SKEW_BUDGET_US:.0} µs budget"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "# gate OK: efficiency {best_eff:.3} ≥ {floor}, worst skew {worst_skew:.0} µs \
             ≤ {SMOKE_SKEW_BUDGET_US:.0} µs"
        );
    }
}
