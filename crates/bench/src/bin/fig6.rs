//! Figure 6 harness: batched matrix-multiply throughput of the
//! specialised kernels vs a generic library-style kernel, per `V̂` size.
//!
//! For every legal `V̂` shape `(C_blk × C'_blk)` with at most `128²`
//! elements (multiples of 16, as §4.3.1 requires), tall-skinny panels are
//! multiplied by three engines:
//!
//! * `jit`       — run-time generated machine code (`wino-jit`),
//! * `mono`      — const-generic monomorphised kernels (`wino-gemm`),
//! * `generic`   — the non-specialised baseline (the MKL/LIBXSMM stand-in).
//!
//! `n_blk` is swept (6..=30, coarse grid) and the best value reported per
//! engine, matching the paper's methodology ("blocking strategies of
//! computing n_blk rows … were considered and the fastest one recorded").
//!
//! ```text
//! cargo run -p wino-bench --release --bin fig6 -- [--rows N] [--t N] [--reps N] [--json]
//! ```
//!
//! `--json` replaces the CSV with a JSON array of the same rows.

use std::time::Instant;

use wino_bench::{Args, Rows};
use wino_gemm::{batched_gemm, batched_gemm_generic, BlockShape};
use wino_jit::JitKernelPair;
use wino_tensor::BlockedMatrices;

fn fill(m: &mut BlockedMatrices, seed: usize) {
    for (i, f) in m.as_mut_slice().iter_mut().enumerate() {
        *f = (((i.wrapping_mul(seed * 2 + 0x9E3779B9)) >> 16) & 0xff) as f32 / 255.0 - 0.5;
    }
}

fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = Args::from_env();
    let rows = args.usize_or("--rows", 2048);
    let t_count = args.usize_or("--t", 8);
    let reps = args.usize_or("--reps", 3);
    let have_jit = wino_simd::cpu_has_avx512f();
    if !have_jit {
        eprintln!("# warning: no AVX-512F — jit column skipped");
    }

    let mut out = Rows::new(
        args.flag("--json"),
        &["c_blk", "cp_blk", "impl", "n_blk", "gflops", "speedup_vs_generic"],
    );
    let sizes = [16usize, 32, 48, 64, 96, 128];
    let nb_grid = [6usize, 8, 10, 14, 22, 30];

    for &cb in &sizes {
        for &cpb in &sizes {
            if cb * cpb > 128 * 128 {
                continue;
            }
            // Single k-block: C = C_blk isolates the V̂-size effect.
            let flops = 2.0 * (t_count * rows * cb * cpb) as f64;

            let bench = |nb: usize, engine: &str| -> f64 {
                let shape = BlockShape { n_blk: nb, c_blk: cb, cp_blk: cpb };
                let mut u = BlockedMatrices::new(t_count, rows, cb, shape.n_blk, cb);
                let mut v = BlockedMatrices::new(t_count, cb, cpb, cb, cpb);
                let mut x = BlockedMatrices::new(t_count, rows, cpb, shape.n_blk, cpb);
                fill(&mut u, 1);
                fill(&mut v, 2);
                let secs = match engine {
                    "mono" => best_of(reps, || batched_gemm(&u, &v, &mut x)),
                    "generic" => best_of(reps, || batched_gemm_generic(&u, &v, &mut x)),
                    "jit" => {
                        let pair = JitKernelPair::compile(nb, cb, cpb).expect("jit compile");
                        best_of(reps, || wino_jit::jit_batched_gemm(&u, &v, &mut x, &pair))
                    }
                    "jit-avx2" => {
                        let kern = wino_jit::Avx2Kernel::compile(nb, cb, cpb, false)
                            .expect("avx2 jit compile");
                        best_of(reps, || {
                            for t in 0..u.t_count() {
                                for j in 0..v.col_blocks() {
                                    for i in 0..u.row_blocks() {
                                        // SAFETY: single k block (C = C_blk), offsets in bounds.
                                        unsafe {
                                            kern.call(
                                                u.as_ptr().add(u.block_offset(i, 0, t)),
                                                v.as_ptr().add(v.block_offset(0, j, t)),
                                                x.as_mut_ptr().add(x.block_offset(i, j, t)),
                                            )
                                        };
                                    }
                                }
                            }
                        })
                    }
                    _ => unreachable!(),
                };
                std::hint::black_box(x.as_slice()[0]);
                flops / secs / 1e9
            };

            // Generic baseline: n_blk barely matters, measure once at 8.
            let generic = bench(8, "generic");
            out.push(&[
                cb.to_string(),
                cpb.to_string(),
                "generic".to_string(),
                "8".to_string(),
                format!("{generic:.2}"),
                "1.00".to_string(),
            ]);
            let mut report_capped = |engine: &str, cap: usize| {
                let (mut best_g, mut best_nb) = (0.0f64, 0usize);
                for &nb in nb_grid.iter().filter(|&&nb| nb <= cap) {
                    let g = bench(nb, engine);
                    if g > best_g {
                        best_g = g;
                        best_nb = nb;
                    }
                }
                out.push(&[
                    cb.to_string(),
                    cpb.to_string(),
                    engine.to_string(),
                    best_nb.to_string(),
                    format!("{best_g:.2}"),
                    format!("{:.2}", best_g / generic),
                ]);
            };
            report_capped("mono", usize::MAX);
            if have_jit {
                report_capped("jit", usize::MAX);
            }
            if wino_simd::cpu_has_avx2_fma() {
                report_capped("jit-avx2", wino_jit::MAX_N_BLK_AVX2);
            }
        }
    }
    out.finish();
}
