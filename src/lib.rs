//! # winograd-nd-repro
//!
//! Umbrella crate for the reproduction of *"Optimizing N-Dimensional,
//! Winograd-Based Convolution for Manycore CPUs"* (PPoPP 2018). See
//! `README.md` for the architecture tour, `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The member crates, re-exported here:
//!
//! * [`conv`] (`wino-conv`) — the N-D Winograd convolution engine;
//! * [`transforms`] (`wino-transforms`) — exact `F(m, r)` matrix
//!   generation + codelet compilation;
//! * [`tensor`] (`wino-tensor`) — the blocked data layouts of Table 1;
//! * [`simd`] (`wino-simd`) — the 16-lane vector substrate;
//! * [`gemm`] (`wino-gemm`) — specialised batched GEMM + autotuner;
//! * [`jit`] (`wino-jit`) — runtime x86-64 code generation of the GEMM
//!   micro-kernel;
//! * [`sched`] (`wino-sched`) — static scheduler, spin barrier, executors;
//! * [`baseline`] (`wino-baseline`) — direct / im2col / reference
//!   convolutions;
//! * [`fft`] (`wino-fft`) — FFT substrate and FFT convolution baseline;
//! * [`workloads`] (`wino-workloads`) — the Table 2 catalogue, data
//!   generators and metrics;
//! * [`rng`] (`wino-rng`) — seeded PRNG for data generation and
//!   property-style tests (no registry access required);
//! * [`probe`] (`wino-probe`) — stage-level observability: spans,
//!   counters, perf-report schema;
//! * [`serve`] (`wino-serve`) — overload-safe inference serving:
//!   deadline-aware batching, admission control, circuit-breaker
//!   degradation.

pub use wino_baseline as baseline;
pub use wino_conv as conv;
pub use wino_fft as fft;
pub use wino_gemm as gemm;
pub use wino_jit as jit;
pub use wino_probe as probe;
pub use wino_rng as rng;
pub use wino_sched as sched;
pub use wino_serve as serve;
pub use wino_simd as simd;
pub use wino_tensor as tensor;
pub use wino_transforms as transforms;
pub use wino_workloads as workloads;
