//! Fault-injection harness: end-to-end exercises of every recovery path
//! in the execution layer, driven by the `wino_sched::fault` hooks.
//!
//! Compile and run with `cargo test --features fault-inject`. Without the
//! feature the whole file compiles to nothing — release builds carry no
//! injection hooks.
//!
//! The armed fault is process-global, so every test serialises itself via
//! [`fault::test_lock`] and disarms on entry and exit.

#![cfg(feature = "fault-inject")]

use std::time::{Duration, Instant};

use winograd_nd_repro::conv::{
    Activation, ConvOptions, ExecutionReport, FallbackPolicy, FallbackReason, LayerBackend,
    LayerSpec, Network, WinoError,
};
use winograd_nd_repro::probe::Counter;
use winograd_nd_repro::sched::fault::{self, CorruptKind, When};
use winograd_nd_repro::sched::{BarrierError, PoolError, SerialExecutor, StaticExecutor};
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};

const THREADS: usize = 4;

fn spec(m: &[usize]) -> LayerSpec {
    LayerSpec {
        out_channels: 16,
        kernel: vec![3, 3],
        padding: vec![1, 1],
        m: m.to_vec(),
        activation: Activation::None,
    }
}

fn test_net(m: &[usize], policy: &FallbackPolicy) -> Network {
    Network::with_policy(1, 16, &[8, 8], &[spec(m)], ConvOptions::default(), THREADS, policy)
        .expect("test layer must plan")
}

fn test_data() -> (BlockedImage, BlockedKernels) {
    let img = SimpleImage::from_fn(1, 16, &[8, 8], |_, c, xy| {
        ((c * 7 + xy[0] * 3 + xy[1]) % 23) as f32 * 0.04 - 0.4
    });
    let ker = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
        ((co * 5 + ci * 11 + xy[0] + xy[1] * 2) % 17) as f32 * 0.05 - 0.4
    });
    (BlockedImage::from_simple(&img).unwrap(), BlockedKernels::from_simple(&ker).unwrap())
}

/// Ground truth: the same layer run cleanly with the serial executor.
fn clean_reference(m: &[usize]) -> BlockedImage {
    let mut net = test_net(m, &FallbackPolicy::strict());
    let (input, kernels) = test_data();
    net.forward(&input, &[kernels], &SerialExecutor).expect("clean reference run")
}

fn assert_close(got: &BlockedImage, want: &BlockedImage, tol: f32, ctx: &str) {
    let (g, w) = (got.as_slice(), want.as_slice());
    assert_eq!(g.len(), w.len(), "{ctx}: length mismatch");
    for (i, (a, b)) in g.iter().zip(w).enumerate() {
        assert!((a - b).abs() <= tol * b.abs().max(1.0), "{ctx}: elem {i}: {a} vs {b}");
    }
}

/// A worker panicking mid-layer surfaces as `WinoError::Pool` with the
/// faulting tid attributed — and the *same* pool then runs a clean layer,
/// because panics are contained and every participant still crosses the
/// end barrier.
#[test]
fn worker_panic_is_contained_and_pool_survives() {
    let _guard = fault::test_lock();
    fault::reset();

    let exec = StaticExecutor::new(THREADS);
    let mut net = test_net(&[2, 2], &FallbackPolicy::default());
    let (input, kernels) = test_data();

    fault::arm_panic(2, When::Next);
    let t0 = Instant::now();
    let err = net
        .run_layer(0, &input, &kernels, &exec, &FallbackPolicy::default())
        .expect_err("injected panic must surface");
    assert!(t0.elapsed() < Duration::from_secs(10), "panic path must not hang");
    match &err {
        WinoError::Pool(PoolError::Panicked { panics }) => {
            assert!(
                panics.iter().any(|(tid, msg)| *tid == 2 && msg.contains("injected fault")),
                "panic must be attributed to tid 2: {panics:?}"
            );
        }
        other => panic!("expected Pool(Panicked), got {other:?}"),
    }
    assert!(!exec.pool().is_dead(), "a contained panic must not kill the pool");

    // Same pool, clean layer: full recovery, correct numerics.
    let (out, report) = net
        .run_layer(0, &input, &kernels, &exec, &FallbackPolicy::default())
        .expect("pool must be reusable after a contained panic");
    assert_eq!(report.backend, LayerBackend::WinogradMono);
    assert_eq!(report.fallback, None);
    assert_close(&out, &clean_reference(&[2, 2]), 1e-5, "post-panic rerun");

    fault::reset();
}

/// A participant that never reaches the end barrier trips the watchdog:
/// the caller gets `BarrierError::Timeout` with arrival accounting well
/// before the stall resolves, and the pool is dead (poisoned) afterwards.
#[test]
fn barrier_stall_trips_watchdog_and_poisons_pool() {
    let _guard = fault::test_lock();
    fault::reset();

    let deadline = Duration::from_millis(200);
    let exec = StaticExecutor::with_deadline(THREADS, deadline);
    let mut net = test_net(&[2, 2], &FallbackPolicy::default());
    let (input, kernels) = test_data();

    fault::arm_stall(1, When::Next, Duration::from_millis(1500));
    let t0 = Instant::now();
    let err = net
        .run_layer(0, &input, &kernels, &exec, &FallbackPolicy::default())
        .expect_err("stalled participant must trip the watchdog");
    let waited_for = t0.elapsed();
    assert!(
        waited_for < Duration::from_millis(1200),
        "watchdog must fire before the stall resolves (took {waited_for:?})"
    );
    match &err {
        WinoError::Pool(PoolError::Barrier(BarrierError::Timeout { arrived, expected, .. })) => {
            assert_eq!(*expected, THREADS, "calling thread is tid 0, workers 1..N");
            assert!(*arrived < *expected, "the stalled tid must be missing");
        }
        other => panic!("expected Pool(Barrier(Timeout)), got {other:?}"),
    }
    assert!(exec.pool().is_dead(), "a tripped watchdog must kill the pool");

    // The dead pool refuses further work instead of hanging.
    let err = net
        .run_layer(0, &input, &kernels, &exec, &FallbackPolicy::default())
        .expect_err("dead pool must refuse work");
    assert!(
        matches!(err, WinoError::Pool(PoolError::Unusable)),
        "expected Pool(Unusable), got {err:?}"
    );
    // Dropping `exec` at scope end must not hang even with the worker
    // still asleep — covered implicitly by the test completing.
    fault::reset();
}

/// A NaN injected into any of the three Winograd stages trips the numeric
/// guard; with the default policy the layer transparently re-executes via
/// im2col, matching the clean result, and the report says why.
#[test]
fn poisoned_stage_degrades_to_im2col() {
    let _guard = fault::test_lock();

    let reference = clean_reference(&[2, 2]);
    for stage in 1u8..=3 {
        fault::reset();
        let exec = StaticExecutor::new(THREADS);
        let mut net = test_net(&[2, 2], &FallbackPolicy::default());
        let (input, kernels) = test_data();

        fault::arm_poison_stage(stage);
        let (out, report) = net
            .run_layer(0, &input, &kernels, &exec, &FallbackPolicy::default())
            .unwrap_or_else(|e| panic!("stage {stage} poison must be rescued: {e}"));
        assert_eq!(report.backend, LayerBackend::Im2col, "stage {stage}");
        assert!(
            matches!(report.fallback, Some(FallbackReason::NumericGuard(_))),
            "stage {stage}: report must carry the guard reason, got {:?}",
            report.fallback
        );
        assert_close(&out, &reference, 1e-4, &format!("stage {stage} im2col rescue"));
    }
    fault::reset();
}

/// With im2col rescue disabled, the same guard trip is a typed error —
/// never a silent NaN output.
#[test]
fn numeric_guard_without_rescue_is_a_typed_error() {
    let _guard = fault::test_lock();
    fault::reset();

    let policy = FallbackPolicy { im2col_on_numeric: false, ..FallbackPolicy::default() };
    let exec = StaticExecutor::new(THREADS);
    let mut net = test_net(&[2, 2], &policy);
    let (input, kernels) = test_data();

    fault::arm_poison_stage(2);
    let err = net
        .run_layer(0, &input, &kernels, &exec, &policy)
        .expect_err("guard trip without rescue must error");
    assert!(matches!(err, WinoError::Numeric(_)), "expected Numeric, got {err:?}");

    fault::reset();
}

/// A layer with no valid Winograd plan (tile far larger than the image)
/// is planned and executed via im2col under the permissive policy, with
/// the plan failure visible in the report — and the output still matches
/// the clean Winograd reference.
#[test]
fn unplannable_layer_runs_via_im2col_with_visible_reason() {
    let _guard = fault::test_lock();
    fault::reset();

    let exec = StaticExecutor::new(THREADS);
    let mut net = test_net(&[40, 40], &FallbackPolicy::default());
    let (input, kernels) = test_data();

    let (out, report) = net
        .run_layer(0, &input, &kernels, &exec, &FallbackPolicy::default())
        .expect("im2col-planned layer must run");
    assert_eq!(report.backend, LayerBackend::Im2col);
    assert!(
        matches!(report.fallback, Some(FallbackReason::PlanFailed(_))),
        "report must carry the plan failure, got {:?}",
        report.fallback
    );
    assert_close(&out, &clean_reference(&[2, 2]), 1e-4, "im2col-planned layer");

    fault::reset();
}

/// Whole-net degradation reporting: one poisoned layer in a two-layer net
/// yields per-layer reports with the rescue attributed to the right layer.
#[test]
fn run_net_reports_attribute_fallbacks_per_layer() {
    let _guard = fault::test_lock();
    fault::reset();

    let exec = StaticExecutor::new(THREADS);
    let specs = [spec(&[2, 2]), spec(&[2, 2])];
    let mut net = Network::with_policy(
        1,
        16,
        &[8, 8],
        &specs,
        ConvOptions::default(),
        THREADS,
        &FallbackPolicy::default(),
    )
    .unwrap();
    let (input, kernels) = test_data();
    let kernel_sets = vec![kernels.clone(), kernels];

    // Clean run for reference.
    let (want, clean_reports) = net
        .run_net(&input, &kernel_sets, &exec, &FallbackPolicy::default())
        .expect("clean run");
    assert!(clean_reports.iter().all(|r: &ExecutionReport| r.fallback.is_none()));

    // Poison fires during layer 0's stage 2; layer 1 must run clean.
    fault::arm_poison_stage(2);
    let (got, reports) = net
        .run_net(&input, &kernel_sets, &exec, &FallbackPolicy::default())
        .expect("poisoned run must be rescued");
    assert_eq!(reports.len(), 2);
    assert_eq!(reports[0].layer, 0);
    assert_eq!(reports[0].backend, LayerBackend::Im2col);
    assert!(matches!(reports[0].fallback, Some(FallbackReason::NumericGuard(_))));
    assert_eq!(reports[1].backend, LayerBackend::WinogradMono);
    assert_eq!(reports[1].fallback, None);
    assert_close(&got, &want, 1e-4, "two-layer rescue");

    fault::reset();
}

// ---------------------------------------------------------------------------
// Silent-corruption injection vs the accuracy sentinels. These corruptions
// are all *finite* — `check_finite` provably cannot see them — so they
// isolate the sentinel's sampled f64 re-verification as the only detector.
// ---------------------------------------------------------------------------

/// A sentinel policy that samples every output tile, so a corruption in
/// *any* tile is guaranteed to be seen (catch-rate tests should not be
/// probabilistic).
fn sentinel_all() -> FallbackPolicy {
    FallbackPolicy::with_sentinel(u32::MAX, 0x5e97)
}

/// Worst element-wise deviation between two images (to prove an
/// *undetected* corruption actually corrupted the output).
fn max_abs_diff(a: &BlockedImage, b: &BlockedImage) -> f32 {
    a.as_slice().iter().zip(b.as_slice()).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Silent data corruption (a finite bias over part of the transformed
/// output) trips the sentinel, and the layer is re-executed to a correct
/// result with the trip recorded in the report. `m = [2, 2]` cannot be
/// demoted, so the ladder goes straight to im2col.
#[test]
fn silent_corruption_is_caught_and_rescued() {
    let _guard = fault::test_lock();

    let reference = clean_reference(&[2, 2]);
    for kind in [CorruptKind::SilentBias, CorruptKind::BitFlip, CorruptKind::DenormalStorm] {
        fault::reset();
        let exec = StaticExecutor::new(THREADS);
        let policy = sentinel_all();
        let mut net = test_net(&[2, 2], &policy);
        let (input, kernels) = test_data();

        let trips_before = Counter::SentinelTrips.get();
        fault::arm_corrupt(2, kind, 1);
        let (out, report) = net
            .run_layer(0, &input, &kernels, &exec, &policy)
            .unwrap_or_else(|e| panic!("{kind:?} must be rescued, not an error: {e}"));
        assert_eq!(report.backend, LayerBackend::Im2col, "{kind:?}");
        match report.fallback {
            Some(FallbackReason::SentinelTrip(e)) => {
                assert!(e.rel_err > e.bound, "{kind:?}: trip must exceed the a-priori bound");
            }
            other => panic!("{kind:?}: expected SentinelTrip, got {other:?}"),
        }
        assert!(Counter::SentinelTrips.get() > trips_before, "{kind:?}: trip counter");
        assert_close(&out, &reference, 1e-4, &format!("{kind:?} im2col rescue"));
    }
    fault::reset();
}

/// Negative control: with sampling disabled the same corruption sails
/// through undetected — wrong output, clean report, zero sentinel work.
/// (This is what makes the sentinel's catch rate a real claim.)
#[test]
fn corruption_with_sampling_disabled_goes_undetected() {
    let _guard = fault::test_lock();
    fault::reset();

    let reference = clean_reference(&[2, 2]);
    let exec = StaticExecutor::new(THREADS);
    let policy = FallbackPolicy::default(); // sentinel.samples == 0
    let mut net = test_net(&[2, 2], &policy);
    let (input, kernels) = test_data();

    let checked_before = Counter::SentinelTilesChecked.get();
    let trips_before = Counter::SentinelTrips.get();
    fault::arm_corrupt(2, CorruptKind::SilentBias, 1);
    let (out, report) = net
        .run_layer(0, &input, &kernels, &exec, &policy)
        .expect("finite corruption must not error without sentinels");
    assert_eq!(report.backend, LayerBackend::WinogradMono);
    assert_eq!(report.fallback, None, "no detector ran, so nothing to report");
    assert!(
        max_abs_diff(&out, &reference) > 1.0,
        "the corruption must actually have landed in the output"
    );
    assert_eq!(Counter::SentinelTilesChecked.get(), checked_before, "samples=0 checks nothing");
    assert_eq!(Counter::SentinelTrips.get(), trips_before);

    fault::reset();
}

/// One corruption shot with a demotable tile: the ladder's first rung.
/// The re-run at `m - 2` is clean (the shot is spent), re-verifies, and
/// the report says `WinogradDemoted` with the original trip attached.
#[test]
fn sentinel_trip_demotes_the_tile_and_recovers() {
    let _guard = fault::test_lock();
    fault::reset();

    let reference = clean_reference(&[4, 4]);
    let exec = StaticExecutor::new(THREADS);
    let policy = sentinel_all();
    let mut net = test_net(&[4, 4], &policy);
    let (input, kernels) = test_data();

    let demotions_before = Counter::SentinelDemotions.get();
    fault::arm_corrupt(2, CorruptKind::SilentBias, 1);
    let (out, report) = net
        .run_layer(0, &input, &kernels, &exec, &policy)
        .expect("demotion must recover the layer");
    assert_eq!(report.backend, LayerBackend::WinogradDemoted);
    assert!(matches!(report.fallback, Some(FallbackReason::SentinelTrip(_))));
    assert!(Counter::SentinelDemotions.get() > demotions_before);
    assert_close(&out, &reference, 1e-4, "demoted re-run");

    fault::reset();
}

/// Two corruption shots: the demoted re-run is corrupted too, so the
/// ladder falls through its last rung to im2col — which runs no Winograd
/// stage 2 and therefore cannot be hit by the armed fault.
#[test]
fn persistent_corruption_falls_through_demotion_to_im2col() {
    let _guard = fault::test_lock();
    fault::reset();

    let reference = clean_reference(&[4, 4]);
    let exec = StaticExecutor::new(THREADS);
    let policy = sentinel_all();
    let mut net = test_net(&[4, 4], &policy);
    let (input, kernels) = test_data();

    let rescues_before = Counter::SentinelRescues.get();
    fault::arm_corrupt(2, CorruptKind::SilentBias, 2);
    let (out, report) = net
        .run_layer(0, &input, &kernels, &exec, &policy)
        .expect("im2col must rescue persistent corruption");
    assert_eq!(report.backend, LayerBackend::Im2col);
    assert!(matches!(report.fallback, Some(FallbackReason::SentinelTrip(_))));
    assert!(Counter::SentinelRescues.get() > rescues_before);
    assert_close(&out, &reference, 1e-4, "im2col rescue after corrupt demotion");

    fault::reset();
}

// ---------------------------------------------------------------------------
// OOM battery: injected allocation refusals (`wino_simd::fault`) against
// every layer of the resource-exhaustion story — plan-time accounting,
// the run-time memory ladder, and the serving hot path. The memory
// injector is process-global like the worker-fault hooks, so these tests
// share [`fault::test_lock`].
// ---------------------------------------------------------------------------

use winograd_nd_repro::conv::{MemoryBudget, PlanError};
use winograd_nd_repro::simd::fault as mem_fault;

/// Plan-time memory accounting: a budget no tile can meet degrades the
/// layer to im2col under the permissive policy (with the pressure visible
/// as `FallbackReason::Memory`), and is a typed `PlanError::MemoryBudget`
/// under the strict one. No injector involved — this is the analytic
/// model refusing, not the allocator.
#[test]
fn oom_at_plan_time_degrades_or_fails_typed() {
    let _guard = fault::test_lock();
    fault::reset();
    mem_fault::reset();

    let opts = ConvOptions {
        memory: Some(MemoryBudget::new(1).with_threads(THREADS)),
        ..ConvOptions::default()
    };

    // Strict: the budget miss is a typed plan failure.
    let err = match Network::with_policy(
        1, 16, &[8, 8], &[spec(&[2, 2])], opts, THREADS, &FallbackPolicy::strict(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("1-byte budget must not plan strictly"),
    };
    assert!(
        matches!(err, PlanError::MemoryBudget { need_bytes, budget_bytes }
            if need_bytes > budget_bytes && budget_bytes == 1),
        "expected MemoryBudget, got {err:?}"
    );

    // Permissive: planned as im2col, pressure recorded, output correct.
    let mut net = Network::with_policy(
        1, 16, &[8, 8], &[spec(&[2, 2])], opts, THREADS, &FallbackPolicy::default(),
    )
    .expect("permissive policy must absorb the budget miss");
    let (input, kernels) = test_data();
    let (out, report) = net
        .run_layer(0, &input, &kernels, &SerialExecutor, &FallbackPolicy::default())
        .expect("im2col-planned layer must run");
    assert_eq!(report.backend, LayerBackend::Im2col);
    assert!(
        matches!(report.fallback, Some(FallbackReason::Memory { bytes }) if bytes > 1),
        "report must carry the memory reason, got {:?}",
        report.fallback
    );
    assert_close(&out, &clean_reference(&[2, 2]), 1e-4, "budget-degraded layer");
}

/// Refused allocations during network construction hit only the scratch
/// pre-seeding, which is an optimisation: planning succeeds, the slots
/// stay empty, and the first forward after pressure lifts rebuilds them
/// and runs clean.
#[test]
fn oom_during_plan_seeding_is_deferred_not_fatal() {
    let _guard = fault::test_lock();
    fault::reset();
    mem_fault::reset();

    mem_fault::arm_fail_every(1, u32::MAX);
    let mut net = test_net(&[2, 2], &FallbackPolicy::default());
    let refused = mem_fault::injected_failures();
    assert!(refused > 0, "seeding must have consulted the armed injector");
    mem_fault::reset();

    let (input, kernels) = test_data();
    let (out, report) = net
        .run_layer(0, &input, &kernels, &SerialExecutor, &FallbackPolicy::default())
        .expect("pressure lifted: the unseeded net must run");
    assert_eq!(report.backend, LayerBackend::WinogradMono);
    assert_eq!(report.fallback, None);
    assert_close(&out, &clean_reference(&[2, 2]), 1e-5, "post-seeding-refusal run");
}

/// The run-time degradation ladder, rung by rung: each additional
/// injected failure pushes the outcome one step further down — larger-`m`
/// re-tile (`WinogradDemoted`), then the im2col rescue, then the typed
/// `WinoError::Alloc`. The outcome class must be monotone in the shot
/// count, every rung must be reachable, and each successful rescue must
/// still be numerically correct.
#[test]
fn oom_ladder_depth_tracks_shot_count() {
    let _guard = fault::test_lock();
    fault::reset();

    let reference = clean_reference(&[2, 2]);
    let policy = FallbackPolicy::default();
    // 0 = demoted re-tile, 1 = im2col rescue, 2 = typed failure.
    let mut classes = Vec::new();
    for shots in 1..=8u32 {
        mem_fault::reset();
        let mut net = test_net(&[2, 2], &policy);
        let (input, kernels) = test_data();
        let demotions = Counter::MemoryDemotions.get();
        let rescues = Counter::MemoryRescues.get();
        mem_fault::arm_fail_every(1, shots);
        let class = match net.run_layer(0, &input, &kernels, &SerialExecutor, &policy) {
            Ok((out, report)) => {
                assert!(
                    matches!(report.fallback, Some(FallbackReason::Memory { .. })),
                    "shots={shots}: survivors must report the memory reason, got {:?}",
                    report.fallback
                );
                match report.backend {
                    LayerBackend::WinogradDemoted => {
                        assert!(
                            Counter::MemoryDemotions.get() > demotions,
                            "shots={shots}: demotion must be counted"
                        );
                        // Looser than the other rescues: the memory
                        // ladder re-tiles towards *larger* m (up to
                        // F(8,3)), whose transforms are markedly less
                        // accurate than the m=2 reference.
                        assert_close(&out, &reference, 1e-2, "demoted re-tile");
                        0
                    }
                    LayerBackend::Im2col => {
                        assert!(
                            Counter::MemoryRescues.get() > rescues,
                            "shots={shots}: rescue must be counted"
                        );
                        assert_close(&out, &reference, 1e-4, "im2col rescue");
                        1
                    }
                    other => panic!("shots={shots}: unexpected backend {other:?}"),
                }
            }
            Err(WinoError::Alloc(cause)) => {
                assert!(cause.injected, "shots={shots}: failure must be the injected one");
                2
            }
            Err(other) => panic!("shots={shots}: expected Alloc, got {other:?}"),
        };
        assert_eq!(
            mem_fault::injected_failures().min(1),
            1,
            "shots={shots}: at least one shot must have landed"
        );
        classes.push(class);
        mem_fault::reset();
    }
    assert_eq!(classes[0], 0, "one refusal must be absorbed by a re-tile: {classes:?}");
    assert!(classes.contains(&1), "the im2col rung must be reachable: {classes:?}");
    assert_eq!(*classes.last().unwrap(), 2, "total pressure must fail typed: {classes:?}");
    assert!(
        classes.windows(2).all(|w| w[0] <= w[1]),
        "ladder depth must be monotone in shot count: {classes:?}"
    );

    // Under total pressure with every rescue disabled, the very first
    // refusal is the typed error — no ladder, no abort.
    mem_fault::reset();
    let strict = FallbackPolicy::strict();
    let mut net = test_net(&[2, 2], &strict);
    let (input, kernels) = test_data();
    mem_fault::arm_fail_every(1, u32::MAX);
    let err = net
        .run_layer(0, &input, &kernels, &SerialExecutor, &strict)
        .expect_err("strict policy must surface the refusal");
    assert!(matches!(err, WinoError::Alloc(c) if c.injected), "got {err:?}");
    assert_eq!(mem_fault::injected_failures(), 1, "strict path stops at the first shot");
    mem_fault::reset();
}

/// Negative control: with the injector disarmed the identical layer runs
/// clean — no fallback, no ladder counters, zero injected failures. This
/// is what makes the battery's positive results attributable to the
/// injector rather than ambient allocator behaviour.
#[test]
fn oom_injection_disarmed_is_a_clean_run() {
    let _guard = fault::test_lock();
    fault::reset();
    mem_fault::reset();

    let demotions = Counter::MemoryDemotions.get();
    let rescues = Counter::MemoryRescues.get();
    let mut net = test_net(&[2, 2], &FallbackPolicy::default());
    let (input, kernels) = test_data();
    let (out, report) = net
        .run_layer(0, &input, &kernels, &SerialExecutor, &FallbackPolicy::default())
        .expect("clean run");
    assert_eq!(report.backend, LayerBackend::WinogradMono);
    assert_eq!(report.fallback, None);
    assert_eq!(mem_fault::injected_failures(), 0);
    assert_eq!(Counter::MemoryDemotions.get(), demotions);
    assert_eq!(Counter::MemoryRescues.get(), rescues);
    assert_close(&out, &clean_reference(&[2, 2]), 1e-5, "disarmed control");
}

/// Denormal storm under the serial executor: the coordinator thread *is*
/// the compute thread, so the FTZ/DAZ guard engaged by the execution
/// layer covers all stage arithmetic. The storm's subnormals are still
/// numerically wrong (the true values they overwrote were not ~0), so
/// the sentinel must catch them — and the FTZ guard must demonstrably
/// have been engaged for the layer.
#[test]
fn denormal_storm_is_caught_under_serial_executor_with_ftz_engaged() {
    let _guard = fault::test_lock();
    fault::reset();

    let reference = clean_reference(&[2, 2]);
    let policy = sentinel_all();
    let mut net = test_net(&[2, 2], &policy);
    let (input, kernels) = test_data();

    let engaged_before = winograd_nd_repro::simd::denormals::engaged_count();
    fault::arm_corrupt(2, CorruptKind::DenormalStorm, 1);
    let (out, report) = net
        .run_layer(0, &input, &kernels, &SerialExecutor, &policy)
        .expect("storm must be rescued");
    assert_eq!(report.backend, LayerBackend::Im2col);
    assert!(matches!(report.fallback, Some(FallbackReason::SentinelTrip(_))));
    assert!(
        winograd_nd_repro::simd::denormals::engaged_count() > engaged_before,
        "the execution layer must engage the FTZ/DAZ guard around the layer"
    );
    assert_close(&out, &reference, 1e-4, "denormal-storm rescue");

    fault::reset();
}
