//! Cross-crate equivalence: every convolution implementation in the
//! workspace (Winograd for several F(m, r), vectorised direct, im2col +
//! GEMM, FFT) must compute the same function, with the f64-accumulating
//! direct convolution as the arbiter.

use winograd_nd_repro::baseline::{direct_conv, direct_f64, element_errors, im2col_conv};
use winograd_nd_repro::conv::{
    convolve_simple, ConvOptions, Schedule, Scratch, WinogradLayer,
};
use winograd_nd_repro::fft::fft_conv;
use winograd_nd_repro::sched::SerialExecutor;
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, ConvShape, SimpleImage, SimpleKernels};

fn image(shape: &ConvShape, seed: usize) -> SimpleImage {
    SimpleImage::from_fn(shape.batch, shape.in_channels, &shape.image_dims, |b, c, xy| {
        let mut h = b.wrapping_mul(97).wrapping_add(c.wrapping_mul(13)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(31).wrapping_add(x);
        }
        ((h % 199) as f32 / 100.0 - 1.0) * 0.1
    })
}

fn kernels(shape: &ConvShape, seed: usize) -> SimpleKernels {
    SimpleKernels::from_fn(shape.out_channels, shape.in_channels, &shape.kernel_dims, |co, ci, xy| {
        let mut h = co.wrapping_mul(41).wrapping_add(ci.wrapping_mul(7)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(17).wrapping_add(x);
        }
        ((h % 101) as f32 / 50.0 - 1.0) * 0.15
    })
}

fn check_all(shape: ConvShape, m: &[usize], tol: f64) {
    let img = image(&shape, 1);
    let ker = kernels(&shape, 2);
    let truth = direct_f64(&img, &ker, &shape.padding);

    // Winograd, under every stage schedule. The schedules only move the
    // fork–join barriers, so beyond the accuracy bound they must agree
    // with each other bitwise.
    let mut per_schedule: Vec<Vec<f32>> = Vec::new();
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..Default::default() };
        let plan = WinogradLayer::new(shape.clone(), m, opts).unwrap();
        let bi = BlockedImage::from_simple(&img).unwrap();
        let bk = BlockedKernels::from_simple(&ker).unwrap();
        let mut scratch = Scratch::new(&plan, 1);
        let mut out = plan.new_output().unwrap();
        plan.forward(&bi, &bk, &mut out, &mut scratch, &SerialExecutor).unwrap();
        let (e, _) = element_errors(&out.to_simple(), &truth);
        assert!(e < tol, "winograd F({m:?}) [{}]: max err {e}", schedule.name());
        per_schedule.push(out.as_slice().to_vec());
    }
    for (s, r) in Schedule::ALL.iter().zip(&per_schedule).skip(1) {
        assert_eq!(
            r, &per_schedule[0],
            "schedule {} diverged from {} for F({m:?})",
            s.name(),
            Schedule::ALL[0].name()
        );
    }

    // The one-shot convenience API (default schedule).
    let wino = convolve_simple(&img, &ker, &shape.padding, m).unwrap();
    let (e, _) = element_errors(&wino, &truth);
    assert!(e < tol, "winograd F({m:?}): max err {e}");

    // Direct (blocked, vectorised).
    let bi = BlockedImage::from_simple(&img).unwrap();
    let bk = BlockedKernels::from_simple(&ker).unwrap();
    let mut out = BlockedImage::zeros(shape.batch, shape.out_channels, &truth.dims).unwrap();
    direct_conv(&bi, &bk, &shape.padding, &mut out, &SerialExecutor).unwrap();
    let (e, _) = element_errors(&out.to_simple(), &truth);
    assert!(e < tol, "direct: max err {e}");

    // im2col + GEMM.
    let mut out2 = BlockedImage::zeros(shape.batch, shape.out_channels, &truth.dims).unwrap();
    im2col_conv(&bi, &bk, &shape.padding, &mut out2, &SerialExecutor).unwrap();
    let (e, _) = element_errors(&out2.to_simple(), &truth);
    assert!(e < tol, "im2col: max err {e}");

    // FFT.
    let fout = fft_conv(&img, &ker, &shape.padding, &SerialExecutor).unwrap();
    let (e, _) = element_errors(&fout, &truth);
    assert!(e < tol * 10.0, "fft: max err {e}");
}

#[test]
fn vgg_style_2d_same_padding() {
    let shape = ConvShape::new(2, 32, 32, &[12, 12], &[3, 3], &[1, 1]).unwrap();
    check_all(shape, &[4, 4], 1e-4);
}

#[test]
fn valid_padding_rectangular() {
    let shape = ConvShape::new(1, 16, 32, &[11, 17], &[3, 3], &[0, 0]).unwrap();
    check_all(shape, &[2, 4], 1e-4);
}

#[test]
fn c3d_style_3d() {
    let shape = ConvShape::new(1, 16, 16, &[6, 8, 8], &[3, 3, 3], &[1, 1, 1]).unwrap();
    check_all(shape, &[2, 2, 2], 1e-4);
}

#[test]
fn arbitrary_kernel_4x4() {
    let shape = ConvShape::new(1, 16, 16, &[12, 12], &[4, 4], &[0, 0]).unwrap();
    check_all(shape, &[3, 3], 1e-4);
}

#[test]
fn asymmetric_kernel_and_tile() {
    let shape = ConvShape::new(1, 16, 16, &[10, 14], &[2, 5], &[0, 2]).unwrap();
    check_all(shape, &[3, 2], 1e-4);
}

#[test]
fn larger_tiles_have_bounded_error() {
    // F(6²) is usable for training per Table 3 — errors stay small.
    let shape = ConvShape::new(1, 16, 16, &[14, 14], &[3, 3], &[1, 1]).unwrap();
    check_all(shape, &[6, 6], 1e-3);
}

#[test]
fn channel_mixing_is_exact_summation() {
    // One-hot kernels: output channel j must equal the sum of selected
    // input channels — catches channel-indexing bugs in every layout.
    let shape = ConvShape::new(1, 32, 16, &[8, 8], &[1, 1], &[0, 0]).unwrap();
    let img = image(&shape, 3);
    let mut ker = SimpleKernels::zeros(16, 32, &[1, 1]);
    for co in 0..16 {
        ker.set(co, co, &[0, 0], 1.0); // identity pick of channel co
        ker.set(co, co + 16, &[0, 0], 2.0); // plus 2x channel co+16
    }
    let wino = convolve_simple(&img, &ker, &[0, 0], &[4, 4]).unwrap();
    for co in 0..16 {
        for x in 0..8 {
            for y in 0..8 {
                let want = img.get(0, co, &[x, y]) + 2.0 * img.get(0, co + 16, &[x, y]);
                let got = wino.get(0, co, &[x, y]);
                assert!((got - want).abs() < 1e-4, "c'={co} ({x},{y}): {got} vs {want}");
            }
        }
    }
}

#[test]
fn fx_equals_training_mode_across_shapes() {
    for (dims, kd, m) in [
        (vec![10usize, 10], vec![3usize, 3], vec![4usize, 4]),
        (vec![6, 8, 8], vec![3, 3, 3], vec![2, 2, 2]),
    ] {
        let pad = vec![1usize; dims.len()];
        let shape = ConvShape::new(1, 16, 16, &dims, &kd, &pad).unwrap();
        let plan = WinogradLayer::new(shape.clone(), &m, ConvOptions::default()).unwrap();
        let bi = BlockedImage::from_simple(&image(&shape, 4)).unwrap();
        let bk = BlockedKernels::from_simple(&kernels(&shape, 5)).unwrap();
        let mut scratch = Scratch::new(&plan, 1);
        let mut out_a = plan.new_output().unwrap();
        let mut out_b = plan.new_output().unwrap();
        plan.forward(&bi, &bk, &mut out_a, &mut scratch, &SerialExecutor).unwrap();
        let tk = plan.prepare_kernels(&bk, &mut scratch, &SerialExecutor).unwrap();
        plan.forward_fx(&bi, &tk, &mut out_b, &mut scratch, &SerialExecutor).unwrap();
        assert_eq!(out_a.as_slice(), out_b.as_slice(), "dims {dims:?}");
    }
}
