//! Property-style tests on the core invariants, driven by the seeded
//! [`winograd_nd_repro::rng`] generator (this workspace builds without
//! registry access, so `proptest` is not available):
//!
//! * Winograd convolution ≈ extended-precision direct convolution for
//!   *arbitrary* layer shapes, kernel sizes, tile sizes and paddings;
//! * the static grid partitioner covers every task exactly once for
//!   arbitrary grids and thread counts;
//! * the Cook–Toom identity holds exactly over the rationals for random
//!   inputs;
//! * blocked-layout conversions round-trip.
//!
//! Each test draws a fixed number of random cases from a fixed seed, so
//! failures are reproducible; the offending case's parameters are in the
//! assertion message.

use winograd_nd_repro::baseline::{direct_f64, element_errors};
use winograd_nd_repro::conv::convolve_simple;
use winograd_nd_repro::rng::Rng;
use winograd_nd_repro::sched::GridPartition;
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};
use winograd_nd_repro::transforms::{direct_correlation, Rational, Transform1D};

fn arb_rational(rng: &mut Rng) -> Rational {
    let n = rng.range_usize(0, 40) as i128 - 20;
    let d = rng.range_usize(1, 6) as i128;
    Rational::new(n, d)
}

#[test]
fn winograd_matches_reference_2d() {
    let mut rng = Rng::seed_from_u64(0x2d2d);
    let mut cases = 0;
    while cases < 24 {
        let batch = rng.range_usize(1, 2);
        let c = rng.range_usize(1, 2) * 16;
        let cp = rng.range_usize(1, 2) * 16;
        let (h, w) = (rng.range_usize(6, 15), rng.range_usize(6, 15));
        let (rh, rw) = (rng.range_usize(1, 4), rng.range_usize(1, 4));
        let (mh, mw) = (rng.range_usize(1, 4), rng.range_usize(1, 4));
        let (ph, pw) = (rng.range_usize(0, 1), rng.range_usize(0, 1));
        let seed = rng.range_usize(0, 999);
        if h + 2 * ph < rh || w + 2 * pw < rw {
            continue;
        }
        cases += 1;
        let img = SimpleImage::from_fn(batch, c, &[h, w], |b, ch, xy| {
            let u = (b * 131 + ch * 17 + xy[0] * 7 + xy[1] * 3 + seed) % 211;
            u as f32 / 211.0 * 0.2 - 0.1
        });
        let ker = SimpleKernels::from_fn(cp, c, &[rh, rw], |co, ci, xy| {
            let u = (co * 19 + ci * 5 + xy[0] * 3 + xy[1] + seed) % 97;
            u as f32 / 97.0 * 0.4 - 0.2
        });
        let got = convolve_simple(&img, &ker, &[ph, pw], &[mh, mw]).unwrap();
        let want = direct_f64(&img, &ker, &[ph, pw]);
        let (max_err, _) = element_errors(&got, &want);
        // Scale-aware bound: values are O(1) sums of ≤ c·r² terms of O(0.02).
        assert!(max_err < 2e-3, "max err {max_err} for F(({mh},{mw}),({rh},{rw})) C={c}");
    }
}

#[test]
fn winograd_matches_reference_3d() {
    let mut rng = Rng::seed_from_u64(0x3d3d);
    for _ in 0..12 {
        let d = rng.range_usize(4, 7);
        let h = rng.range_usize(4, 8);
        let m = rng.range_usize(1, 2);
        let pad = rng.range_usize(0, 1);
        let seed = rng.range_usize(0, 99);
        if d + 2 * pad < 3 || h + 2 * pad < 3 {
            continue;
        }
        let img = SimpleImage::from_fn(1, 16, &[d, h, h], |_, ch, xyz| {
            ((ch * 3 + xyz[0] * 5 + xyz[1] * 2 + xyz[2] + seed) % 37) as f32 * 0.005
        });
        let ker = SimpleKernels::from_fn(16, 16, &[3, 3, 3], |co, ci, xyz| {
            ((co + ci * 2 + xyz[0] + xyz[1] + xyz[2] + seed) % 23) as f32 * 0.02 - 0.2
        });
        let got = convolve_simple(&img, &ker, &[pad, pad, pad], &[m, m, m]).unwrap();
        let want = direct_f64(&img, &ker, &[pad, pad, pad]);
        let (max_err, _) = element_errors(&got, &want);
        assert!(max_err < 1e-3, "max err {max_err} for m={m} pad={pad}");
    }
}

#[test]
fn grid_partition_exactly_covers() {
    let mut rng = Rng::seed_from_u64(0x941d);
    for _ in 0..200 {
        let rank = rng.range_usize(1, 4);
        let dims: Vec<usize> = (0..rank).map(|_| rng.range_usize(1, 8)).collect();
        let threads = rng.range_usize(1, 16);
        let p = GridPartition::new(&dims, threads);
        assert_eq!(p.boxes.len(), threads);
        let total: usize = dims.iter().product();
        let mut seen = vec![0u32; total];
        for b in &p.boxes {
            b.for_each_flat(&dims, |i| seen[i] += 1);
        }
        assert!(seen.iter().all(|&s| s == 1), "dims {dims:?} threads {threads}");
    }
}

#[test]
fn cook_toom_identity_is_exact() {
    let mut rng = Rng::seed_from_u64(0xc007);
    for _ in 0..48 {
        let m = rng.range_usize(1, 6);
        let r = rng.range_usize(1, 5);
        let t = Transform1D::generate(m, r);
        let d: Vec<Rational> = (0..t.alpha).map(|_| arb_rational(&mut rng)).collect();
        let g: Vec<Rational> = (0..r).map(|_| arb_rational(&mut rng)).collect();
        let got = t.apply_exact(&d, &g);
        let want = direct_correlation(&d, &g, m);
        assert_eq!(got, want, "F({m},{r})");
    }
}

#[test]
fn blocked_image_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xb10c);
    for _ in 0..50 {
        let batch = rng.range_usize(1, 2);
        let c = rng.range_usize(1, 3) * 16;
        let rank = rng.range_usize(1, 3);
        let dims: Vec<usize> = (0..rank).map(|_| rng.range_usize(1, 6)).collect();
        let seed = rng.range_usize(0, 999);
        let img = SimpleImage::from_fn(batch, c, &dims, |b, ch, xy| {
            (b * 1009 + ch * 31 + xy.iter().sum::<usize>() + seed) as f32 * 0.01
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        assert_eq!(blocked.to_simple(), img, "dims {dims:?} C={c}");
    }
}

#[test]
fn blocked_kernel_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xb10d);
    for _ in 0..50 {
        let cin = rng.range_usize(1, 19);
        let cp = rng.range_usize(1, 2) * 16;
        let rank = rng.range_usize(1, 3);
        let kd: Vec<usize> = (0..rank).map(|_| rng.range_usize(1, 4)).collect();
        let k = SimpleKernels::from_fn(cp, cin, &kd, |co, ci, xy| {
            (co * 101 + ci * 13 + xy.iter().sum::<usize>()) as f32 * 0.1
        });
        let blocked = BlockedKernels::from_simple(&k).unwrap();
        assert_eq!(blocked.to_simple(), k, "kd {kd:?} cin={cin}");
    }
}

// ---------------------------------------------------------------------------
// Differential schedule sweep: random layers, all three stage schedules
// (unfused / fused-scatter / pipelined) against the extended-precision
// direct oracle, with a greedy minimal-shrink report on failure.
// ---------------------------------------------------------------------------

use winograd_nd_repro::baseline::direct_f64_geo;
use winograd_nd_repro::conv::{plan_dispatch, ConvOptions, FallbackPolicy, Schedule};
use winograd_nd_repro::sched::SerialExecutor;
use winograd_nd_repro::tensor::ConvShape;

/// Pinned default seed for the sweep; override with `WINO_SWEEP_SEED=<u64>`
/// to explore a different region of the case space.
const SWEEP_SEED: u64 = 0xd1ff_2026;
const SWEEP_CASES: usize = 320;

#[derive(Clone, Debug, PartialEq)]
struct SweepCase {
    batch: usize,
    c: usize,
    cp: usize,
    dims: Vec<usize>,
    kd: Vec<usize>,
    m: Vec<usize>,
    pad: Vec<usize>,
    stride: Vec<usize>,
    dilation: Vec<usize>,
    groups: usize,
    seed: usize,
}

impl SweepCase {
    /// Geometry the dispatcher is expected to accept: the padded image
    /// covers the *effective* (dilated) kernel in every dimension, and
    /// the group count divides both channel counts. Stride never affects
    /// representability — it only decimates the output.
    fn valid(&self) -> bool {
        let spatial = self
            .dims
            .iter()
            .zip(&self.kd)
            .zip(&self.pad)
            .zip(&self.dilation)
            .all(|(((&d, &r), &p), &dil)| {
                let effective_kernel = (r - 1) * dil + 1;
                d + 2 * p >= effective_kernel
            });
        spatial
            && self.c.is_multiple_of(self.groups)
            && self.cp.is_multiple_of(self.groups)
    }
}

fn draw_case(rng: &mut Rng) -> SweepCase {
    let rank = rng.range_usize(1, 3);
    let hi = if rank == 3 { 7 } else { 12 };
    let c = rng.range_usize(1, 2) * 16;
    SweepCase {
        batch: rng.range_usize(1, 2),
        c,
        cp: rng.range_usize(1, 2) * 16,
        dims: (0..rank).map(|_| rng.range_usize(3, hi)).collect(),
        kd: (0..rank).map(|_| rng.range_usize(1, 3)).collect(),
        m: (0..rank).map(|_| rng.range_usize(1, 4)).collect(),
        pad: (0..rank).map(|_| rng.range_usize(0, 1)).collect(),
        stride: (0..rank).map(|_| rng.range_usize(1, 2)).collect(),
        dilation: (0..rank).map(|_| rng.range_usize(1, 2)).collect(),
        // The issue's group lattice: dense, half-width, depthwise.
        groups: match rng.range_usize(0, 2) {
            0 => 1,
            1 => c / 2,
            _ => c,
        },
        seed: rng.range_usize(0, 999),
    }
}

/// Run one case through the dispatch layer under every schedule. `None`
/// means it passed; `Some` carries the failure description. Every route
/// — direct Winograd, polyphase, grouped, im2col — is judged against the
/// same f64 oracle, and all schedules must agree bitwise.
fn sweep_failure(case: &SweepCase) -> Option<String> {
    let cg = case.c / case.groups;
    let img = SimpleImage::from_fn(case.batch, case.c, &case.dims, |b, ch, xy| {
        let mut h = b.wrapping_mul(131).wrapping_add(ch.wrapping_mul(17)).wrapping_add(case.seed);
        for &x in xy {
            h = h.wrapping_mul(31).wrapping_add(x);
        }
        (h % 211) as f32 / 211.0 * 0.2 - 0.1
    });
    // Grouped convention: kernels carry C/G input channels.
    let ker = SimpleKernels::from_fn(case.cp, cg, &case.kd, |co, ci, xy| {
        let mut h = co.wrapping_mul(19).wrapping_add(ci.wrapping_mul(5)).wrapping_add(case.seed);
        for &x in xy {
            h = h.wrapping_mul(13).wrapping_add(x);
        }
        (h % 97) as f32 / 97.0 * 0.4 - 0.2
    });
    let shape = match ConvShape::new(case.batch, case.c, case.cp, &case.dims, &case.kd, &case.pad)
    {
        Ok(s) => s,
        Err(e) => return Some(format!("shape rejected: {e:?}")),
    };
    let base_opts = ConvOptions::default()
        .with_stride(&case.stride)
        .with_dilation(&case.dilation)
        .with_groups(case.groups);
    let geo = base_opts.geometry(case.dims.len());
    let truth = direct_f64_geo(&img, &ker, &case.pad, &geo);
    let bi = match BlockedImage::from_simple(&img) {
        Ok(b) => b,
        Err(e) => return Some(format!("blocking rejected: {e:?}")),
    };
    let bk = match BlockedKernels::from_simple(&ker) {
        Ok(b) => b,
        Err(e) => return Some(format!("kernel blocking rejected: {e:?}")),
    };

    let policy = FallbackPolicy::default();
    let mut outputs: Vec<(Schedule, Vec<f32>)> = Vec::new();
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..base_opts };
        let (dp, _fb) = match plan_dispatch(&shape, &case.m, opts, &policy) {
            Ok(v) => v,
            Err(e) => return Some(format!("dispatch rejected [{}]: {e:?}", schedule.name())),
        };
        let mut out = match dp.new_output() {
            Ok(o) => o,
            Err(e) => return Some(format!("output alloc [{}]: {e:?}", schedule.name())),
        };
        if let Err(e) = dp.forward(&bi, &bk, &mut out, &SerialExecutor) {
            return Some(format!("forward failed [{}]: {e:?}", schedule.name()));
        }
        let (max_err, _) = element_errors(&out.to_simple(), &truth);
        // Scale-aware fp32 bound: inputs are O(0.1)·O(0.2) products summed
        // over ≤ c·∏r terms, and the α ≤ 7 transforms amplify roundoff.
        if max_err >= 5e-3 {
            return Some(format!("[{}] max err {max_err} vs oracle", schedule.name()));
        }
        outputs.push((schedule, out.as_slice().to_vec()));
    }
    for (s, o) in &outputs[1..] {
        if o != &outputs[0].1 {
            return Some(format!(
                "schedule {} diverged bitwise from {}",
                s.name(),
                outputs[0].0.name()
            ));
        }
    }
    None
}

/// Greedy minimal shrink: repeatedly try the structured reductions below
/// and keep any that still satisfies `fails`, until a fixpoint.
fn shrink_case(start: SweepCase, fails: &dyn Fn(&SweepCase) -> bool) -> SweepCase {
    let mut cur = start;
    'outer: for _ in 0..1000 {
        let mut cands: Vec<SweepCase> = Vec::new();
        if cur.batch > 1 {
            cands.push(SweepCase { batch: 1, ..cur.clone() });
        }
        if cur.c > 16 {
            cands.push(SweepCase { c: 16, ..cur.clone() });
        }
        if cur.cp > 16 {
            cands.push(SweepCase { cp: 16, ..cur.clone() });
        }
        if cur.seed != 0 {
            cands.push(SweepCase { seed: 0, ..cur.clone() });
        }
        if cur.groups > 1 {
            cands.push(SweepCase { groups: 1, ..cur.clone() });
            // Half-way step for cases that only fail when grouped at all.
            if cur.groups.is_multiple_of(2) {
                cands.push(SweepCase { groups: cur.groups / 2, ..cur.clone() });
            }
        }
        for d in 0..cur.dims.len() {
            if cur.stride[d] > 1 {
                let mut c = cur.clone();
                c.stride[d] = 1;
                cands.push(c);
            }
            if cur.dilation[d] > 1 {
                let mut c = cur.clone();
                c.dilation[d] = 1;
                cands.push(c);
            }
            if cur.dims[d] > 1 {
                let mut c = cur.clone();
                c.dims[d] -= 1;
                cands.push(c);
            }
            if cur.pad[d] > 0 {
                let mut c = cur.clone();
                c.pad[d] -= 1;
                cands.push(c);
            }
            if cur.kd[d] > 1 {
                let mut c = cur.clone();
                c.kd[d] -= 1;
                cands.push(c);
            }
            if cur.m[d] > 1 {
                let mut c = cur.clone();
                c.m[d] -= 1;
                cands.push(c);
            }
        }
        for cand in cands {
            if cand.valid() && fails(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    cur
}

#[test]
fn differential_schedule_sweep() {
    let seed = std::env::var("WINO_SWEEP_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(SWEEP_SEED);
    let mut rng = Rng::seed_from_u64(seed);
    let mut cases = 0usize;
    let mut drawn = 0usize;
    while cases < SWEEP_CASES {
        drawn += 1;
        assert!(drawn < SWEEP_CASES * 20, "case generator rejects too much");
        let case = draw_case(&mut rng);
        if !case.valid() {
            continue;
        }
        cases += 1;
        if let Some(err) = sweep_failure(&case) {
            let minimal = shrink_case(case.clone(), &|c| sweep_failure(c).is_some());
            let min_err = sweep_failure(&minimal).unwrap_or_default();
            panic!(
                "differential sweep failed (seed {seed:#x}, case {cases}/{SWEEP_CASES})\n\
                 original: {case:?}\n  -> {err}\n\
                 minimal:  {minimal:?}\n  -> {min_err}"
            );
        }
    }
}

#[test]
fn sweep_shrinker_finds_a_minimal_case() {
    // Self-test on a synthetic predicate: "fails" iff dims[0] ≥ 5 and
    // c ≥ 32. The shrinker must land exactly on the boundary.
    let start = SweepCase {
        batch: 2,
        c: 32,
        cp: 32,
        dims: vec![9, 7],
        kd: vec![3, 3],
        m: vec![2, 2],
        pad: vec![1, 1],
        stride: vec![2, 2],
        dilation: vec![2, 2],
        groups: 2,
        seed: 42,
    };
    let fails = |c: &SweepCase| c.dims[0] >= 5 && c.c >= 32;
    assert!(fails(&start));
    let min = shrink_case(start, &fails);
    assert_eq!(min.c, 32, "c cannot shrink below the failure threshold");
    assert_eq!(min.dims[0], 5, "dims[0] must shrink to the boundary");
    assert_eq!(min.batch, 1);
    assert_eq!(min.cp, 16);
    assert_eq!(min.seed, 0);
    assert_eq!(min.dims[1], 1);
    assert_eq!(min.kd, vec![1, 1]);
    assert_eq!(min.m, vec![1, 1]);
    assert_eq!(min.pad, vec![0, 0]);
    // The geometry fields shrink back to the identity too.
    assert_eq!(min.stride, vec![1, 1]);
    assert_eq!(min.dilation, vec![1, 1]);
    assert_eq!(min.groups, 1);
}

#[test]
fn sweep_case_validity_covers_the_geometry_lattice() {
    // The generator's rejection rules, pinned: dilation pushing the
    // effective kernel past the padded extent is invalid; stride never
    // is; group counts must divide both channel counts.
    let base = SweepCase {
        batch: 1,
        c: 32,
        cp: 32,
        dims: vec![4, 4],
        kd: vec![3, 3],
        m: vec![2, 2],
        pad: vec![0, 0],
        stride: vec![1, 1],
        dilation: vec![1, 1],
        groups: 1,
        seed: 0,
    };
    assert!(base.valid());
    assert!(!SweepCase { dilation: vec![2, 2], ..base.clone() }.valid(), "r_eff 5 > 4");
    assert!(SweepCase { dilation: vec![2, 2], pad: vec![1, 1], ..base.clone() }.valid());
    assert!(SweepCase { stride: vec![5, 5], ..base.clone() }.valid(), "stride can exceed extent");
    assert!(!SweepCase { groups: 3, ..base.clone() }.valid());
    assert!(!SweepCase { cp: 16, groups: 32, ..base.clone() }.valid(), "G must divide C'");
    assert!(SweepCase { groups: 32, ..base }.valid());
}
