//! Property-style tests on the core invariants, driven by the seeded
//! [`winograd_nd_repro::rng`] generator (this workspace builds without
//! registry access, so `proptest` is not available):
//!
//! * Winograd convolution ≈ extended-precision direct convolution for
//!   *arbitrary* layer shapes, kernel sizes, tile sizes and paddings;
//! * the static grid partitioner covers every task exactly once for
//!   arbitrary grids and thread counts;
//! * the Cook–Toom identity holds exactly over the rationals for random
//!   inputs;
//! * blocked-layout conversions round-trip.
//!
//! Each test draws a fixed number of random cases from a fixed seed, so
//! failures are reproducible; the offending case's parameters are in the
//! assertion message.

use winograd_nd_repro::baseline::{direct_f64, element_errors};
use winograd_nd_repro::conv::convolve_simple;
use winograd_nd_repro::rng::Rng;
use winograd_nd_repro::sched::GridPartition;
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};
use winograd_nd_repro::transforms::{direct_correlation, Rational, Transform1D};

fn arb_rational(rng: &mut Rng) -> Rational {
    let n = rng.range_usize(0, 40) as i128 - 20;
    let d = rng.range_usize(1, 6) as i128;
    Rational::new(n, d)
}

#[test]
fn winograd_matches_reference_2d() {
    let mut rng = Rng::seed_from_u64(0x2d2d);
    let mut cases = 0;
    while cases < 24 {
        let batch = rng.range_usize(1, 2);
        let c = rng.range_usize(1, 2) * 16;
        let cp = rng.range_usize(1, 2) * 16;
        let (h, w) = (rng.range_usize(6, 15), rng.range_usize(6, 15));
        let (rh, rw) = (rng.range_usize(1, 4), rng.range_usize(1, 4));
        let (mh, mw) = (rng.range_usize(1, 4), rng.range_usize(1, 4));
        let (ph, pw) = (rng.range_usize(0, 1), rng.range_usize(0, 1));
        let seed = rng.range_usize(0, 999);
        if h + 2 * ph < rh || w + 2 * pw < rw {
            continue;
        }
        cases += 1;
        let img = SimpleImage::from_fn(batch, c, &[h, w], |b, ch, xy| {
            let u = (b * 131 + ch * 17 + xy[0] * 7 + xy[1] * 3 + seed) % 211;
            u as f32 / 211.0 * 0.2 - 0.1
        });
        let ker = SimpleKernels::from_fn(cp, c, &[rh, rw], |co, ci, xy| {
            let u = (co * 19 + ci * 5 + xy[0] * 3 + xy[1] + seed) % 97;
            u as f32 / 97.0 * 0.4 - 0.2
        });
        let got = convolve_simple(&img, &ker, &[ph, pw], &[mh, mw]).unwrap();
        let want = direct_f64(&img, &ker, &[ph, pw]);
        let (max_err, _) = element_errors(&got, &want);
        // Scale-aware bound: values are O(1) sums of ≤ c·r² terms of O(0.02).
        assert!(max_err < 2e-3, "max err {max_err} for F(({mh},{mw}),({rh},{rw})) C={c}");
    }
}

#[test]
fn winograd_matches_reference_3d() {
    let mut rng = Rng::seed_from_u64(0x3d3d);
    for _ in 0..12 {
        let d = rng.range_usize(4, 7);
        let h = rng.range_usize(4, 8);
        let m = rng.range_usize(1, 2);
        let pad = rng.range_usize(0, 1);
        let seed = rng.range_usize(0, 99);
        if d + 2 * pad < 3 || h + 2 * pad < 3 {
            continue;
        }
        let img = SimpleImage::from_fn(1, 16, &[d, h, h], |_, ch, xyz| {
            ((ch * 3 + xyz[0] * 5 + xyz[1] * 2 + xyz[2] + seed) % 37) as f32 * 0.005
        });
        let ker = SimpleKernels::from_fn(16, 16, &[3, 3, 3], |co, ci, xyz| {
            ((co + ci * 2 + xyz[0] + xyz[1] + xyz[2] + seed) % 23) as f32 * 0.02 - 0.2
        });
        let got = convolve_simple(&img, &ker, &[pad, pad, pad], &[m, m, m]).unwrap();
        let want = direct_f64(&img, &ker, &[pad, pad, pad]);
        let (max_err, _) = element_errors(&got, &want);
        assert!(max_err < 1e-3, "max err {max_err} for m={m} pad={pad}");
    }
}

#[test]
fn grid_partition_exactly_covers() {
    let mut rng = Rng::seed_from_u64(0x941d);
    for _ in 0..200 {
        let rank = rng.range_usize(1, 4);
        let dims: Vec<usize> = (0..rank).map(|_| rng.range_usize(1, 8)).collect();
        let threads = rng.range_usize(1, 16);
        let p = GridPartition::new(&dims, threads);
        assert_eq!(p.boxes.len(), threads);
        let total: usize = dims.iter().product();
        let mut seen = vec![0u32; total];
        for b in &p.boxes {
            b.for_each_flat(&dims, |i| seen[i] += 1);
        }
        assert!(seen.iter().all(|&s| s == 1), "dims {dims:?} threads {threads}");
    }
}

#[test]
fn cook_toom_identity_is_exact() {
    let mut rng = Rng::seed_from_u64(0xc007);
    for _ in 0..48 {
        let m = rng.range_usize(1, 6);
        let r = rng.range_usize(1, 5);
        let t = Transform1D::generate(m, r);
        let d: Vec<Rational> = (0..t.alpha).map(|_| arb_rational(&mut rng)).collect();
        let g: Vec<Rational> = (0..r).map(|_| arb_rational(&mut rng)).collect();
        let got = t.apply_exact(&d, &g);
        let want = direct_correlation(&d, &g, m);
        assert_eq!(got, want, "F({m},{r})");
    }
}

#[test]
fn blocked_image_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xb10c);
    for _ in 0..50 {
        let batch = rng.range_usize(1, 2);
        let c = rng.range_usize(1, 3) * 16;
        let rank = rng.range_usize(1, 3);
        let dims: Vec<usize> = (0..rank).map(|_| rng.range_usize(1, 6)).collect();
        let seed = rng.range_usize(0, 999);
        let img = SimpleImage::from_fn(batch, c, &dims, |b, ch, xy| {
            (b * 1009 + ch * 31 + xy.iter().sum::<usize>() + seed) as f32 * 0.01
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        assert_eq!(blocked.to_simple(), img, "dims {dims:?} C={c}");
    }
}

#[test]
fn blocked_kernel_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xb10d);
    for _ in 0..50 {
        let cin = rng.range_usize(1, 19);
        let cp = rng.range_usize(1, 2) * 16;
        let rank = rng.range_usize(1, 3);
        let kd: Vec<usize> = (0..rank).map(|_| rng.range_usize(1, 4)).collect();
        let k = SimpleKernels::from_fn(cp, cin, &kd, |co, ci, xy| {
            (co * 101 + ci * 13 + xy.iter().sum::<usize>()) as f32 * 0.1
        });
        let blocked = BlockedKernels::from_simple(&k).unwrap();
        assert_eq!(blocked.to_simple(), k, "kd {kd:?} cin={cin}");
    }
}
