//! Property-based tests (proptest) on the core invariants:
//!
//! * Winograd convolution ≈ extended-precision direct convolution for
//!   *arbitrary* layer shapes, kernel sizes, tile sizes and paddings;
//! * the static grid partitioner covers every task exactly once for
//!   arbitrary grids and thread counts;
//! * the Cook–Toom identity holds exactly over the rationals for random
//!   inputs;
//! * blocked-layout conversions round-trip.

use proptest::prelude::*;
use winograd_nd_repro::baseline::{direct_f64, element_errors};
use winograd_nd_repro::conv::convolve_simple;
use winograd_nd_repro::sched::GridPartition;
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};
use winograd_nd_repro::transforms::{direct_correlation, Rational, Transform1D};

fn arb_rational() -> impl Strategy<Value = Rational> {
    (-20i128..=20, 1i128..=6).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn winograd_matches_reference_2d(
        batch in 1usize..3,
        cg in 1usize..3,          // channels = 16·cg
        og in 1usize..3,
        h in 6usize..16,
        w in 6usize..16,
        rh in 1usize..5,
        rw in 1usize..5,
        mh in 1usize..5,
        mw in 1usize..5,
        ph in 0usize..2,
        pw in 0usize..2,
        seed in 0u32..1000,
    ) {
        let (c, cp) = (cg * 16, og * 16);
        prop_assume!(h + 2 * ph >= rh && w + 2 * pw >= rw);
        let img = SimpleImage::from_fn(batch, c, &[h, w], |b, ch, xy| {
            let u = (b * 131 + ch * 17 + xy[0] * 7 + xy[1] * 3 + seed as usize) % 211;
            u as f32 / 211.0 * 0.2 - 0.1
        });
        let ker = SimpleKernels::from_fn(cp, c, &[rh, rw], |co, ci, xy| {
            let u = (co * 19 + ci * 5 + xy[0] * 3 + xy[1] + seed as usize) % 97;
            u as f32 / 97.0 * 0.4 - 0.2
        });
        let got = convolve_simple(&img, &ker, &[ph, pw], &[mh, mw]).unwrap();
        let want = direct_f64(&img, &ker, &[ph, pw]);
        let (max_err, _) = element_errors(&got, &want);
        // Scale-aware bound: values are O(1) sums of ≤ c·r² terms of O(0.02).
        prop_assert!(max_err < 2e-3, "max err {max_err} for F(({mh},{mw}),({rh},{rw})) C={c}");
    }

    #[test]
    fn winograd_matches_reference_3d(
        d in 4usize..8,
        h in 4usize..9,
        m in 1usize..3,
        pad in 0usize..2,
        seed in 0u32..100,
    ) {
        let img = SimpleImage::from_fn(1, 16, &[d, h, h], |_, ch, xyz| {
            ((ch * 3 + xyz[0] * 5 + xyz[1] * 2 + xyz[2] + seed as usize) % 37) as f32 * 0.005
        });
        let ker = SimpleKernels::from_fn(16, 16, &[3, 3, 3], |co, ci, xyz| {
            ((co + ci * 2 + xyz[0] + xyz[1] + xyz[2] + seed as usize) % 23) as f32 * 0.02 - 0.2
        });
        prop_assume!(d + 2 * pad >= 3 && h + 2 * pad >= 3);
        let got = convolve_simple(&img, &ker, &[pad, pad, pad], &[m, m, m]).unwrap();
        let want = direct_f64(&img, &ker, &[pad, pad, pad]);
        let (max_err, _) = element_errors(&got, &want);
        prop_assert!(max_err < 1e-3, "max err {max_err} for m={m} pad={pad}");
    }

    #[test]
    fn grid_partition_exactly_covers(
        dims in proptest::collection::vec(1usize..9, 1..5),
        threads in 1usize..17,
    ) {
        let p = GridPartition::new(&dims, threads);
        prop_assert_eq!(p.boxes.len(), threads);
        let total: usize = dims.iter().product();
        let mut seen = vec![0u32; total];
        for b in &p.boxes {
            b.for_each_flat(&dims, |i| seen[i] += 1);
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "dims {:?} threads {}", dims, threads);
    }

    #[test]
    fn cook_toom_identity_is_exact(
        m in 1usize..7,
        r in 1usize..6,
        d_raw in proptest::collection::vec(arb_rational(), 12),
        g_raw in proptest::collection::vec(arb_rational(), 6),
    ) {
        let t = Transform1D::generate(m, r);
        let d = &d_raw[..t.alpha];
        let g = &g_raw[..r];
        let got = t.apply_exact(d, g);
        let want = direct_correlation(d, g, m);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn blocked_image_roundtrip(
        batch in 1usize..3,
        cg in 1usize..4,
        dims in proptest::collection::vec(1usize..7, 1..4),
        seed in 0u32..1000,
    ) {
        let img = SimpleImage::from_fn(batch, cg * 16, &dims, |b, c, xy| {
            (b * 1009 + c * 31 + xy.iter().sum::<usize>() + seed as usize) as f32 * 0.01
        });
        let blocked = BlockedImage::from_simple(&img).unwrap();
        prop_assert_eq!(blocked.to_simple(), img);
    }

    #[test]
    fn blocked_kernel_roundtrip(
        cin in 1usize..20,
        og in 1usize..3,
        kd in proptest::collection::vec(1usize..5, 1..4),
    ) {
        let k = SimpleKernels::from_fn(og * 16, cin, &kd, |co, ci, xy| {
            (co * 101 + ci * 13 + xy.iter().sum::<usize>()) as f32 * 0.1
        });
        let blocked = BlockedKernels::from_simple(&k).unwrap();
        prop_assert_eq!(blocked.to_simple(), k);
    }
}
