//! Integration of the parallel substrate and the JIT with the full
//! pipeline: every executor and every ablation toggle must produce
//! bit-identical outputs, and JIT-generated GEMM kernels must agree with
//! the monomorphised engine on convolution-shaped problems.

use winograd_nd_repro::conv::{ConvOptions, Scratch, WinogradLayer};
use winograd_nd_repro::gemm;
use winograd_nd_repro::jit::{jit_batched_gemm, JitKernelPair};
use winograd_nd_repro::sched::{DynamicExecutor, Executor, SerialExecutor, StaticExecutor};
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, BlockedMatrices, ConvShape, SimpleImage, SimpleKernels};

fn setup(shape: &ConvShape) -> (BlockedImage, BlockedKernels) {
    let img = SimpleImage::from_fn(shape.batch, shape.in_channels, &shape.image_dims, |b, c, xy| {
        ((b * 7 + c * 3 + xy.iter().sum::<usize>()) % 23) as f32 * 0.04 - 0.4
    });
    let ker = SimpleKernels::from_fn(
        shape.out_channels,
        shape.in_channels,
        &shape.kernel_dims,
        |co, ci, xy| ((co + ci * 5 + xy.iter().sum::<usize>() * 2) % 19) as f32 * 0.06 - 0.5,
    );
    (BlockedImage::from_simple(&img).unwrap(), BlockedKernels::from_simple(&ker).unwrap())
}

#[test]
fn all_executors_and_thread_counts_agree() {
    let shape = ConvShape::new(2, 32, 32, &[13, 13], &[3, 3], &[1, 1]).unwrap();
    let plan = WinogradLayer::new(shape.clone(), &[4, 4], ConvOptions::default()).unwrap();
    let (input, kernels) = setup(&shape);

    let run = |exec: &dyn Executor| {
        let mut scratch = Scratch::new(&plan, exec.threads());
        let mut out = plan.new_output().unwrap();
        plan.forward(&input, &kernels, &mut out, &mut scratch, exec).unwrap();
        out.as_slice().to_vec()
    };
    let reference = run(&SerialExecutor);
    for threads in [2, 3, 5, 8] {
        let exec = StaticExecutor::new(threads);
        assert_eq!(run(&exec), reference, "static executor with {threads} threads");
    }
    assert_eq!(run(&DynamicExecutor::new(4)), reference, "dynamic executor");
}

#[test]
fn ablation_toggles_preserve_results_in_parallel() {
    let shape = ConvShape::new(1, 32, 48, &[12, 12], &[3, 3], &[1, 1]).unwrap();
    let (input, kernels) = setup(&shape);
    let exec = StaticExecutor::new(4);
    let mut outputs = Vec::new();
    for streaming in [true, false] {
        for schedule in wino_conv::Schedule::ALL {
            let opts =
                ConvOptions { streaming_stores: streaming, schedule, ..Default::default() };
            let plan = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
            let mut scratch = Scratch::new(&plan, exec.threads());
            let mut out = plan.new_output().unwrap();
            plan.forward(&input, &kernels, &mut out, &mut scratch, &exec).unwrap();
            outputs.push(out.as_slice().to_vec());
        }
    }
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn explicit_blockings_all_compute_the_same_conv() {
    // Sweep legal (n_blk, C_blk, C'_blk) for one layer; the result must
    // never depend on the blocking.
    let shape = ConvShape::new(1, 64, 64, &[10, 10], &[3, 3], &[1, 1]).unwrap();
    let (input, kernels) = setup(&shape);
    let mut reference: Option<Vec<f32>> = None;
    for n_blk in [1, 5, 8, 17, 30] {
        for (cb, cpb) in [(16, 16), (32, 64), (64, 32), (64, 64)] {
            let opts = ConvOptions {
                block: Some(gemm::BlockShape { n_blk, c_blk: cb, cp_blk: cpb }),
                ..Default::default()
            };
            let plan = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
            let mut scratch = Scratch::new(&plan, 1);
            let mut out = plan.new_output().unwrap();
            plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
            match &reference {
                None => reference = Some(out.as_slice().to_vec()),
                Some(r) => assert_eq!(
                    out.as_slice(),
                    &r[..],
                    "blocking n_blk={n_blk} cb={cb} cpb={cpb} changed the result"
                ),
            }
        }
    }
}

#[test]
fn jit_gemm_agrees_with_mono_gemm_on_conv_shaped_problems() {
    if !winograd_nd_repro::simd::cpu_has_avx512f() {
        eprintln!("skipping: no AVX-512F");
        return;
    }
    // The stage-2 problems of a few real plans.
    for (t, rows, c, cp, nb, cb, cpb) in
        [(36usize, 98usize, 64usize, 64usize, 8usize, 64usize, 64usize), (16, 50, 32, 48, 5, 32, 16), (216, 24, 16, 16, 6, 16, 16)]
    {
        let mut u = BlockedMatrices::new(t, rows, c, nb, cb);
        let mut v = BlockedMatrices::new(t, c, cp, cb, cpb);
        for (i, f) in u.as_mut_slice().iter_mut().enumerate() {
            *f = ((i * 29) % 31) as f32 * 0.05 - 0.7;
        }
        for (i, f) in v.as_mut_slice().iter_mut().enumerate() {
            *f = ((i * 37) % 41) as f32 * 0.04 - 0.8;
        }
        let mut x_jit = BlockedMatrices::new(t, rows, cp, nb, cpb);
        let mut x_mono = BlockedMatrices::new(t, rows, cp, nb, cpb);
        let pair = JitKernelPair::compile(nb, cb, cpb).unwrap();
        jit_batched_gemm(&u, &v, &mut x_jit, &pair);
        gemm::batched_gemm(&u, &v, &mut x_mono, );
        for i in 0..x_jit.as_slice().len() {
            let (a, b) = (x_jit.as_slice()[i], x_mono.as_slice()[i]);
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                "t={t} rows={rows} elem {i}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn scratch_is_shareable_across_same_shaped_layers() {
    // The paper's aux buffer is reused across layers; two different
    // kernel banks through one scratch must give independent results.
    let shape = ConvShape::new(1, 16, 16, &[9, 9], &[3, 3], &[1, 1]).unwrap();
    let plan = WinogradLayer::new(shape.clone(), &[2, 2], ConvOptions::default()).unwrap();
    let (input, k1) = setup(&shape);
    let ker2 = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
        ((co * 11 + ci + xy[0] * 2 + xy[1]) % 7) as f32 * 0.2 - 0.6
    });
    let k2 = BlockedKernels::from_simple(&ker2).unwrap();

    let mut scratch = Scratch::new(&plan, 1);
    let mut o_shared_1 = plan.new_output().unwrap();
    let mut o_shared_2 = plan.new_output().unwrap();
    plan.forward(&input, &k1, &mut o_shared_1, &mut scratch, &SerialExecutor).unwrap();
    plan.forward(&input, &k2, &mut o_shared_2, &mut scratch, &SerialExecutor).unwrap();

    let mut fresh = Scratch::new(&plan, 1);
    let mut o_fresh_2 = plan.new_output().unwrap();
    plan.forward(&input, &k2, &mut o_fresh_2, &mut fresh, &SerialExecutor).unwrap();
    assert_eq!(o_shared_2.as_slice(), o_fresh_2.as_slice());
    assert_ne!(o_shared_1.as_slice(), o_shared_2.as_slice());
}
