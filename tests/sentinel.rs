//! Sentinel determinism and zero-overhead guarantees.
//!
//! The accuracy sentinels (`wino_conv::sentinel`) are only trustworthy
//! evidence if they are *reproducible*: the same seed must check the
//! same output tiles and reach the same verdicts no matter which
//! execution schedule or executor produced the output. And when sampling
//! is disabled they must be provably free — no oracle convolutions, no
//! counter movement — so the default policy costs nothing.
//!
//! Like the differential sweep in `properties.rs`, the seed is pinned
//! but overridable with `WINO_SWEEP_SEED=<u64>` (the CI gate pins its
//! own); determinism must hold for *every* seed, so the override
//! explores the claim rather than weakening it.

use winograd_nd_repro::conv::{
    sample_units, verify_sample, Activation, ConvOptions, FallbackPolicy, LayerSpec, Network,
    Schedule, Scratch, SentinelConfig, WinogradLayer,
};
use winograd_nd_repro::probe::Counter;
use winograd_nd_repro::sched::{Executor, SerialExecutor, StaticExecutor};
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, ConvShape};
use winograd_nd_repro::workloads::{uniform_input, xavier_kernels};

fn sweep_seed() -> u64 {
    std::env::var("WINO_SWEEP_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0xd1ff_2026)
}

fn layer_data(shape: &ConvShape, seed: u64) -> (BlockedImage, BlockedKernels) {
    let img = uniform_input(shape, seed ^ 0x11);
    let ker = xavier_kernels(shape, seed ^ 0x22);
    (BlockedImage::from_simple(&img).unwrap(), BlockedKernels::from_simple(&ker).unwrap())
}

/// Forward one plan under the given executor and return the output.
fn forward(
    plan: &WinogradLayer,
    input: &BlockedImage,
    kernels: &BlockedKernels,
    exec: &dyn Executor,
) -> BlockedImage {
    let mut out = plan.new_output().unwrap();
    let mut scratch = Scratch::new(plan, exec.threads());
    plan.forward(input, kernels, &mut out, &mut scratch, exec).unwrap();
    out
}

/// Same seed ⇒ identical sampled tile set and identical verdicts across
/// every execution schedule and both executor kinds. The sample depends
/// only on (seed, layer index, geometry) — never on how the forward was
/// parallelised.
#[test]
fn sentinel_sample_and_verdicts_match_across_schedules_and_executors() {
    let seed = sweep_seed();
    let cfg = SentinelConfig::sampled(6, seed);
    let shape = ConvShape::new(2, 16, 16, &[12, 12], &[3, 3], &[1, 1]).unwrap();
    let (input, kernels) = layer_data(&shape, seed);

    let mut want_units: Option<Vec<usize>> = None;
    let mut want_checked: Option<usize> = None;
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..Default::default() };
        let plan = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
        for threads in [1usize, 4] {
            let exec: Box<dyn Executor> = if threads == 1 {
                Box::new(SerialExecutor)
            } else {
                Box::new(StaticExecutor::new(threads))
            };
            let out = forward(&plan, &input, &kernels, exec.as_ref());

            let units = sample_units(&plan, &cfg, 0);
            match &want_units {
                None => want_units = Some(units),
                Some(w) => assert_eq!(
                    &units, w,
                    "{}/{threads}t: sampled unit set must not depend on the executor",
                    schedule.name()
                ),
            }
            let checked = verify_sample(&plan, &input, &kernels, &out, &cfg, 0)
                .unwrap_or_else(|e| {
                    panic!("{}/{threads}t: clean forward tripped: {e}", schedule.name())
                });
            match want_checked {
                None => want_checked = Some(checked),
                Some(w) => assert_eq!(checked, w, "{}/{threads}t", schedule.name()),
            }
        }
    }
    assert_eq!(want_checked, Some(6));
}

/// A corruption trips the *same sampled unit* under every schedule and
/// executor — the verdict, like the sample, is a function of the seed
/// and the data, not of the execution strategy.
#[test]
fn corruption_trips_the_same_unit_under_every_schedule() {
    let seed = sweep_seed();
    let shape = ConvShape::new(1, 16, 16, &[12, 12], &[3, 3], &[1, 1]).unwrap();
    let (input, kernels) = layer_data(&shape, seed);

    let mut want_unit: Option<usize> = None;
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..Default::default() };
        let plan = WinogradLayer::new(shape.clone(), &[4, 4], opts).unwrap();
        // Sample everything so the verdict is exact, not probabilistic.
        let n = (plan.shape.batch * plan.grid.total_tiles()) as u32;
        let cfg = SentinelConfig::sampled(n, seed);
        for threads in [1usize, 4] {
            let exec: Box<dyn Executor> = if threads == 1 {
                Box::new(SerialExecutor)
            } else {
                Box::new(StaticExecutor::new(threads))
            };
            let mut out = forward(&plan, &input, &kernels, exec.as_ref());
            for v in out.as_mut_slice().iter_mut() {
                *v += 64.0; // finite, invisible to check_finite
            }
            let trip = verify_sample(&plan, &input, &kernels, &out, &cfg, 0)
                .expect_err("uniform corruption must trip");
            assert!(trip.rel_err > trip.bound);
            match want_unit {
                None => want_unit = Some(trip.unit),
                Some(w) => assert_eq!(
                    trip.unit,
                    w,
                    "{}/{threads}t: the first tripping unit must be deterministic",
                    schedule.name()
                ),
            }
        }
    }
}

/// `samples == 0` is provably free: the sampler builds nothing, the
/// verifier runs no oracle, and a full `Network` forward under the
/// default policy moves no sentinel counter. (The counters are compiled
/// unconditionally precisely so this claim is testable.)
#[test]
fn disabled_sentinel_does_no_work_at_all() {
    let off = SentinelConfig::off();
    let shape = ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[1, 1]).unwrap();
    let (input, kernels) = layer_data(&shape, 7);
    let plan = WinogradLayer::new(shape, &[2, 2], ConvOptions::default()).unwrap();
    let out = forward(&plan, &input, &kernels, &SerialExecutor);

    assert!(sample_units(&plan, &off, 0).is_empty());
    assert_eq!(verify_sample(&plan, &input, &kernels, &out, &off, 0), Ok(0));

    // End-to-end: the default policy (sentinel off) must leave every
    // sentinel counter untouched across a whole layer execution.
    let checked_before = Counter::SentinelTilesChecked.get();
    let trips_before = Counter::SentinelTrips.get();
    let spec = LayerSpec {
        out_channels: 16,
        kernel: vec![3, 3],
        padding: vec![1, 1],
        m: vec![2, 2],
        activation: Activation::None,
    };
    let policy = FallbackPolicy::default();
    let mut net =
        Network::with_policy(1, 16, &[8, 8], &[spec], ConvOptions::default(), 1, &policy)
            .unwrap();
    let (out, report) = net.run_layer(0, &input, &kernels, &SerialExecutor, &policy).unwrap();
    assert!(report.fallback.is_none());
    std::hint::black_box(out.as_slice().first());
    assert_eq!(
        Counter::SentinelTilesChecked.get(),
        checked_before,
        "sample rate 0 must check zero tiles"
    );
    assert_eq!(Counter::SentinelTrips.get(), trips_before);
}
