//! The dispatch matrix, exhaustively: every (rank, stride, dilation,
//! groups) combination on a small-shape grid must *route* somewhere
//! valid — direct Winograd, polyphase Winograd, grouped Winograd, or the
//! designed im2col fallback with a typed [`FallbackReason`] — and the
//! chosen route's output must match the f64 direct oracle. No panics, no
//! `PlanError` rejections for representable layers; the only hard errors
//! are genuinely unrepresentable geometries (groups not dividing the
//! channel counts), and those are *typed*.
//!
//! This is the closing test of the conv scenario matrix: the routing
//! table below is the specification, and the grid proves the dispatcher
//! implements it.

use winograd_nd_repro::baseline::{direct_f64_geo, element_errors};
use winograd_nd_repro::conv::{
    plan_dispatch, Activation, ConvOptions, FallbackPolicy, LayerBackend, LayerSpec, Network,
    PlanError, Route, WinogradLayer,
};
use winograd_nd_repro::sched::SerialExecutor;
use winograd_nd_repro::tensor::{
    BlockedImage, BlockedKernels, ConvShape, ShapeError, SimpleImage, SimpleKernels,
};

const C: usize = 32;
const K: usize = 32;

/// What the dispatcher is specified to do with one scenario.
#[derive(Debug, PartialEq, Clone, Copy)]
enum Expect {
    Direct,
    Polyphase,
    Grouped,
    /// Designed im2col route with this provenance code.
    Im2col(&'static str),
}

/// The routing table: precedence is dilation > group width > stride >
/// grouping. Every arm of the real dispatcher maps to exactly one row.
fn expected(stride: usize, dilation: usize, groups: usize) -> Expect {
    if dilation > 1 {
        Expect::Im2col("dilated")
    } else if C / groups < 16 {
        Expect::Im2col("group-narrow")
    } else if stride > 1 {
        Expect::Polyphase
    } else if groups > 1 {
        Expect::Grouped
    } else {
        Expect::Direct
    }
}

fn scenario_data(rank: usize, groups: usize, seed: usize) -> (SimpleImage, SimpleKernels) {
    let dims = vec![9; rank];
    let img = SimpleImage::from_fn(1, C, &dims, |_, ch, xy| {
        let mut h = ch.wrapping_mul(17).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(31).wrapping_add(x);
        }
        (h % 211) as f32 / 211.0 * 0.2 - 0.1
    });
    let ker = SimpleKernels::from_fn(K, C / groups, &vec![3; rank], |co, ci, xy| {
        let mut h = co.wrapping_mul(19).wrapping_add(ci.wrapping_mul(5)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(13).wrapping_add(x);
        }
        (h % 97) as f32 / 97.0 * 0.4 - 0.2
    });
    (img, ker)
}

#[test]
fn every_scenario_routes_and_matches_the_oracle() {
    let mut combos = 0;
    for rank in [1usize, 2] {
        for stride in [1usize, 2] {
            for dilation in [1usize, 2] {
                for groups in [1usize, 2, C] {
                    combos += 1;
                    let want = expected(stride, dilation, groups);
                    let label =
                        format!("rank={rank} s={stride} d={dilation} g={groups} ({want:?})");

                    let (img, ker) = scenario_data(rank, groups, combos);
                    let shape = ConvShape::new(
                        1,
                        C,
                        K,
                        &vec![9; rank],
                        &vec![3; rank],
                        &vec![dilation; rank], // "same"-ish: pad = dilation keeps r_eff covered
                    )
                    .unwrap();
                    let opts = ConvOptions::default()
                        .with_stride(&vec![stride; rank])
                        .with_dilation(&vec![dilation; rank])
                        .with_groups(groups);
                    let (dp, fb) =
                        plan_dispatch(&shape, &vec![2; rank], opts, &FallbackPolicy::default())
                            .unwrap_or_else(|e| panic!("{label}: rejected: {e:?}"));

                    // Route and provenance match the table.
                    match want {
                        Expect::Direct => {
                            assert!(matches!(dp.route, Route::Direct(_)), "{label}");
                            assert!(fb.is_none(), "{label}: {fb:?}");
                        }
                        Expect::Polyphase => {
                            assert!(matches!(dp.route, Route::Polyphase { .. }), "{label}");
                            assert!(fb.is_none(), "{label}: {fb:?}");
                            assert_eq!(dp.backend(), LayerBackend::WinogradPoly, "{label}");
                        }
                        Expect::Grouped => {
                            assert!(matches!(dp.route, Route::Grouped { .. }), "{label}");
                            assert!(fb.is_none(), "{label}: {fb:?}");
                            assert_eq!(dp.backend(), LayerBackend::WinogradGrouped, "{label}");
                        }
                        Expect::Im2col(code) => {
                            assert!(matches!(dp.route, Route::Im2col), "{label}");
                            assert_eq!(dp.backend(), LayerBackend::Im2col, "{label}");
                            let reason = fb.as_ref().unwrap_or_else(|| {
                                panic!("{label}: designed fallback must carry a reason")
                            });
                            assert_eq!(reason.code(), code, "{label}: {reason:?}");
                        }
                    }
                    assert_eq!(dp.kernel_in_channels(), C / groups, "{label}");

                    // Execute the route and judge it against the oracle.
                    let geo = opts.geometry(rank);
                    let truth = direct_f64_geo(&img, &ker, &shape.padding, &geo);
                    let bi = BlockedImage::from_simple(&img).unwrap();
                    let bk = BlockedKernels::from_simple(&ker).unwrap();
                    let mut out = dp.new_output().unwrap();
                    dp.forward(&bi, &bk, &mut out, &SerialExecutor)
                        .unwrap_or_else(|e| panic!("{label}: forward failed: {e:?}"));
                    assert_eq!(out.dims, truth.dims, "{label}");
                    let (max_err, _) = element_errors(&out.to_simple(), &truth);
                    // Per-path tolerance: im2col accumulates in plain f32
                    // order (tight); Winograd transforms amplify roundoff.
                    let tol = match want {
                        Expect::Im2col(_) => 1e-4,
                        _ => 5e-3,
                    };
                    assert!(max_err < tol, "{label}: max err {max_err}");
                }
            }
        }
    }
    assert_eq!(combos, 24, "the grid must stay exhaustive");
}

#[test]
fn network_reports_carry_the_same_provenance() {
    // The same matrix once more, through `Network` — the plan-time
    // (backend, reason) pair must surface verbatim in the per-layer
    // `ExecutionReport`, so a serving stack can account for every layer.
    for stride in [1usize, 2] {
        for dilation in [1usize, 2] {
            for groups in [1usize, 2, C] {
                let want = expected(stride, dilation, groups);
                let label = format!("s={stride} d={dilation} g={groups} ({want:?})");
                let specs = vec![LayerSpec {
                    out_channels: K,
                    kernel: vec![3, 3],
                    padding: vec![dilation, dilation],
                    m: vec![2, 2],
                    activation: Activation::None,
                }];
                let opts = ConvOptions::default()
                    .with_stride(&[stride, stride])
                    .with_dilation(&[dilation, dilation])
                    .with_groups(groups);
                let mut net = Network::with_policy(
                    1,
                    C,
                    &[9, 9],
                    &specs,
                    opts,
                    1,
                    &FallbackPolicy::default(),
                )
                .unwrap_or_else(|e| panic!("{label}: network rejected: {e:?}"));

                let (img, ker) = scenario_data(2, groups, 7);
                let input = BlockedImage::from_simple(&img).unwrap();
                let kernels = vec![BlockedKernels::from_simple(&ker).unwrap()];
                let (out, reports) = net
                    .run_net(&input, &kernels, &SerialExecutor, &FallbackPolicy::default())
                    .unwrap_or_else(|e| panic!("{label}: run failed: {e:?}"));
                let report = &reports[0];
                match want {
                    Expect::Direct => {
                        assert!(
                            matches!(
                                report.backend,
                                LayerBackend::WinogradJit | LayerBackend::WinogradMono
                            ),
                            "{label}: {:?}",
                            report.backend
                        );
                        assert!(report.fallback.is_none(), "{label}");
                    }
                    Expect::Polyphase => {
                        assert_eq!(report.backend, LayerBackend::WinogradPoly, "{label}");
                        assert!(report.fallback.is_none(), "{label}");
                    }
                    Expect::Grouped => {
                        assert_eq!(report.backend, LayerBackend::WinogradGrouped, "{label}");
                        assert!(report.fallback.is_none(), "{label}");
                    }
                    Expect::Im2col(code) => {
                        assert_eq!(report.backend, LayerBackend::Im2col, "{label}");
                        let r = report.fallback.as_ref().unwrap();
                        assert_eq!(r.code(), code, "{label}");
                    }
                }
                // And the output is still the right convolution.
                let truth = direct_f64_geo(&img, &ker, &[dilation, dilation], &opts.geometry(2));
                let (max_err, _) = element_errors(&out.to_simple(), &truth);
                assert!(max_err < 5e-3, "{label}: max err {max_err}");
            }
        }
    }
}

#[test]
fn unrepresentable_groups_fail_typed_everywhere() {
    // groups = 3 does not divide C = 32: a hard, *typed* error from the
    // dispatcher and from `Network` alike — never a panic, never a
    // silent fallback (no backend can execute an ill-formed layer).
    let shape = ConvShape::new(1, C, K, &[9, 9], &[3, 3], &[1, 1]).unwrap();
    let opts = ConvOptions::default().with_groups(3);
    assert!(matches!(
        plan_dispatch(&shape, &[2, 2], opts, &FallbackPolicy::default()),
        Err(PlanError::Shape(ShapeError::BadGroups { channels: 32, groups: 3 }))
    ));
    let specs = vec![LayerSpec::same(K, 2, 3, 2)];
    assert!(matches!(
        Network::with_policy(1, C, &[9, 9], &specs, opts, 1, &FallbackPolicy::default()),
        Err(PlanError::Shape(ShapeError::BadGroups { .. }))
    ));
}

#[test]
fn monolithic_planner_declines_geometry_with_a_pointer() {
    // The pre-dispatch entry point stays honest: handed a non-identity
    // geometry it refuses with `PlanError::Geometry` (whose message
    // points at the dispatcher) instead of silently computing a stride-1
    // convolution.
    let shape = ConvShape::new(1, C, K, &[9, 9], &[3, 3], &[1, 1]).unwrap();
    for opts in [
        ConvOptions::default().with_stride(&[2, 2]),
        ConvOptions::default().with_dilation(&[2, 2]),
        ConvOptions::default().with_groups(2),
    ] {
        assert!(matches!(
            WinogradLayer::new(shape.clone(), &[2, 2], opts),
            Err(PlanError::Geometry { .. })
        ));
    }
}
