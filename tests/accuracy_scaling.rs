//! Integration tests for the evaluation-side claims: Table 3's error
//! monotonicity, the FLOP accounting used in Fig. 5 reporting, the
//! point-schedule conditioning ablation, and wisdom-guided planning.

use winograd_nd_repro::baseline::{direct_f64, element_errors};
use winograd_nd_repro::conv::{ConvOptions, Scratch, WinogradLayer};
use winograd_nd_repro::sched::SerialExecutor;
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, ConvShape};
use winograd_nd_repro::transforms::PointSchedule;
use winograd_nd_repro::workloads::{
    effective_gflops, full_catalog, scaled_catalog, uniform_input, xavier_kernels,
};

fn winograd_error(shape: &ConvShape, m: &[usize], points: PointSchedule) -> (f64, f64) {
    let img = uniform_input(shape, 99);
    let ker = xavier_kernels(shape, 100);
    let truth = direct_f64(&img, &ker, &shape.padding);
    let opts = ConvOptions { points, ..Default::default() };
    let plan = WinogradLayer::new(shape.clone(), m, opts).unwrap();
    let input = BlockedImage::from_simple(&img).unwrap();
    let kernels = BlockedKernels::from_simple(&ker).unwrap();
    let mut out = plan.new_output().unwrap();
    let mut scratch = Scratch::new(&plan, 1);
    plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
    element_errors(&out.to_simple(), &truth)
}

#[test]
fn table3_error_grows_monotonically_with_tile_size() {
    // The Table 3 law, stated against the a-priori error model instead
    // of sampling luck: for every practical F(m, r) under both point
    // schedules, the *measured* max relative error stays within the
    // exact-conditioning bound (`predicted_bound`, the runtime-sentinel
    // trip threshold), and the *predicted* bounds — which drive
    // budget-based tile selection — are strictly monotone in m.
    for r in [3usize, 5] {
        let pad = r / 2;
        let shape = ConvShape::new(1, 32, 32, &[20, 20], &[r, r], &[pad, pad]).unwrap();
        let img = uniform_input(&shape, 99);
        let ker = xavier_kernels(&shape, 100);
        let truth = direct_f64(&img, &ker, &shape.padding);
        let truth_inf =
            truth.data.iter().fold(0.0f64, |a, &v| a.max((v as f64).abs())).max(1.0);
        for schedule in [PointSchedule::Mixed, PointSchedule::Integer] {
            let mut last_bound = 0.0f64;
            for m in [2usize, 4, 6, 8] {
                let opts = ConvOptions { points: schedule, ..Default::default() };
                let plan = WinogradLayer::new(shape.clone(), &[m, m], opts).unwrap();
                let bound = plan.predicted_bound();

                let input = BlockedImage::from_simple(&img).unwrap();
                let kernels = BlockedKernels::from_simple(&ker).unwrap();
                let mut out = plan.new_output().unwrap();
                let mut scratch = Scratch::new(&plan, 1);
                plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor)
                    .unwrap();
                let (max_err, avg_err) = element_errors(&out.to_simple(), &truth);
                let measured = max_err / truth_inf;

                assert!(
                    measured <= bound,
                    "F({m}²,{r}²) {schedule:?}: measured rel err {measured:.3e} \
                     exceeds a-priori bound {bound:.3e}"
                );
                assert!(
                    bound > last_bound,
                    "F({m}²,{r}²) {schedule:?}: predicted bound must be strictly \
                     monotone in m ({bound:.3e} vs prev {last_bound:.3e})"
                );
                assert!(avg_err < max_err);
                last_bound = bound;
            }
        }
    }
}

#[test]
fn fractional_points_beat_integer_points_for_large_tiles() {
    // The conditioning ablation that reconciles our Table 3 with the
    // paper's: integer-only interpolation points are far worse for m ≥ 6.
    let shape = ConvShape::new(1, 32, 32, &[20, 20], &[3, 3], &[1, 1]).unwrap();
    let (mixed, _) = winograd_error(&shape, &[6, 6], PointSchedule::Mixed);
    let (integer, _) = winograd_error(&shape, &[6, 6], PointSchedule::Integer);
    assert!(
        integer > mixed * 10.0,
        "integer points should be ≥10× worse at F(6²): {integer} vs {mixed}"
    );
}

#[test]
fn f2_is_more_accurate_than_direct_f32() {
    // Table 3's counter-intuitive row: F(2) beats plain f32 direct
    // convolution (fewer roundings on the summation path).
    let shape = ConvShape::new(1, 64, 32, &[16, 16], &[3, 3], &[1, 1]).unwrap();
    let img = uniform_input(&shape, 5);
    let ker = xavier_kernels(&shape, 6);
    let truth = direct_f64(&img, &ker, &shape.padding);

    let (wino_max, _) = winograd_error(&shape, &[2, 2], PointSchedule::Mixed);

    let input = BlockedImage::from_simple(&img).unwrap();
    let kernels = BlockedKernels::from_simple(&ker).unwrap();
    let mut dout = BlockedImage::zeros(1, 32, &shape.out_dims()).unwrap();
    winograd_nd_repro::baseline::direct_conv(
        &input,
        &kernels,
        &shape.padding,
        &mut dout,
        &SerialExecutor,
    )
    .unwrap();
    let (direct_max, _) = element_errors(&dout.to_simple(), &truth);
    assert!(
        wino_max < direct_max,
        "F(2²) should beat direct f32: {wino_max} vs {direct_max}"
    );
}

#[test]
fn catalog_flop_accounting_matches_paper_table2() {
    // Spot-check the direct-FLOP normaliser against hand-computed Table 2
    // values (the basis of every effective-GFLOP/s number we report).
    let cat = full_catalog();
    let vgg12 = &cat.iter().find(|l| l.id() == "VGG 1.2").unwrap().shape;
    // 2 · B·C·C'·H·W·r² = 2·64·64·64·224²·9
    assert_eq!(vgg12.direct_flops(), 2 * 64 * 64 * 64 * 224 * 224 * 9);
    let c2a = &cat.iter().find(|l| l.id() == "C3D C2a").unwrap().shape;
    assert_eq!(
        c2a.direct_flops(),
        2 * 32 * 64 * 128 * (16 * 56 * 56) * 27
    );
    // effective_gflops inverts correctly.
    let g = effective_gflops(vgg12, 1000.0);
    assert!((g - vgg12.direct_flops() as f64 / 1e9).abs() < 1e-6);
}

#[test]
fn every_scaled_layer_plans_and_runs() {
    // Smoke the whole Table 2 catalogue end to end with small tiles.
    for layer in scaled_catalog() {
        let m = vec![2usize; layer.rank()];
        let plan = WinogradLayer::new(layer.shape.clone(), &m, ConvOptions::default())
            .unwrap_or_else(|e| panic!("{}: {e}", layer.id()));
        // Only run the small ones end-to-end (time budget); planning +
        // scratch sizing is the per-layer risk.
        let elems: usize = layer.shape.image_dims.iter().product();
        if elems * layer.shape.batch * layer.shape.in_channels <= 64 * 24 * 24 * 2 {
            let img = uniform_input(&layer.shape, 3);
            let ker = xavier_kernels(&layer.shape, 4);
            let input = BlockedImage::from_simple(&img).unwrap();
            let kernels = BlockedKernels::from_simple(&ker).unwrap();
            let mut out = plan.new_output().unwrap();
            let mut scratch = Scratch::new(&plan, 1);
            plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
            let truth = direct_f64(&img, &ker, &layer.shape.padding);
            let (max_err, _) = element_errors(&out.to_simple(), &truth);
            assert!(max_err < 1e-3, "{}: max err {max_err}", layer.id());
        }
    }
}

#[test]
fn tile_selection_picks_a_valid_plan() {
    use winograd_nd_repro::conv::select::{select_tile, Purpose};
    let shape = ConvShape::new(1, 16, 16, &[18, 18], &[3, 3], &[1, 1]).unwrap();
    let sel = select_tile(&shape, ConvOptions::default(), Purpose::Training, &SerialExecutor, 1)
        .unwrap();
    assert!(sel.m.iter().all(|&m| (2..=6).contains(&m)));
    assert_eq!(sel.trials.len(), 5);
    // The selected plan actually convolves correctly.
    let img = uniform_input(&shape, 8);
    let ker = xavier_kernels(&shape, 9);
    let input = BlockedImage::from_simple(&img).unwrap();
    let kernels = BlockedKernels::from_simple(&ker).unwrap();
    let mut out = sel.plan.new_output().unwrap();
    let mut scratch = Scratch::new(&sel.plan, 1);
    sel.plan.forward(&input, &kernels, &mut out, &mut scratch, &SerialExecutor).unwrap();
    let truth = direct_f64(&img, &ker, &shape.padding);
    let (max_err, _) = element_errors(&out.to_simple(), &truth);
    assert!(max_err < 1e-3);
}
