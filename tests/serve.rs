//! End-to-end serving tests through the `winograd_nd_repro::serve`
//! facade: queue edge cases (capacity 0, batch of 1, expired deadlines,
//! shutdown drain), admission control, outcome conservation under
//! concurrent producers — and, behind `--features fault-inject`, the
//! full containment story: injected worker panics, barrier stalls and
//! poisoned stages against a live server.

use std::time::Duration;

use winograd_nd_repro::baseline::direct_f64_geo;
use winograd_nd_repro::conv::{ConvOptions, LayerBackend, LayerSpec};
use winograd_nd_repro::serve::{ModelSpec, ServeError, ServeOptions, Server, ServiceModel};
use winograd_nd_repro::tensor::{BlockedImage, BlockedKernels, SimpleImage, SimpleKernels};

fn model() -> (ModelSpec, Vec<BlockedKernels>) {
    let spec = ModelSpec::new(16, vec![6, 6], vec![LayerSpec::same(16, 2, 3, 2)]);
    let kernels = spec
        .shapes(1)
        .unwrap()
        .iter()
        .map(|s| {
            let k = SimpleKernels::from_fn(s.out_channels, s.in_channels, &s.kernel_dims, |co, ci, xy| {
                ((co * 7 + ci * 3 + xy.iter().sum::<usize>()) % 13) as f32 * 0.05
            });
            BlockedKernels::from_simple(&k).unwrap()
        })
        .collect();
    (spec, kernels)
}

fn request() -> BlockedImage {
    let mut img = BlockedImage::zeros(1, 16, &[6, 6]).unwrap();
    for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
        *v = ((i % 19) as f32 - 9.0) * 0.07;
    }
    img
}

/// A capacity-0 queue (drain/maintenance mode) sheds every request with
/// the typed back-pressure error — and still shuts down cleanly.
#[test]
fn capacity_zero_sheds_every_request() {
    let (spec, kernels) = model();
    let opts = ServeOptions { queue_capacity: 0, ..Default::default() };
    let server = Server::start(spec, kernels, opts).unwrap();
    for _ in 0..3 {
        match server.submit(request(), Duration::from_secs(10)) {
            Err(ServeError::Overloaded { depth, capacity }) => {
                assert_eq!((depth, capacity), (0, 0));
            }
            other => panic!("expected Overloaded, got {:?}", other.err()),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed_overload, 3);
    assert_eq!(stats.admitted, 0);
    assert_eq!(stats.completed, 0);
}

/// The smallest possible batch: one request, served alone, with full
/// per-request accounting.
#[test]
fn batch_of_one_is_served_with_accounting() {
    let (spec, kernels) = model();
    let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
    let ticket = server.submit(request(), Duration::from_secs(30)).unwrap();
    let id = ticket.request_id();
    let resp = ticket.wait();
    let out = resp.output.expect("healthy server must serve");
    assert_eq!((out.batch, out.channels), (1, 16));
    assert_eq!(resp.report.request_id, id);
    assert_eq!(resp.report.batch_size, 1);
    assert!(resp.report.batch_id.is_some());
    assert!(resp.report.deadline_met);
    assert!(resp.report.total_ms >= resp.report.service_ms);
    assert_eq!(resp.report.layers.len(), 1);
    let stats = server.shutdown();
    assert_eq!((stats.completed, stats.failed), (1, 0));
}

/// A deadline that has already passed at enqueue is shed immediately —
/// no ticket, no queue slot consumed.
#[test]
fn deadline_expired_at_enqueue_is_shed() {
    let (spec, kernels) = model();
    let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
    match server.submit(request(), Duration::ZERO) {
        Err(ServeError::DeadlineExceeded { missed_by_ms }) => assert!(missed_by_ms >= 0.0),
        other => panic!("expected DeadlineExceeded, got {:?}", other.err()),
    }
    assert_eq!(server.queue_depth(), 0);
    let stats = server.shutdown();
    assert_eq!(stats.shed_deadline, 1);
    assert_eq!(stats.admitted, 0);
}

/// Admission control with an absurdly slow service model predicts a
/// miss for any finite deadline and sheds with the estimate attached.
#[test]
fn predictive_admission_sheds_with_typed_estimate() {
    let (spec, kernels) = model();
    let opts = ServeOptions {
        service: Some(ServiceModel::from_measurement(1e6, 0.0)),
        ..Default::default()
    };
    let server = Server::start(spec, kernels, opts).unwrap();
    match server.submit(request(), Duration::from_secs(5)) {
        Err(e @ ServeError::PredictedMiss { estimated_ms, budget_ms }) => {
            assert!(estimated_ms > budget_ms);
            assert!(e.is_shed());
        }
        other => panic!("expected PredictedMiss, got {:?}", other.err()),
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed_predicted, 1);
}

/// Requests queued at shutdown are drained and served, not dropped:
/// every ticket resolves with an output.
#[test]
fn shutdown_drains_queued_requests() {
    let (spec, kernels) = model();
    let opts = ServeOptions { max_batch: 2, ..Default::default() };
    let server = Server::start(spec, kernels, opts).unwrap();
    let tickets: Vec<_> = (0..8)
        .map(|_| server.submit(request(), Duration::from_secs(60)).unwrap())
        .collect();
    let stats = server.shutdown();
    for t in tickets {
        let resp = t.wait();
        assert!(resp.output.is_ok(), "drained request must be served: {:?}", resp.output.err());
    }
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.failed, 0);
}

/// Size-triggered batching: requests submitted back-to-back coalesce
/// into one batch that closes as soon as `max_batch` is reached.
#[test]
fn requests_coalesce_into_one_batch() {
    let (spec, kernels) = model();
    let opts = ServeOptions {
        max_batch: 4,
        max_batch_age: Duration::from_millis(300),
        ..Default::default()
    };
    let server = Server::start(spec, kernels, opts).unwrap();
    let tickets: Vec<_> = (0..4)
        .map(|_| server.submit(request(), Duration::from_secs(30)).unwrap())
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    for r in &responses {
        assert!(r.output.is_ok());
    }
    let max_size = responses.iter().map(|r| r.report.batch_size).max().unwrap();
    assert!(max_size >= 2, "back-to-back submissions must coalesce, got max batch {max_size}");
    let stats = server.shutdown();
    assert_eq!(stats.completed, 4);
    assert!(stats.batches <= 3, "coalescing must not dispatch one batch per request");
}

/// Batched serving of a *strided* model: stride-2 layers route through
/// the polyphase Winograd dispatcher, requests still coalesce into
/// batches, every response carries the decimated output geometry, and
/// each de-batched output matches the f64 geometry oracle.
#[test]
fn strided_model_serves_batched_requests() {
    let mut spec = ModelSpec::new(16, vec![8, 8], vec![LayerSpec::same(16, 2, 3, 2)]);
    spec.opts = ConvOptions::default().with_stride(&[2, 2]);
    assert_eq!(spec.output_geometry().unwrap(), (16, vec![4, 4]));

    let ker_simple = SimpleKernels::from_fn(16, 16, &[3, 3], |co, ci, xy| {
        ((co * 7 + ci * 3 + xy.iter().sum::<usize>()) % 13) as f32 * 0.05 - 0.2
    });
    let kernels = vec![BlockedKernels::from_simple(&ker_simple).unwrap()];
    let geo = spec.opts.geometry(2);

    let opts = ServeOptions {
        max_batch: 4,
        max_batch_age: Duration::from_millis(300),
        ..Default::default()
    };
    let server = Server::start(spec, kernels, opts).unwrap();

    let images: Vec<SimpleImage> = (0..4)
        .map(|i| {
            SimpleImage::from_fn(1, 16, &[8, 8], move |_, c, xy| {
                ((c * 5 + xy[0] * 3 + xy[1] + i * 31) % 17) as f32 * 0.06 - 0.4
            })
        })
        .collect();
    let tickets: Vec<_> = images
        .iter()
        .map(|img| {
            let input = BlockedImage::from_simple(img).unwrap();
            server.submit(input, Duration::from_secs(30)).unwrap()
        })
        .collect();
    let responses: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let max_size = responses.iter().map(|r| r.report.batch_size).max().unwrap();
    assert!(max_size >= 2, "strided requests must still coalesce, got max batch {max_size}");

    for (img, resp) in images.iter().zip(&responses) {
        let out = resp.output.as_ref().expect("healthy server must serve strided layers");
        assert_eq!((out.batch, out.channels, out.dims.as_slice()), (1, 16, &[4, 4][..]));
        assert_eq!(resp.report.layers.len(), 1);
        assert_eq!(
            resp.report.layers[0].backend,
            LayerBackend::WinogradPoly,
            "full rung must execute the polyphase route"
        );
        // De-batched output vs the f64 oracle (ReLU applied, as the
        // layer spec asks for).
        let mut truth = direct_f64_geo(img, &ker_simple, &[1, 1], &geo);
        for v in &mut truth.data {
            *v = v.max(0.0);
        }
        let got = out.to_simple();
        let max_err = got
            .data
            .iter()
            .zip(&truth.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-3, "served strided output diverged: max err {max_err}");
    }
    let stats = server.shutdown();
    assert_eq!((stats.completed, stats.failed), (4, 0));
}

/// Conservation under concurrent producers and a tight queue: every
/// submission resolves to exactly one typed outcome, and the client-side
/// tallies reconcile with the server's.
#[test]
fn every_submission_resolves_to_exactly_one_outcome() {
    let (spec, kernels) = model();
    let opts = ServeOptions { queue_capacity: 4, ..Default::default() };
    let server = std::sync::Arc::new(Server::start(spec, kernels, opts).unwrap());

    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 32;
    let mut handles = Vec::new();
    for _ in 0..PRODUCERS {
        let server = std::sync::Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let (mut ok, mut shed) = (0u64, 0u64);
            for _ in 0..PER_PRODUCER {
                match server.submit(request(), Duration::from_secs(30)) {
                    Ok(t) => {
                        let resp = t.wait();
                        assert!(resp.output.is_ok(), "healthy server: {:?}", resp.output.err());
                        ok += 1;
                    }
                    Err(e) => {
                        assert!(e.is_shed(), "only load shedding is acceptable: {e}");
                        shed += 1;
                    }
                }
            }
            (ok, shed)
        }));
    }
    let (mut ok, mut shed) = (0u64, 0u64);
    for h in handles {
        let (o, s) = h.join().unwrap();
        ok += o;
        shed += s;
    }
    let server = std::sync::Arc::into_inner(server).expect("all producers joined");
    let stats = server.shutdown();
    assert_eq!(ok + shed, (PRODUCERS * PER_PRODUCER) as u64);
    assert_eq!(stats.submitted, ok + shed);
    assert_eq!(stats.completed, ok);
    assert_eq!(
        stats.shed_overload + stats.shed_deadline + stats.shed_predicted,
        shed,
        "client and server shed tallies must reconcile"
    );
    assert_eq!(stats.failed, 0);
}

/// Fault-injected serving scenarios. The armed fault is process-global,
/// so each test serialises via `fault::test_lock` and disarms on entry
/// and exit (same discipline as `tests/fault_injection.rs`).
#[cfg(feature = "fault-inject")]
mod faults {
    use super::*;
    use winograd_nd_repro::sched::fault::{self, When};
    use winograd_nd_repro::serve::{BreakerConfig, DegradeLevel};

    const THREADS: usize = 4;

    fn pooled_opts() -> ServeOptions {
        ServeOptions { threads: THREADS, ..Default::default() }
    }

    /// Multi-producer conservation under byte-budget pressure: a ceiling
    /// admitting only a few concurrent images, four producers hoarding
    /// tickets. Every submission still resolves to exactly one typed
    /// outcome, the client-side `MemoryPressure` tally reconciles with
    /// the server's `shed_memory`, and the server keeps completing work
    /// throughout — pressure sheds load, it never wedges the pipeline.
    #[test]
    fn memory_pressure_conserves_outcomes_across_producers() {
        let _guard = fault::test_lock();
        fault::reset();
        winograd_nd_repro::simd::fault::reset();

        // Fit the byte-pricing model once (uncapped throwaway server),
        // then cap the real server at three concurrent images.
        let (spec, kernels) = model();
        let probe_opts =
            ServeOptions { memory_ceiling: Some(usize::MAX), ..ServeOptions::default() };
        let probe = Server::start(spec.clone(), kernels.clone(), probe_opts).unwrap();
        let ceiling = probe.memory_model().expect("model fitted").need_bytes(3);
        probe.shutdown();

        let opts = ServeOptions { memory_ceiling: Some(ceiling), ..ServeOptions::default() };
        let server = std::sync::Arc::new(Server::start(spec, kernels, opts).unwrap());

        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 64;
        let mut handles = Vec::new();
        for _ in 0..PRODUCERS {
            let server = std::sync::Arc::clone(&server);
            handles.push(std::thread::spawn(move || {
                // Hoard tickets: submit the whole burst before waiting, so
                // queued work keeps the modeled footprint above the line.
                let (mut tickets, mut mem_shed, mut other_shed) = (Vec::new(), 0u64, 0u64);
                for _ in 0..PER_PRODUCER {
                    match server.submit(request(), Duration::from_secs(30)) {
                        Ok(t) => tickets.push(t),
                        Err(ServeError::MemoryPressure { need_bytes, ceiling_bytes }) => {
                            assert!(need_bytes > ceiling_bytes);
                            mem_shed += 1;
                        }
                        Err(e) => {
                            assert!(e.is_shed(), "only load shedding is acceptable: {e}");
                            other_shed += 1;
                        }
                    }
                }
                let mut ok = 0u64;
                for t in tickets {
                    let resp = t.wait();
                    assert!(resp.output.is_ok(), "admitted ⇒ served: {:?}", resp.output.err());
                    ok += 1;
                }
                (ok, mem_shed, other_shed)
            }));
        }
        let (mut ok, mut mem_shed, mut other_shed) = (0u64, 0u64, 0u64);
        for h in handles {
            let (o, m, s) = h.join().unwrap();
            ok += o;
            mem_shed += m;
            other_shed += s;
        }
        let server = std::sync::Arc::into_inner(server).expect("all producers joined");
        let stats = server.shutdown();
        assert_eq!(ok + mem_shed + other_shed, (PRODUCERS * PER_PRODUCER) as u64);
        assert_eq!(stats.submitted, ok + mem_shed + other_shed);
        assert_eq!(stats.completed, ok);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.shed_memory, mem_shed, "client and server tallies must reconcile");
        assert!(mem_shed > 0, "a 3-image ceiling under a 256-request burst must shed");
        assert!(ok > 0, "pressure must shed load, not wedge the server");
    }

    /// Allocation refusals injected into the live batcher thread: the
    /// engine's memory ladder absorbs them (re-tile, then im2col), so
    /// requests keep completing, nothing aborts, and every outcome is
    /// still conserved.
    #[test]
    fn injected_allocator_failures_mid_serve_do_not_abort() {
        use winograd_nd_repro::simd::fault as mem_fault;

        let _guard = fault::test_lock();
        fault::reset();
        mem_fault::reset();

        let (spec, kernels) = model();
        let server = Server::start(spec, kernels, ServeOptions::default()).unwrap();
        // Fail every 5th batcher allocation, enough shots to straddle
        // many batches. Waiting each ticket keeps the schedule
        // deterministic enough that shots land across distinct batches.
        mem_fault::arm_fail_every(5, 16);
        const REQUESTS: usize = 32;
        let mut completed = 0u64;
        let mut failed = 0u64;
        for _ in 0..REQUESTS {
            let resp = server.submit(request(), Duration::from_secs(30)).unwrap().wait();
            match resp.output {
                Ok(_) => completed += 1,
                Err(ServeError::Failed(_)) => failed += 1,
                Err(e) => panic!("admitted requests resolve served or Failed, got {e}"),
            }
        }
        let landed = mem_fault::injected_failures();
        mem_fault::reset();
        let stats = server.shutdown();
        assert!(landed > 0, "the armed injector must have hit the batcher");
        assert_eq!(completed + failed, REQUESTS as u64, "every ticket resolves exactly once");
        assert_eq!(stats.completed, completed);
        assert_eq!(stats.failed, failed);
        assert!(completed > 0, "the ladder must keep the server serving under pressure");

        fault::reset();
    }

    /// An injected worker panic fails one batch attempt; the bounded
    /// in-batch retry serves the request anyway. The caller sees a clean
    /// result — the fault is visible only in the failure tallies.
    #[test]
    fn injected_panic_is_retried_and_request_completes() {
        let _guard = fault::test_lock();
        fault::reset();

        let (spec, kernels) = model();
        let server = Server::start(spec, kernels, pooled_opts()).unwrap();
        fault::arm_panic(2, When::Next);
        let resp = server.submit(request(), Duration::from_secs(30)).unwrap().wait();
        assert!(resp.output.is_ok(), "retry must absorb the panic: {:?}", resp.output.err());
        assert!(resp.report.retries >= 1, "the fault must have cost at least one retry");
        let stats = server.shutdown();
        assert_eq!((stats.completed, stats.failed), (1, 0));
        assert!(stats.batch_failures >= 1);

        fault::reset();
    }

    /// With retries disabled and a hair-trigger breaker, a single
    /// injected panic becomes a typed `Failed` outcome, trips the
    /// breaker one rung down — and the next clean request is served
    /// degraded, whose success climbs the ladder back up.
    #[test]
    fn breaker_trips_on_failure_and_recovers_on_success() {
        let _guard = fault::test_lock();
        fault::reset();

        let (spec, kernels) = model();
        let opts = ServeOptions {
            breaker: BreakerConfig {
                trip_threshold: 1,
                recovery_threshold: 1,
                max_retries: 0,
                backoff: Duration::from_millis(1),
            },
            ..pooled_opts()
        };
        let server = Server::start(spec, kernels, opts).unwrap();

        fault::arm_panic(1, When::Next);
        let resp = server.submit(request(), Duration::from_secs(30)).unwrap().wait();
        match resp.output {
            Err(ServeError::Failed(e)) => {
                assert!(
                    matches!(*e, winograd_nd_repro::conv::WinoError::Pool(_)),
                    "the contained panic must surface as a pool error: {e}"
                );
            }
            other => panic!("expected Failed, got {other:?}"),
        }
        assert_eq!(server.level(), DegradeLevel::Mono, "one failure must trip one rung");

        // The next clean request executes on the degraded rung; its
        // success promotes the breaker back to Full.
        let resp = server.submit(request(), Duration::from_secs(30)).unwrap().wait();
        assert!(resp.output.is_ok());
        assert_eq!(resp.report.level, DegradeLevel::Mono);
        assert_eq!(server.level(), DegradeLevel::Full);

        let stats = server.shutdown();
        assert_eq!((stats.completed, stats.failed), (1, 1));
        assert_eq!(stats.breaker_trips, 1);
        assert_eq!(stats.breaker_recoveries, 1);

        fault::reset();
    }

    /// A stalled worker trips the barrier watchdog, poisoning the pool;
    /// the server health-checks, rebuilds it and serves the request on
    /// retry — the caller never notices.
    #[test]
    fn barrier_stall_rebuilds_pool_and_request_completes() {
        let _guard = fault::test_lock();
        fault::reset();

        let (mut spec, kernels) = model();
        spec.opts.watchdog = Some(Duration::from_millis(150));
        let server = Server::start(spec, kernels, pooled_opts()).unwrap();

        fault::arm_stall(1, When::Next, Duration::from_millis(800));
        let resp = server.submit(request(), Duration::from_secs(30)).unwrap().wait();
        assert!(resp.output.is_ok(), "rebuild + retry must serve: {:?}", resp.output.err());
        let stats = server.shutdown();
        assert_eq!((stats.completed, stats.failed), (1, 0));
        assert!(stats.pool_rebuilds >= 1, "the poisoned pool must have been rebuilt");
        assert!(stats.batch_failures >= 1);

        fault::reset();
    }

    /// A poisoned Winograd stage is absorbed *inside* the engine (numeric
    /// guard → im2col rescue): the request completes on the first attempt
    /// with the fallback recorded per layer, and the breaker never sees a
    /// failure.
    #[test]
    fn poisoned_stage_is_absorbed_below_the_breaker() {
        let _guard = fault::test_lock();
        fault::reset();

        let (spec, kernels) = model();
        let server = Server::start(spec, kernels, pooled_opts()).unwrap();
        fault::arm_poison_stage(2);
        let resp = server.submit(request(), Duration::from_secs(30)).unwrap().wait();
        assert!(resp.output.is_ok());
        assert_eq!(resp.report.retries, 0, "the engine's own rescue needs no batch retry");
        assert_eq!(resp.report.layers[0].backend, winograd_nd_repro::conv::LayerBackend::Im2col);
        assert!(matches!(
            resp.report.layers[0].fallback,
            Some(winograd_nd_repro::conv::FallbackReason::NumericGuard(_))
        ));
        let stats = server.shutdown();
        assert_eq!((stats.completed, stats.failed), (1, 0));
        assert_eq!(stats.batch_failures, 0);
        assert_eq!(stats.breaker_trips, 0);

        fault::reset();
    }
}
