//! Tile-extraction edge cases: geometries where the overlap-add gather
//! and the clipped inverse-transform write are most likely to go wrong —
//! tiles overhanging the border in *every* dimension simultaneously,
//! 1-wide and 1-deep inputs, and tiles larger than the spatial extent
//! itself. Every case runs under all three stage schedules (so both the
//! monolithic and the superblock-pipelined tile paths are exercised) and
//! is checked against the f64 direct oracle; the schedules must also
//! agree with each other bitwise.

use winograd_nd_repro::baseline::{direct_f64, element_errors};
use winograd_nd_repro::conv::{ConvOptions, Schedule, Scratch, WinogradLayer};
use winograd_nd_repro::sched::{SerialExecutor, StaticExecutor};
use winograd_nd_repro::tensor::{
    BlockedImage, BlockedKernels, ConvShape, SimpleImage, SimpleKernels,
};

fn image(batch: usize, c: usize, dims: &[usize], seed: usize) -> SimpleImage {
    SimpleImage::from_fn(batch, c, dims, |b, ch, xy| {
        let mut h = b.wrapping_mul(131).wrapping_add(ch.wrapping_mul(17)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(31).wrapping_add(x);
        }
        (h % 211) as f32 / 211.0 * 0.2 - 0.1
    })
}

fn kernels(cp: usize, c: usize, kd: &[usize], seed: usize) -> SimpleKernels {
    SimpleKernels::from_fn(cp, c, kd, |co, ci, xy| {
        let mut h = co.wrapping_mul(19).wrapping_add(ci.wrapping_mul(5)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(13).wrapping_add(x);
        }
        (h % 97) as f32 / 97.0 * 0.4 - 0.2
    })
}

/// Run `(dims, kd, pad, m)` under every schedule (serial and a 3-thread
/// pool for the pipelined path) and check against the direct oracle.
fn check_case(dims: &[usize], kd: &[usize], pad: &[usize], m: &[usize], label: &str) {
    let (c, cp) = (16, 16);
    let img = image(1, c, dims, 7);
    let ker = kernels(cp, c, kd, 11);
    let truth = direct_f64(&img, &ker, pad);
    let shape = ConvShape::new(1, c, cp, dims, kd, pad).unwrap();
    let bi = BlockedImage::from_simple(&img).unwrap();
    let bk = BlockedKernels::from_simple(&ker).unwrap();

    let mut reference: Option<Vec<f32>> = None;
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..Default::default() };
        let plan = WinogradLayer::new(shape.clone(), m, opts)
            .unwrap_or_else(|e| panic!("{label} [{}]: plan rejected: {e:?}", schedule.name()));
        let mut scratch = Scratch::new(&plan, 1);
        let mut out = plan.new_output().unwrap();
        plan.forward(&bi, &bk, &mut out, &mut scratch, &SerialExecutor).unwrap();
        let (e, _) = element_errors(&out.to_simple(), &truth);
        assert!(e < 2e-3, "{label} [{}]: max err {e}", schedule.name());
        match &reference {
            None => reference = Some(out.as_slice().to_vec()),
            Some(r) => assert_eq!(
                out.as_slice(),
                &r[..],
                "{label} [{}]: diverged from first schedule",
                schedule.name()
            ),
        }

        // The parallel pipelined path partitions superblocks across
        // slots — edge tiles must land identically.
        if schedule == Schedule::Pipelined {
            let pool = StaticExecutor::new(3);
            let mut scratch_p = Scratch::new(&plan, 3);
            let mut out_p = plan.new_output().unwrap();
            plan.forward(&bi, &bk, &mut out_p, &mut scratch_p, &pool).unwrap();
            assert_eq!(
                out_p.as_slice(),
                &reference.as_ref().unwrap()[..],
                "{label}: parallel pipelined diverged"
            );
        }
    }
}

#[test]
fn overhang_in_every_dimension_simultaneously() {
    // out = 7×9 with m = 4: ceil(7/4) = 2 and ceil(9/4) = 3 tiles, the
    // last tile overhanging in both dimensions at once.
    check_case(&[7, 9], &[3, 3], &[1, 1], &[4, 4], "2-D all-dims overhang");
    // 3-D: out = 3×5×5, m = 2 → overhang in all three dimensions.
    check_case(&[3, 5, 5], &[3, 3, 3], &[1, 1, 1], &[2, 2, 2], "3-D all-dims overhang");
}

#[test]
fn one_wide_input() {
    // A 1-wide image: the width dimension holds exactly one point, the
    // kernel is 1 there, and every gather clamps at both borders.
    check_case(&[1, 10], &[1, 3], &[0, 1], &[1, 4], "1-wide 2-D");
    check_case(&[10, 1], &[3, 1], &[1, 0], &[4, 1], "1-tall 2-D");
}

#[test]
fn one_deep_3d_input() {
    // Depth 1 with "same" padding in depth: the depth gather reads one
    // real plane plus zero fill on both sides.
    check_case(&[1, 8, 8], &[3, 3, 3], &[1, 1, 1], &[2, 2, 2], "1-deep 3-D");
}

#[test]
fn tile_larger_than_spatial_extent() {
    // out = 3×3 with m = 4: a single tile per dimension, larger than the
    // whole output; α = 6 exceeds the 5-point image, so the gather's
    // zero-fill covers the far border too.
    check_case(&[5, 5], &[3, 3], &[0, 0], &[4, 4], "m > extent 2-D");
    // 1-D flavour: 4-point output from one F(6,3) tile.
    check_case(&[6], &[3], &[0], &[6], "m > extent 1-D");
}

#[test]
fn single_pixel_output() {
    // Valid convolution consuming the whole image: out = 1×1.
    check_case(&[3, 3], &[3, 3], &[0, 0], &[2, 2], "single-pixel output");
}
