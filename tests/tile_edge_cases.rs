//! Tile-extraction edge cases: geometries where the overlap-add gather
//! and the clipped inverse-transform write are most likely to go wrong —
//! tiles overhanging the border in *every* dimension simultaneously,
//! 1-wide and 1-deep inputs, and tiles larger than the spatial extent
//! itself. Every case runs under all three stage schedules (so both the
//! monolithic and the superblock-pipelined tile paths are exercised) and
//! is checked against the f64 direct oracle; the schedules must also
//! agree with each other bitwise.

use winograd_nd_repro::baseline::{direct_f64, element_errors};
use winograd_nd_repro::conv::{ConvOptions, Schedule, Scratch, WinogradLayer};
use winograd_nd_repro::sched::{SerialExecutor, StaticExecutor};
use winograd_nd_repro::tensor::{
    BlockedImage, BlockedKernels, ConvShape, SimpleImage, SimpleKernels,
};

fn image(batch: usize, c: usize, dims: &[usize], seed: usize) -> SimpleImage {
    SimpleImage::from_fn(batch, c, dims, |b, ch, xy| {
        let mut h = b.wrapping_mul(131).wrapping_add(ch.wrapping_mul(17)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(31).wrapping_add(x);
        }
        (h % 211) as f32 / 211.0 * 0.2 - 0.1
    })
}

fn kernels(cp: usize, c: usize, kd: &[usize], seed: usize) -> SimpleKernels {
    SimpleKernels::from_fn(cp, c, kd, |co, ci, xy| {
        let mut h = co.wrapping_mul(19).wrapping_add(ci.wrapping_mul(5)).wrapping_add(seed);
        for &x in xy {
            h = h.wrapping_mul(13).wrapping_add(x);
        }
        (h % 97) as f32 / 97.0 * 0.4 - 0.2
    })
}

/// Run `(dims, kd, pad, m)` under every schedule (serial and a 3-thread
/// pool for the pipelined path) and check against the direct oracle.
fn check_case(dims: &[usize], kd: &[usize], pad: &[usize], m: &[usize], label: &str) {
    let (c, cp) = (16, 16);
    let img = image(1, c, dims, 7);
    let ker = kernels(cp, c, kd, 11);
    let truth = direct_f64(&img, &ker, pad);
    let shape = ConvShape::new(1, c, cp, dims, kd, pad).unwrap();
    let bi = BlockedImage::from_simple(&img).unwrap();
    let bk = BlockedKernels::from_simple(&ker).unwrap();

    let mut reference: Option<Vec<f32>> = None;
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..Default::default() };
        let plan = WinogradLayer::new(shape.clone(), m, opts)
            .unwrap_or_else(|e| panic!("{label} [{}]: plan rejected: {e:?}", schedule.name()));
        let mut scratch = Scratch::new(&plan, 1);
        let mut out = plan.new_output().unwrap();
        plan.forward(&bi, &bk, &mut out, &mut scratch, &SerialExecutor).unwrap();
        let (e, _) = element_errors(&out.to_simple(), &truth);
        assert!(e < 2e-3, "{label} [{}]: max err {e}", schedule.name());
        match &reference {
            None => reference = Some(out.as_slice().to_vec()),
            Some(r) => assert_eq!(
                out.as_slice(),
                &r[..],
                "{label} [{}]: diverged from first schedule",
                schedule.name()
            ),
        }

        // The parallel pipelined path partitions superblocks across
        // slots — edge tiles must land identically.
        if schedule == Schedule::Pipelined {
            let pool = StaticExecutor::new(3);
            let mut scratch_p = Scratch::new(&plan, 3);
            let mut out_p = plan.new_output().unwrap();
            plan.forward(&bi, &bk, &mut out_p, &mut scratch_p, &pool).unwrap();
            assert_eq!(
                out_p.as_slice(),
                &reference.as_ref().unwrap()[..],
                "{label}: parallel pipelined diverged"
            );
        }
    }
}

#[test]
fn overhang_in_every_dimension_simultaneously() {
    // out = 7×9 with m = 4: ceil(7/4) = 2 and ceil(9/4) = 3 tiles, the
    // last tile overhanging in both dimensions at once.
    check_case(&[7, 9], &[3, 3], &[1, 1], &[4, 4], "2-D all-dims overhang");
    // 3-D: out = 3×5×5, m = 2 → overhang in all three dimensions.
    check_case(&[3, 5, 5], &[3, 3, 3], &[1, 1, 1], &[2, 2, 2], "3-D all-dims overhang");
}

#[test]
fn one_wide_input() {
    // A 1-wide image: the width dimension holds exactly one point, the
    // kernel is 1 there, and every gather clamps at both borders.
    check_case(&[1, 10], &[1, 3], &[0, 1], &[1, 4], "1-wide 2-D");
    check_case(&[10, 1], &[3, 1], &[1, 0], &[4, 1], "1-tall 2-D");
}

#[test]
fn one_deep_3d_input() {
    // Depth 1 with "same" padding in depth: the depth gather reads one
    // real plane plus zero fill on both sides.
    check_case(&[1, 8, 8], &[3, 3, 3], &[1, 1, 1], &[2, 2, 2], "1-deep 3-D");
}

#[test]
fn tile_larger_than_spatial_extent() {
    // out = 3×3 with m = 4: a single tile per dimension, larger than the
    // whole output; α = 6 exceeds the 5-point image, so the gather's
    // zero-fill covers the far border too.
    check_case(&[5, 5], &[3, 3], &[0, 0], &[4, 4], "m > extent 2-D");
    // 1-D flavour: 4-point output from one F(6,3) tile.
    check_case(&[6], &[3], &[0], &[6], "m > extent 1-D");
}

#[test]
fn single_pixel_output() {
    // Valid convolution consuming the whole image: out = 1×1.
    check_case(&[3, 3], &[3, 3], &[0, 0], &[2, 2], "single-pixel output");
}

// ---------------------------------------------------------------------------
// Geometry edge cases: the dispatch layer's corners — strides larger than
// the image, dilations that push the receptive field entirely into the
// zero padding, depthwise groups, and the typed rejection of group
// counts that divide nothing.
// ---------------------------------------------------------------------------

use winograd_nd_repro::baseline::direct_f64_geo;
use winograd_nd_repro::conv::{plan_dispatch, FallbackPolicy, PlanError};
use winograd_nd_repro::tensor::ShapeError;

/// As [`check_case`], but through the dispatch layer with a full
/// (stride, dilation, groups) geometry. The per-path tolerance is loose
/// enough for Winograd routes and tight for im2col ones; all schedules
/// must agree bitwise regardless of route.
#[allow(clippy::too_many_arguments)]
fn check_geo_case(
    dims: &[usize],
    kd: &[usize],
    pad: &[usize],
    m: &[usize],
    stride: &[usize],
    dilation: &[usize],
    groups: usize,
    label: &str,
) {
    let (c, cp) = (16, 16);
    let img = image(1, c, dims, 7);
    let ker = kernels(cp, c / groups, kd, 11);
    let shape = ConvShape::new(1, c, cp, dims, kd, pad).unwrap();
    let base = ConvOptions::default()
        .with_stride(stride)
        .with_dilation(dilation)
        .with_groups(groups);
    let truth = direct_f64_geo(&img, &ker, pad, &base.geometry(dims.len()));
    let bi = BlockedImage::from_simple(&img).unwrap();
    let bk = BlockedKernels::from_simple(&ker).unwrap();

    let mut reference: Option<Vec<f32>> = None;
    for schedule in Schedule::ALL {
        let opts = ConvOptions { schedule, ..base };
        let (dp, _fb) = plan_dispatch(&shape, m, opts, &FallbackPolicy::default())
            .unwrap_or_else(|e| panic!("{label} [{}]: rejected: {e:?}", schedule.name()));
        let mut out = dp.new_output().unwrap();
        dp.forward(&bi, &bk, &mut out, &SerialExecutor)
            .unwrap_or_else(|e| panic!("{label} [{}]: forward failed: {e:?}", schedule.name()));
        assert_eq!(out.dims, truth.dims, "{label} [{}]", schedule.name());
        let (e, _) = element_errors(&out.to_simple(), &truth);
        assert!(e < 2e-3, "{label} [{}]: max err {e}", schedule.name());
        match &reference {
            None => reference = Some(out.as_slice().to_vec()),
            Some(r) => assert_eq!(
                out.as_slice(),
                &r[..],
                "{label} [{}]: diverged from first schedule",
                schedule.name()
            ),
        }
    }
}

#[test]
fn stride_larger_than_spatial_extent() {
    // Stride 5 on a 9-point image with a 3-point kernel: two output
    // points per dimension, sampled 5 apart — the polyphase
    // decomposition degenerates to nearly one point per phase.
    check_geo_case(&[9, 9], &[3, 3], &[1, 1], &[2, 2], &[5, 5], &[1, 1], 1, "stride 5 on 9");
    // Stride 8 leaves exactly one output point: the entire image
    // collapses into a single sample per phase.
    check_geo_case(&[9], &[3], &[1], &[2], &[8], &[1], 1, "stride 8, single output");
}

#[test]
fn dilation_reaching_past_the_padding() {
    // Dilation 3 on a 3-point kernel: r_eff = 7 against a 7-point image
    // with pad 0 — the receptive field spans the whole image, and with
    // pad 3 the border outputs read *only* zero padding on one side.
    check_geo_case(&[7, 7], &[3, 3], &[0, 0], &[1, 1], &[1, 1], &[3, 3], 1, "dilation 3, pad 0");
    check_geo_case(&[7], &[3], &[3], &[2], &[1], &[3], 1, "dilation 3, pad 3");
}

#[test]
fn depthwise_is_routed_not_rejected() {
    // groups == C == 16: one channel per group. No Winograd layout can
    // block that, so it must land in im2col — and still be the right
    // convolution, including with a stride on top.
    check_geo_case(&[8, 8], &[3, 3], &[1, 1], &[2, 2], &[1, 1], &[1, 1], 16, "depthwise");
    check_geo_case(&[8, 8], &[3, 3], &[1, 1], &[2, 2], &[2, 2], &[1, 1], 16, "strided depthwise");
}

#[test]
fn non_divisible_groups_are_rejected_with_a_typed_error() {
    // groups = 5 divides neither C = 16 nor C' = 16: unrepresentable,
    // so the dispatcher must fail with the typed shape error (no route
    // may guess at fractional channel groups).
    let shape = ConvShape::new(1, 16, 16, &[8, 8], &[3, 3], &[1, 1]).unwrap();
    let opts = ConvOptions::default().with_groups(5);
    assert!(matches!(
        plan_dispatch(&shape, &[2, 2], opts, &FallbackPolicy::default()),
        Err(PlanError::Shape(ShapeError::BadGroups { channels: 16, groups: 5 }))
    ));
    // A permissive policy changes nothing: this is not a plan failure to
    // degrade from, the layer itself is ill-formed.
    let strict = FallbackPolicy::strict();
    assert!(matches!(
        plan_dispatch(&shape, &[2, 2], opts, &strict),
        Err(PlanError::Shape(ShapeError::BadGroups { .. }))
    ));
}
