#!/usr/bin/env bash
# Deep static-analysis pass. scripts/check.sh runs the fast gate; this
# script is the long-form version for local soak runs and release
# audits: wider exhaustive bounds, a bigger random-schedule sweep, and
# a self-test that the linter actually rejects seeded violations.
# Run from the repo root: scripts/analyze.sh
#
#   scripts/analyze.sh          full deep pass (lint + all scenarios)
#   scripts/analyze.sh --serve  serve-focused deep mode: soak the serve
#                               scenarios + the leaked-waiter reinjection
#                               and verify the machine-readable --json
#                               verdict lines
set -euo pipefail
cd "$(dirname "$0")/.."

DEEP_TIMEOUT=${DEEP_TIMEOUT:-900}
SERVE_ONLY=0
for arg in "$@"; do
    case "$arg" in
        --serve) SERVE_ONLY=1 ;;
        *)
            echo "usage: scripts/analyze.sh [--serve]" >&2
            exit 2
            ;;
    esac
done

run() {
    echo "==> $*"
    timeout --kill-after=30 "$1" "${@:2}"
}

run "$DEEP_TIMEOUT" cargo build --offline --release -q -p wino-analyze

LINT=target/release/wino-lint
MODEL=target/release/wino-model

if [ "$SERVE_ONLY" = 1 ]; then
    # Serve deep mode: the five serve scenarios plus the re-injected
    # leaked-waiter bug at soak bounds, consumed via the --json verdict
    # lines (one object per scenario, then a summary object).
    echo "==> $MODEL --scenario serve- --scenario reinject-leaked-waiter --json (deep)"
    OUT=$(timeout --kill-after=30 "$DEEP_TIMEOUT" \
        "$MODEL" --scenario serve- --scenario reinject-leaked-waiter \
        --execs 50000 --random 20000 --min-interleavings 100000 --json)
    echo "$OUT"
    if echo "$OUT" | grep -q '"ok":false'; then
        echo "error: a serve scenario verdict failed" >&2
        exit 1
    fi
    if ! echo "$OUT" | grep -q '"summary":true,"scenarios":6,"failed":false'; then
        echo "error: serve verdict summary missing or failed" >&2
        exit 1
    fi
    if ! echo "$OUT" | grep -q '"scenario":"reinject-leaked-waiter","ok":true,"expect_violation":true'; then
        echo "error: the re-injected leaked-waiter bug was not caught" >&2
        exit 1
    fi
    echo "Serve deep analysis passed."
    exit 0
fi

# 1. The linter's rule table, then the workspace itself (must be clean).
run "$DEEP_TIMEOUT" "$LINT" --list-rules
run "$DEEP_TIMEOUT" "$LINT"

# 2. Self-test: the seeded fixture must trip every rule. The fixture is
#    lexed as if it lived inside the walked tree (--as-path) so the
#    sched-scoped rules apply; a zero exit here means the linter has
#    gone blind and the clean workspace result above proves nothing.
echo "==> $LINT --as-path crates/sched/src/violations.rs (must fail)"
if timeout --kill-after=30 "$DEEP_TIMEOUT" \
    "$LINT" --as-path crates/sched/src/violations.rs crates/analyze/fixtures/violations.rs; then
    echo "error: wino-lint accepted the seeded violation fixture" >&2
    exit 1
fi
echo "    fixture rejected, as intended"

# 3. Deep model-checker enumeration: an order of magnitude beyond the
#    check.sh gate, exhaustive where the schedule tree permits plus a
#    large seeded-random sweep everywhere else. Every scenario runs
#    under both DFS and DPOR (the binary fails if they disagree or if
#    DPOR explores more), so the effective schedule budget is ~2x the
#    --execs bound per scenario.
run "$DEEP_TIMEOUT" "$MODEL" --execs 100000 --random 30000 --seed 24301 \
    --min-interleavings 100000

# 4. Second sweep under a different seed: schedule coverage in random
#    mode is seed-dependent, so one fixed seed is a blind spot.
run "$DEEP_TIMEOUT" "$MODEL" --execs 20000 --random 50000 --seed 3735928559

echo "Deep analysis passed."
