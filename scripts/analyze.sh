#!/usr/bin/env bash
# Deep static-analysis pass. scripts/check.sh runs the fast gate; this
# script is the long-form version for local soak runs and release
# audits: wider exhaustive bounds, a bigger random-schedule sweep, and
# a self-test that the linter actually rejects seeded violations.
# Run from the repo root: scripts/analyze.sh
set -euo pipefail
cd "$(dirname "$0")/.."

DEEP_TIMEOUT=${DEEP_TIMEOUT:-900}

run() {
    echo "==> $*"
    timeout --kill-after=30 "$1" "${@:2}"
}

run "$DEEP_TIMEOUT" cargo build --offline --release -q -p wino-analyze

LINT=target/release/wino-lint
MODEL=target/release/wino-model

# 1. The linter's rule table, then the workspace itself (must be clean).
run "$DEEP_TIMEOUT" "$LINT" --list-rules
run "$DEEP_TIMEOUT" "$LINT"

# 2. Self-test: the seeded fixture must trip every rule. The fixture is
#    lexed as if it lived inside the walked tree (--as-path) so the
#    sched-scoped rules apply; a zero exit here means the linter has
#    gone blind and the clean workspace result above proves nothing.
echo "==> $LINT --as-path crates/sched/src/violations.rs (must fail)"
if timeout --kill-after=30 "$DEEP_TIMEOUT" \
    "$LINT" --as-path crates/sched/src/violations.rs crates/analyze/fixtures/violations.rs; then
    echo "error: wino-lint accepted the seeded violation fixture" >&2
    exit 1
fi
echo "    fixture rejected, as intended"

# 3. Deep model-checker enumeration: an order of magnitude beyond the
#    check.sh gate, exhaustive where the schedule tree permits plus a
#    large seeded-random sweep everywhere else.
run "$DEEP_TIMEOUT" "$MODEL" --execs 200000 --random 50000 --seed 24301 \
    --min-interleavings 100000

# 4. Second sweep under a different seed: schedule coverage in random
#    mode is seed-dependent, so one fixed seed is a blind spot.
run "$DEEP_TIMEOUT" "$MODEL" --execs 20000 --random 50000 --seed 3735928559

echo "Deep analysis passed."
