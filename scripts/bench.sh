#!/usr/bin/env bash
# Perf-report driver: build the instrumented harness, run the `perf`
# binary over the layer catalogue, and validate the emitted JSON against
# the versioned schema (docs/bench-schema.md). Run from the repo root:
#
#   scripts/bench.sh            → BENCH_<date>.json at the repo root
#                                 (full scaled catalogue × {direct,
#                                 im2col, best-Winograd})
#   scripts/bench.sh --smoke    → target/BENCH_smoke.json (three pinned
#                                 layers, 1 rep — the CI gate)
#   scripts/bench.sh --scaling-smoke
#                               → target/BENCH_scaling.json (strong/weak
#                                 thread sweep over the smoke layers; the
#                                 binary's --check gate asserts parallel
#                                 efficiency ≥ 0.6 at the host thread
#                                 count and barrier skew under the probe
#                                 budget — see docs/scaling.md)
#
# Environment: THREADS (default: all cores; scaling: the sweep's
# --max-threads), REPS (default 3; smoke modes: 1–2), BENCH_TIMEOUT
# seconds (default 1800).
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_TIMEOUT=${BENCH_TIMEOUT:-1800}

MODE=full
for a in "$@"; do
    case "$a" in
        --smoke) MODE=smoke ;;
        --scaling-smoke) MODE=scaling ;;
        *)
            echo "usage: scripts/bench.sh [--smoke | --scaling-smoke]" >&2
            exit 2
            ;;
    esac
done

run() {
    echo "==> $*"
    timeout --kill-after=30 "$BENCH_TIMEOUT" "$@"
}

run cargo build --offline --release -p wino-bench --features probe

if [ "$MODE" = scaling ]; then
    out=target/BENCH_scaling.json
    args=(--date "$(date -u +%F)" --reps "${REPS:-2}" --check)
    [ -n "${THREADS:-}" ] && args+=(--max-threads "$THREADS")
    run target/release/scaling "${args[@]}" --out "$out"
    run target/release/scaling --validate "$out"
    echo "OK: $out"
    exit 0
fi

args=(--date "$(date -u +%F)")
[ -n "${THREADS:-}" ] && args+=(--threads "$THREADS")

if [ "$MODE" = smoke ]; then
    out=target/BENCH_smoke.json
    args+=(--reps "${REPS:-1}")
else
    out="BENCH_$(date -u +%F).json"
    args+=(--all --reps "${REPS:-3}")
fi

run target/release/perf "${args[@]}" --out "$out"
run target/release/perf --validate "$out"
echo "OK: $out"
