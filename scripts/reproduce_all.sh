#!/usr/bin/env bash
# The artifact-appendix workflow (paper §A.5), adapted: build everything,
# run the full test suite, regenerate every table/figure CSV into
# results/, and run the criterion micro-benchmarks.
#
#   ./scripts/reproduce_all.sh [THREADS] [--full]
#
# THREADS defaults to the machine's hardware parallelism; --full uses the
# paper's exact Table 2 layer sizes (needs >= 16 GB and real patience on
# few cores) instead of the scaled catalogue.

set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${1:-$(nproc)}"
FULL=""
for a in "$@"; do
  [ "$a" = "--full" ] && FULL="--full"
done

echo "== building (release, target-cpu=native) =="
cargo build --workspace --release

echo "== test suite =="
cargo test --workspace 2>&1 | tee test_output.txt | grep -E "test result" | tail -40

mkdir -p results
echo "== Figure 5 (layer runtimes; ~minutes, FFT rows dominate) =="
target/release/fig5 --reps 2 --jit --threads "$THREADS" $FULL > results/fig5_results.csv
echo "   -> results/fig5_results.csv"

echo "== Figure 6 (batched GEMM throughput per V-hat size) =="
target/release/fig6 --rows 2048 --t 8 --reps 3 > results/fig6_results.csv
echo "   -> results/fig6_results.csv"

echo "== Table 3 (element errors, both point schedules) =="
target/release/table3 --threads "$THREADS" | tee results/table3.txt

echo "== ablations =="
target/release/ablations streaming-stores --threads "$THREADS" > results/abl_stream.csv
target/release/ablations fused-scatter    --threads "$THREADS" > results/abl_fused.csv
target/release/ablations blocking-model                        > results/abl_block.csv
target/release/ablations scheduling       --threads "$THREADS" > results/abl_sched.csv
target/release/ablations budden-net       --threads "$THREADS" > results/abl_budden.csv
echo "   -> results/abl_*.csv"

echo "== criterion micro-benchmarks =="
cargo bench --workspace 2>&1 | tee bench_output.txt | grep -E "time:" | tail -40

echo "All artefacts regenerated. Compare against EXPERIMENTS.md."
