#!/usr/bin/env bash
# Full local gate: build, test (both feature configurations) and lint,
# each under a timeout so a hung fork–join can never wedge CI. Run from
# the repo root: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Generous wall-clock caps: the watchdog-path tests sleep deliberately,
# but nothing here should come close to these bounds.
BUILD_TIMEOUT=${BUILD_TIMEOUT:-900}
TEST_TIMEOUT=${TEST_TIMEOUT:-900}
ANALYZE_TIMEOUT=${ANALYZE_TIMEOUT:-240}

run() {
    echo "==> $*"
    timeout --kill-after=30 "$1" "${@:2}"
}

run "$BUILD_TIMEOUT" cargo build --workspace --offline --release
run "$BUILD_TIMEOUT" cargo build --workspace --offline --all-targets
# Feature matrix: default × probe × fault-inject, plus both together —
# the instrumented fault paths must hold under every configuration.
run "$TEST_TIMEOUT" cargo test --workspace --offline -q
run "$TEST_TIMEOUT" cargo test --workspace --offline -q --features fault-inject
run "$TEST_TIMEOUT" cargo test --workspace --offline -q --features probe
run "$TEST_TIMEOUT" cargo test --workspace --offline -q --features probe,fault-inject
run "$BUILD_TIMEOUT" cargo clippy --workspace --offline --all-targets -- -D warnings
run "$BUILD_TIMEOUT" cargo clippy --workspace --offline --all-targets --features fault-inject -- -D warnings
run "$BUILD_TIMEOUT" cargo clippy --workspace --offline --all-targets --features probe -- -D warnings
run "$BUILD_TIMEOUT" cargo clippy --workspace --offline --all-targets --features probe,fault-inject -- -D warnings

# Differential gate: ≥300 random layers through all three stage schedules
# (unfused / fused-scatter / pipelined) across the full (stride, dilation,
# groups) lattice against the f64 geometry oracle. The seed is pinned
# (0xd1ff2026, the test's default) so CI failures reproduce locally
# byte-for-byte; the minimal-shrink reporter names the offender.
run "$TEST_TIMEOUT" env WINO_SWEEP_SEED=3523158054 \
    cargo test --offline -q --test properties differential_schedule_sweep

# Dispatch-matrix gate: the exhaustive (rank, stride, dilation, groups)
# grid must route every representable combination to its specified engine
# (direct / polyphase / grouped Winograd or the designed im2col fallback
# with the right typed reason), match the oracle, and surface the same
# provenance through `Network` reports; the geometry edge cases (stride >
# extent, dilation past the padding, depthwise, non-divisible groups)
# ride in the same gate.
run "$TEST_TIMEOUT" cargo test --offline -q --test dispatch_matrix --test tile_edge_cases

# Accuracy gate: (a) every practical F(m, r) under both interpolation
# point schedules must measure within its exact a-priori conditioning
# bound (the `accuracy` binary exits non-zero on a violation); (b) the
# three smoke layers must come through budget-driven tile selection and a
# sentinel-sampled forward with zero trips; (c) the sentinel sample and
# verdicts must be schedule/executor-deterministic under the pinned CI
# seed; (d) the denormal-storm and silent-corruption regressions must be
# caught and rescued under fault injection.
run "$TEST_TIMEOUT" cargo run --offline --release -q -p wino-bench --bin accuracy
run "$TEST_TIMEOUT" cargo run --offline --release -q -p wino-bench --bin accuracy -- \
    --sentinel-smoke
run "$TEST_TIMEOUT" env WINO_SWEEP_SEED=3523158054 \
    cargo test --offline -q --test sentinel
run "$TEST_TIMEOUT" cargo test --offline -q --features fault-inject \
    --test fault_injection -- denormal_storm silent_corruption

# Documentation gate: rustdoc must build warning-free (broken intra-doc
# links are the usual regression).
RUSTDOCFLAGS="-D warnings" run "$BUILD_TIMEOUT" cargo doc --workspace --offline --no-deps

# Static analysis gate: the workspace must lint clean (100% SAFETY /
# ORDERING coverage) and the model checker must clear its interleaving
# floor on the release binary. The binary runs every scenario under
# bounded DFS *and* DPOR and fails on its own if the two disagree on a
# verdict, a re-injected bug goes uncaught, or DPOR explores more
# interleavings than DFS on any scenario.
run "$ANALYZE_TIMEOUT" cargo run --offline --release -q -p wino-analyze --bin wino-lint
run "$TEST_TIMEOUT" cargo test --offline -q -p wino-analyze
run "$ANALYZE_TIMEOUT" cargo run --offline --release -q -p wino-analyze --bin wino-model -- \
    --min-interleavings 10000

# Serve-model gate: the five serve-contract scenarios plus the
# re-injected leaked-waiter bug (drop guard ordered after the state
# store) — ≥10k interleavings across the serve suite, and the checker
# must catch the seeded bug.
run "$ANALYZE_TIMEOUT" cargo run --offline --release -q -p wino-analyze --bin wino-model -- \
    --scenario serve- --scenario reinject-leaked-waiter \
    --execs 10000 --random 2000 --min-interleavings 10000

# Topology gate: the sysfs parser must round-trip the pinned fixture
# trees (1-socket, 2-socket SMT, CCX) through the WINO_TOPOLOGY spec
# grammar — the contract that lets CI pin any machine shape it wants.
run "$TEST_TIMEOUT" cargo test --offline -q -p wino-sched topology

# Observability gate: an instrumented smoke run must emit a perf report
# that validates against the versioned schema (docs/bench-schema.md).
scripts/bench.sh --smoke

# Scaling gate: a strong/weak thread sweep over the smoke layers must
# emit a valid schema-v4 scaling report, hold parallel efficiency ≥ 0.6
# at the host thread count on at least one smoke layer, and keep barrier
# skew under the probe budget (docs/scaling.md).
scripts/bench.sh --scaling-smoke

# Memory-accounting gate: the analytic `MemoryFootprint` model must
# price the allocator's real traffic within 10% — the per-component
# exact-match unit tests plus the end-to-end cold-start prediction test
# (plan + kernel memoisation + forward) in wino-conv.
run "$TEST_TIMEOUT" cargo test --offline -q -p wino-conv footprint

# Serving gate: a fault-injected overload soak — ≥10k requests fired at
# ~2× the measured sustainable rate, with worker panics, barrier stalls
# and poisoned stages armed throughout the first half. The binary itself
# asserts the robustness contract (zero escaped panics, every request
# resolved to a typed outcome, conservation of tallies, breaker trips
# AND full recovery, pool rebuilds, admitted p99 within deadline) and
# exits non-zero on any violation; the emitted BENCH_serve.json must
# then validate against the same versioned schema as the perf reports.
# stderr is captured (and replayed) so the rlimit gate below can parse
# the `# modeled_footprint_bytes` line.
run "$TEST_TIMEOUT" cargo run --offline --release -q -p wino-bench \
    --features fault-inject --bin serve_load -- \
    --soak --requests 10000 --out target/BENCH_serve.json \
    2> target/serve_load.stderr \
    || { cat target/serve_load.stderr >&2; exit 1; }
cat target/serve_load.stderr >&2
run "$TEST_TIMEOUT" cargo run --offline --release -q -p wino-bench --bin perf -- \
    --validate target/BENCH_serve.json

# Rlimit gate: replay the soak under a hard address-space cap sized from
# the modeled footprint — 1.5× modeled plus a fixed 1 GiB of headroom
# for the process image, thread stacks and allocator arenas
# (MALLOC_ARENA_MAX bounds glibc's per-arena VA reservations) — with
# byte-budget admission engaged. The contract: zero aborts under the
# cap (any allocation refusal must surface as a typed outcome, walked
# through the memory ladder), and the report must still validate. The
# serve_load binary was just built with fault-inject by the soak above.
modeled=$(awk '/^# modeled_footprint_bytes /{print $3}' target/serve_load.stderr | tail -n 1)
[ -n "$modeled" ] && [ "$modeled" -gt 0 ]
cap_kib=$(( (modeled * 3 / 2 + 1073741824) / 1024 ))
echo "==> rlimit soak: modeled ${modeled} B, ulimit -v ${cap_kib} KiB"
run "$TEST_TIMEOUT" env MALLOC_ARENA_MAX=2 bash -c \
    "ulimit -v $cap_kib; exec target/release/serve_load \
     --soak --requests 10000 --memory-ceiling-mib 64 \
     --out target/BENCH_serve_rlimit.json"
run "$TEST_TIMEOUT" cargo run --offline --release -q -p wino-bench --bin perf -- \
    --validate target/BENCH_serve_rlimit.json

echo "All checks passed."
