#!/usr/bin/env bash
# Full local gate: build, test (both feature configurations) and lint,
# each under a timeout so a hung fork–join can never wedge CI. Run from
# the repo root: scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

# Generous wall-clock caps: the watchdog-path tests sleep deliberately,
# but nothing here should come close to these bounds.
BUILD_TIMEOUT=${BUILD_TIMEOUT:-900}
TEST_TIMEOUT=${TEST_TIMEOUT:-900}

run() {
    echo "==> $*"
    timeout --kill-after=30 "$1" "${@:2}"
}

run "$BUILD_TIMEOUT" cargo build --workspace --offline --release
run "$BUILD_TIMEOUT" cargo build --workspace --offline --all-targets
run "$TEST_TIMEOUT" cargo test --workspace --offline -q
run "$TEST_TIMEOUT" cargo test --workspace --offline -q --features fault-inject
run "$BUILD_TIMEOUT" cargo clippy --workspace --offline --all-targets -- -D warnings
run "$BUILD_TIMEOUT" cargo clippy --workspace --offline --all-targets --features fault-inject -- -D warnings

echo "All checks passed."
